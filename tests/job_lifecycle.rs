//! Integration tests for the non-blocking job lifecycle API: enqueue /
//! tick / cancel / watch semantics, batch priorities, terminal-failure
//! cleanup, deterministic replays, and a property test that every observed
//! transition sequence is legal in the [`JobState`] machine.

use proptest::prelude::*;

use qrio::{JobId, JobRequest, JobRequestBuilder, JobState, Qrio, QrioError};
use qrio_backend::{topology, Backend};
use qrio_circuit::library;
use qrio_cluster::{ClusterError, DeviceRequirements, JobPhase, Resources};
use qrio_meta::FidelityRankingConfig;

fn fast_qrio() -> Qrio {
    Qrio::with_config(
        FidelityRankingConfig {
            shots: 48,
            seed: 21,
            shortfall_weight: 100.0,
        },
        21,
    )
}

fn two_device_qrio() -> Qrio {
    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform("alpha", topology::line(8), 0.005, 0.02))
        .unwrap();
    qrio.add_device(Backend::uniform("beta", topology::line(8), 0.02, 0.1))
        .unwrap();
    qrio
}

fn fidelity_request(name: &str, qubits: usize, priority: u8) -> JobRequest {
    let circuit = library::ghz(qubits).unwrap();
    JobRequestBuilder::new()
        .with_circuit(&circuit)
        .job_name(name)
        .fidelity_target(0.9)
        .shots(32)
        .priority(priority)
        .build()
        .unwrap()
}

// --- Cancellation ------------------------------------------------------------------------

#[test]
fn cancel_while_queued_is_clean_and_final() {
    let mut qrio = two_device_qrio();
    let id = qrio.enqueue(&fidelity_request("early-out", 4, 0)).unwrap();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Queued);

    qrio.cancel(&id).unwrap();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Cancelled);
    assert!(matches!(
        qrio.cluster().job("early-out").unwrap().phase(),
        JobPhase::Cancelled { .. }
    ));
    // Terminal cleanup: metadata and image are garbage-collected.
    assert!(qrio.meta().job_metadata("early-out").is_none());
    assert!(!qrio.cluster().registry().contains("qrio/early-out:latest"));
    // The outcome is a typed cancellation error.
    assert!(matches!(qrio.outcome(&id), Err(QrioError::JobCancelled(_))));
    // Cancelling again errors deterministically (never a silent rewrite).
    assert!(matches!(
        qrio.cancel(&id),
        Err(QrioError::Cluster(ClusterError::PhaseConflict { .. }))
    ));
    // A tick later the job is still Cancelled and nothing ran.
    let report = qrio.tick();
    assert!(report.is_idle());
    assert_eq!(qrio.status(&id).unwrap(), JobState::Cancelled);
}

#[test]
fn cancel_while_scheduled_releases_the_binding() {
    let mut qrio = two_device_qrio();
    let id = qrio.enqueue(&fidelity_request("bound", 4, 0)).unwrap();
    let decision = qrio.schedule(&id).unwrap();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Scheduled);
    let bound_node = decision.node.clone();
    assert_ne!(
        qrio.cluster().node(&bound_node).unwrap().allocated(),
        Resources::default()
    );

    qrio.cancel(&id).unwrap();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Cancelled);
    assert_eq!(
        qrio.cluster().node(&bound_node).unwrap().allocated(),
        Resources::default(),
        "cancellation returns the reserved resources"
    );
    // Executing a cancelled job errors deterministically.
    assert!(matches!(
        qrio.execute(&id),
        Err(QrioError::Cluster(ClusterError::PhaseConflict { .. }))
    ));
    // The watch event names the device whose binding was released.
    assert!(qrio.watch(0).iter().any(|event| {
        event.to == JobState::Cancelled && event.node.as_deref() == Some(bound_node.as_str())
    }));
}

#[test]
fn submit_never_force_fails_other_queued_jobs() {
    let mut qrio = two_device_qrio();
    // A job only 'alpha' can satisfy, enqueued while 'alpha' is cordoned:
    // it must wait, not fail.
    let circuit = library::ghz(3).unwrap();
    let picky = JobRequestBuilder::new()
        .with_circuit(&circuit)
        .job_name("waits-for-alpha")
        .fidelity_target(0.9)
        .requirements(DeviceRequirements {
            max_two_qubit_error: Some(0.05),
            ..DeviceRequirements::default()
        })
        .shots(32)
        .build()
        .unwrap();
    let waiting = qrio.enqueue(&picky).unwrap();
    qrio.cluster_mut().node_mut("alpha").unwrap().cordon();

    // A blocking submit of an unrelated job completes on the other device
    // and leaves the waiting job untouched.
    let outcome = qrio.submit(&fidelity_request("blocking", 3, 0)).unwrap();
    assert_eq!(outcome.decision.node, "beta");
    assert_eq!(
        qrio.status(&waiting).unwrap(),
        JobState::Queued,
        "submit() must not force-fail jobs it did not enqueue"
    );

    // Once the cordon lifts, the service loop schedules it as usual.
    qrio.cluster_mut().node_mut("alpha").unwrap().uncordon();
    qrio.run_until_idle();
    assert_eq!(qrio.status(&waiting).unwrap(), JobState::Succeeded);
    assert_eq!(
        qrio.job_status(&waiting).unwrap().node.as_deref(),
        Some("alpha")
    );
}

#[test]
fn cancel_after_running_errors_deterministically() {
    let mut qrio = two_device_qrio();
    let id = qrio.enqueue(&fidelity_request("too-late", 4, 0)).unwrap();
    qrio.run_until_idle();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Succeeded);
    for _ in 0..2 {
        // Same call, same typed error, every time.
        assert!(matches!(
            qrio.cancel(&id),
            Err(QrioError::Cluster(ClusterError::PhaseConflict { .. }))
        ));
    }
    assert_eq!(qrio.status(&id).unwrap(), JobState::Succeeded);
    assert!(qrio.outcome(&id).is_ok(), "results survive cancel attempts");
}

// --- Batch submission with mixed priorities ----------------------------------------------

#[test]
fn batches_drain_by_priority_then_submission_order() {
    let mut qrio = fast_qrio();
    // One device, so admission order is directly observable as the device's
    // FIFO execution order.
    qrio.add_device(Backend::uniform("solo", topology::line(8), 0.005, 0.02))
        .unwrap();
    let requests = vec![
        fidelity_request("a-low", 3, 0),
        fidelity_request("b-high", 3, 2),
        fidelity_request("c-mid", 3, 1),
        fidelity_request("d-high", 3, 2),
        fidelity_request("e-low", 3, 0),
    ];
    let ids: Vec<JobId> = qrio
        .enqueue_all(&requests)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(ids.len(), 5);

    // The first tick admits everything (the device has capacity for all
    // five) in priority-desc, FIFO-within-priority order.
    let report = qrio.tick();
    let scheduled: Vec<&str> = report.scheduled.iter().map(JobId::as_str).collect();
    assert_eq!(
        scheduled,
        vec!["b-high", "d-high", "c-mid", "a-low", "e-low"]
    );

    // Execution drains the device queue one job per tick in that order.
    qrio.run_until_idle();
    let completion_order: Vec<String> = qrio
        .watch(0)
        .iter()
        .filter(|event| event.to == JobState::Succeeded)
        .map(|event| event.job.to_string())
        .collect();
    assert_eq!(
        completion_order,
        vec!["b-high", "d-high", "c-mid", "a-low", "e-low"]
    );
    for id in &ids {
        assert_eq!(qrio.status(id).unwrap(), JobState::Succeeded);
    }
}

#[test]
fn batch_rejections_do_not_abort_the_rest() {
    let mut qrio = two_device_qrio();
    let requests = vec![
        fidelity_request("ok-1", 3, 0),
        fidelity_request("ok-1", 3, 0), // duplicate name: rejected
        fidelity_request("ok-2", 3, 0),
    ];
    let results = qrio.enqueue_all(&requests);
    assert!(results[0].is_ok());
    assert!(matches!(
        results[1],
        Err(QrioError::Cluster(ClusterError::DuplicateJob(_)))
    ));
    assert!(results[2].is_ok());
    qrio.run_until_idle();
    assert_eq!(
        qrio.status(&JobId::new("ok-2")).unwrap(),
        JobState::Succeeded
    );
}

// --- Rebinding ---------------------------------------------------------------------------

#[test]
fn rebind_moves_the_outcome_with_the_job() {
    let mut qrio = two_device_qrio();
    let id = qrio.enqueue(&fidelity_request("migrant", 4, 0)).unwrap();
    let decision = qrio.schedule(&id).unwrap();
    assert_eq!(decision.node, "alpha", "the cleaner device wins initially");

    // A vendor-side migration onto the other (ranked) candidate.
    qrio.rebind(&id, "beta").unwrap();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Scheduled);
    assert_eq!(qrio.job_status(&id).unwrap().node.as_deref(), Some("beta"));
    // Rebinding onto the current device is a no-op.
    qrio.rebind(&id, "beta").unwrap();

    qrio.execute(&id).unwrap();
    let outcome = qrio.outcome(&id).unwrap();
    assert_eq!(
        outcome.decision.node, "beta",
        "the outcome reports the device that actually ran the job"
    );
    // The score follows the node within the original candidate ranking.
    let beta_score = outcome
        .decision
        .candidates
        .iter()
        .find(|(name, _)| name == "beta")
        .map(|(_, score)| *score)
        .unwrap();
    assert_eq!(outcome.decision.score, beta_score);
    // The watch log shows the rebind arc with its reason.
    assert!(qrio.watch(0).iter().any(|event| {
        event.from == Some(JobState::Scheduled)
            && event.to == JobState::Scheduled
            && event
                .reason
                .as_deref()
                .is_some_and(|r| r.contains("rebound from 'alpha' to 'beta'"))
    }));
}

// --- Unschedulable jobs ------------------------------------------------------------------

#[test]
fn unschedulable_jobs_end_failed_not_an_enqueue_error() {
    let mut qrio = two_device_qrio();
    // Too many qubits for any device in the fleet.
    let oversized = fidelity_request("too-big", 16, 0);
    let id = qrio.enqueue(&oversized).expect("enqueue itself succeeds");
    assert_eq!(qrio.status(&id).unwrap(), JobState::Queued);
    let terminal = qrio.run_until_idle();
    assert_eq!(terminal, vec![id.clone()]);
    assert_eq!(qrio.status(&id).unwrap(), JobState::Failed);
    let status = qrio.job_status(&id).unwrap();
    assert!(status.reason.as_deref().unwrap().contains("unschedulable"));
    // The outcome carries the same unschedulable error the blocking submit
    // would have returned.
    assert!(matches!(
        qrio.outcome(&id),
        Err(QrioError::Cluster(ClusterError::Unschedulable { .. }))
    ));

    // Impossible device requirements behave identically.
    let circuit = library::ghz(4).unwrap();
    let impossible = JobRequestBuilder::new()
        .with_circuit(&circuit)
        .job_name("impossible-req")
        .fidelity_target(0.9)
        .requirements(DeviceRequirements {
            max_two_qubit_error: Some(1e-9),
            ..DeviceRequirements::default()
        })
        .build()
        .unwrap();
    let id = qrio.enqueue(&impossible).unwrap();
    qrio.run_until_idle();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Failed);
}

#[test]
fn jobs_waiting_on_busy_resources_defer_instead_of_failing() {
    let mut qrio = fast_qrio();
    // A node that can hold exactly two default-sized (500 mCPU / 512 MiB)
    // jobs at a time.
    qrio.add_device_with_resources(
        Backend::uniform("narrow", topology::line(8), 0.005, 0.02),
        Resources::new(1100, 1100),
    )
    .unwrap();
    let first = qrio.enqueue(&fidelity_request("fills-1", 3, 0)).unwrap();
    let second = qrio.enqueue(&fidelity_request("fills-2", 3, 0)).unwrap();
    let third = qrio.enqueue(&fidelity_request("waits", 3, 0)).unwrap();

    // Tick 1: the first two bind and fill the node; the third defers. Only
    // one job executes per device per tick, so the second keeps its
    // reservation into the next cycle.
    let report = qrio.tick();
    assert_eq!(report.scheduled, vec![first.clone(), second.clone()]);
    assert_eq!(report.deferred, vec![third.clone()]);
    assert_eq!(report.completed, vec![first.clone()]);
    assert_eq!(
        qrio.status(&third).unwrap(),
        JobState::Queued,
        "a transient resource shortage is not a terminal failure"
    );
    // Ticking on drains the queue, freeing the node for the third.
    let terminal = qrio.run_until_idle();
    assert!(terminal.contains(&third));
    for id in [&first, &second, &third] {
        assert_eq!(qrio.status(id).unwrap(), JobState::Succeeded);
    }
}

// --- Terminal-failure cleanup (resource-leak regression) ---------------------------------

#[test]
fn failed_submissions_do_not_leak_metadata_or_images() {
    let mut qrio = two_device_qrio();

    // 1. Unschedulable job: metadata and image are garbage-collected once
    //    the failure is terminal.
    let id = qrio
        .enqueue(&fidelity_request("leak-sched", 16, 0))
        .unwrap();
    assert!(qrio.meta().job_metadata("leak-sched").is_some());
    assert!(qrio.cluster().registry().contains("qrio/leak-sched:latest"));
    qrio.run_until_idle();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Failed);
    assert!(
        qrio.meta().job_metadata("leak-sched").is_none(),
        "meta server must not keep metadata of terminally-failed jobs"
    );
    assert!(
        !qrio.cluster().registry().contains("qrio/leak-sched:latest"),
        "registry must not keep images of terminally-failed jobs"
    );
    // The cluster job record survives as queryable history.
    assert!(qrio
        .cluster()
        .job("leak-sched")
        .unwrap()
        .phase()
        .is_terminal());

    // 2. Execution failure: a min_queue job without a circuit schedules
    //    fine but fails in the runner; its artifacts are collected too.
    let no_circuit = JobRequestBuilder::new()
        .job_name("leak-exec")
        .num_qubits(3)
        .min_queue()
        .build()
        .unwrap();
    let id = qrio.enqueue(&no_circuit).unwrap();
    qrio.run_until_idle();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Failed);
    assert!(matches!(
        qrio.outcome(&id),
        Err(QrioError::Cluster(ClusterError::ExecutionFailed { .. }))
    ));
    assert!(qrio.meta().job_metadata("leak-exec").is_none());
    assert!(!qrio.cluster().registry().contains("qrio/leak-exec:latest"));

    // 3. Successful jobs keep their metadata and image: results, logs and
    //    re-scores stay available.
    let id = qrio.enqueue(&fidelity_request("keeper", 4, 0)).unwrap();
    qrio.run_until_idle();
    assert_eq!(qrio.status(&id).unwrap(), JobState::Succeeded);
    assert!(qrio.meta().job_metadata("keeper").is_some());
    assert!(qrio.cluster().registry().contains("qrio/keeper:latest"));

    // 4. The meta server's store contains exactly the live jobs.
    assert_eq!(qrio.meta().job_names(), vec!["keeper"]);
}

#[test]
fn rejected_enqueue_rolls_back_the_upload() {
    let mut qrio = two_device_qrio();
    // An invalid strategy reference fails validation at upload time and
    // leaves nothing behind.
    let circuit = library::ghz(3).unwrap();
    let bad = JobRequestBuilder::new()
        .with_circuit(&circuit)
        .job_name("never-was")
        .strategy(qrio_cluster::StrategySpec::new("no-such-strategy"))
        .build()
        .unwrap();
    assert!(qrio.enqueue(&bad).is_err());
    assert!(qrio.meta().job_metadata("never-was").is_none());
    assert!(!qrio.cluster().registry().contains("qrio/never-was:latest"));
    assert!(qrio.cluster().job("never-was").is_none());
    assert_eq!(qrio.meta().job_count(), 0);
}

/// Pins the beyond-the-end watch contract: a cursor at or past the log end
/// returns an empty slice — never a panic, never a typed error. Pollers that
/// raced ahead (or persisted a cursor from a longer-lived log) keep polling.
#[test]
fn watch_cursors_beyond_the_log_end_return_empty() {
    let mut qrio = two_device_qrio();
    assert!(qrio.watch(0).is_empty());
    assert!(qrio.watch(u64::MAX).is_empty());

    let id = qrio.enqueue(&fidelity_request("w-end", 3, 0)).unwrap();
    qrio.run_until_idle();
    drop(id);
    let len = qrio.watch(0).len() as u64;
    assert!(len > 0);
    assert_eq!(qrio.watch(len - 1).len(), 1);
    assert!(qrio.watch(len).is_empty());
    assert!(qrio.watch(len + 1).is_empty());
    assert!(qrio.watch(u64::MAX).is_empty());
}

// --- Determinism pins (watch streams, listings, replays) ---------------------------------

/// Render the full watch log into comparable lines.
fn watch_lines(qrio: &Qrio) -> Vec<String> {
    qrio.watch(0)
        .iter()
        .map(|e| {
            format!(
                "{}@{} {:?}->{:?} node={:?} reason={:?}",
                e.job, e.at, e.from, e.to, e.node, e.reason
            )
        })
        .collect()
}

#[test]
fn watch_streams_and_listings_replay_byte_identically() {
    let run = || {
        let mut qrio = two_device_qrio();
        let batch = vec![
            fidelity_request("r-1", 3, 1),
            fidelity_request("r-2", 4, 0),
            fidelity_request("r-3", 16, 2), // unschedulable
            fidelity_request("r-4", 3, 1),
        ];
        let ids: Vec<JobId> = qrio
            .enqueue_all(&batch)
            .into_iter()
            .collect::<Result<_, _>>()
            .unwrap();
        qrio.cancel(&ids[3]).unwrap();
        qrio.run_until_idle();
        (
            watch_lines(&qrio),
            qrio.cluster()
                .jobs()
                .map(|j| j.name().to_string())
                .collect::<Vec<_>>(),
            qrio.meta()
                .job_names()
                .into_iter()
                .map(str::to_string)
                .collect::<Vec<_>>(),
            qrio.cluster().registry().image_names().len(),
        )
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same inputs, same streams, same listings");

    // Listings iterate in sorted order — never insertion or hash order.
    let (_, job_names, meta_names, _) = first;
    let mut sorted = job_names.clone();
    sorted.sort();
    assert_eq!(job_names, sorted);
    let mut sorted = meta_names.clone();
    sorted.sort();
    assert_eq!(meta_names, sorted);
}

// --- Property test: observed transitions are always legal --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random workloads — mixed priorities, oversized (unschedulable) jobs,
    /// cancellations at arbitrary points, interleaved ticks — never produce
    /// a transition outside the documented state machine, and every job
    /// reaches exactly one terminal state.
    #[test]
    fn observed_transition_sequences_are_legal(
        priorities in proptest::collection::vec(0u8..4, 1..6),
        cancel_mask in 0u32..64,
        oversize_mask in 0u32..64,
        ticks_between in 0usize..3,
    ) {
        let mut qrio = two_device_qrio();
        let mut ids = Vec::new();
        for (i, &priority) in priorities.iter().enumerate() {
            let oversized = (oversize_mask >> i) & 1 == 1;
            let qubits = if oversized { 16 } else { 3 };
            let id = qrio
                .enqueue(&fidelity_request(&format!("p-{i}"), qubits, priority))
                .unwrap();
            if (cancel_mask >> i) & 1 == 1 {
                // May or may not be legal depending on interleaved ticks;
                // either way the state machine must stay consistent.
                let _ = qrio.cancel(&id);
            }
            for _ in 0..ticks_between {
                qrio.tick();
            }
            ids.push(id);
        }
        qrio.run_until_idle();

        for id in &ids {
            let status = qrio.job_status(id).unwrap();
            prop_assert!(
                status.state.is_terminal(),
                "job {id} ended in non-terminal {:?}",
                status.state
            );
            let history = &status.history;
            prop_assert_eq!(history.first().map(|(_, s)| *s), Some(JobState::Submitted));
            prop_assert_eq!(history.last().map(|(_, s)| *s), Some(status.state));
            for window in history.windows(2) {
                let (at_a, from) = window[0];
                let (at_b, to) = window[1];
                prop_assert!(
                    from.can_transition_to(to),
                    "job {id}: illegal transition {from:?} -> {to:?}"
                );
                prop_assert!(at_a <= at_b, "job {id}: time ran backwards");
            }
        }
        // The global watch log agrees with the per-job histories.
        for event in qrio.watch(0) {
            match event.from {
                None => prop_assert_eq!(event.to, JobState::Submitted),
                Some(from) => prop_assert!(from.can_transition_to(event.to)),
            }
        }
        // Sequences are dense: a watch cursor can never miss an event.
        for (idx, event) in qrio.watch(0).iter().enumerate() {
            prop_assert_eq!(event.seq, idx as u64);
        }
    }
}
