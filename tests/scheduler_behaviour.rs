//! Integration tests for the QRIO scheduler against generated fleets:
//! filtering, ranking, and comparison with the random and oracle baselines.

use qrio_backend::fleet::{generate_fleet, FleetConfig};
use qrio_backend::{topology, Backend};
use qrio_circuit::{library, qasm};
use qrio_cluster::DeviceRequirements;
use qrio_meta::{FidelityRankingConfig, MetaServer};
use qrio_scheduler::{
    achieved_fidelity, filter_backends, oracle_select, QrioScheduler, RandomScheduler,
};

fn small_fleet() -> Vec<Backend> {
    generate_fleet(&FleetConfig::small(), 9).unwrap()
}

fn meta_for(fleet: &[Backend]) -> MetaServer {
    // 256 canary shots: enough precision for the pick to track the oracle on
    // the small fleet (96 was borderline and flaky across RNG streams).
    let mut meta = MetaServer::with_config(FidelityRankingConfig {
        shots: 256,
        seed: 17,
        shortfall_weight: 100.0,
    });
    for backend in fleet {
        meta.register_backend(backend.clone());
    }
    meta
}

#[test]
fn qrio_beats_the_random_scheduler_on_achieved_fidelity() {
    let fleet = small_fleet();
    let mut meta = meta_for(&fleet);
    let circuit = library::repetition_code_encoder(5).unwrap();
    meta.upload_fidelity_metadata("rep-job", 1.0, &qasm::to_qasm(&circuit))
        .unwrap();

    let scheduler = QrioScheduler::new(&meta);
    let decision = scheduler
        .select_device("rep-job", &fleet, &DeviceRequirements::none())
        .unwrap();
    let qrio_backend = fleet.iter().find(|b| b.name() == decision.device).unwrap();
    let qrio_fidelity = achieved_fidelity(&circuit, qrio_backend, 128, 3).unwrap();

    // Average fidelity over several random choices.
    let runnable: Vec<&Backend> = fleet
        .iter()
        .filter(|b| achieved_fidelity(&circuit, b, 64, 3).is_ok())
        .collect();
    let mut random = RandomScheduler::new(29);
    let mut total = 0.0;
    let draws = 8;
    for _ in 0..draws {
        let pick = random.pick(&runnable).unwrap();
        total += achieved_fidelity(&circuit, pick, 128, 3).unwrap();
    }
    let random_fidelity = total / f64::from(draws);
    assert!(
        qrio_fidelity + 1e-9 >= random_fidelity,
        "QRIO ({qrio_fidelity:.3}) should not be worse than random ({random_fidelity:.3}) on average"
    );
}

#[test]
fn qrio_choice_tracks_the_oracle_choice() {
    let fleet = small_fleet();
    let mut meta = meta_for(&fleet);
    let circuit = library::bernstein_vazirani(6, 0b110011).unwrap();
    meta.upload_fidelity_metadata("bv-job", 1.0, &qasm::to_qasm(&circuit))
        .unwrap();

    let scheduler = QrioScheduler::new(&meta);
    let decision = scheduler
        .select_device("bv-job", &fleet, &DeviceRequirements::none())
        .unwrap();
    let oracle = oracle_select(&circuit, &fleet, 128, 5).unwrap();

    let qrio_backend = fleet.iter().find(|b| b.name() == decision.device).unwrap();
    let qrio_fidelity = achieved_fidelity(&circuit, qrio_backend, 128, 5).unwrap();
    // The Clifford choice should reach a large fraction of the oracle's fidelity.
    assert!(
        qrio_fidelity >= oracle.best_fidelity * 0.7,
        "clifford choice {qrio_fidelity:.3} vs oracle {:.3}",
        oracle.best_fidelity
    );
    // And should be at least as good as the fleet median.
    assert!(qrio_fidelity + 0.1 >= oracle.median_fidelity());
}

#[test]
fn filtering_respects_every_bound_on_the_paper_fleet_subset() {
    let fleet = small_fleet();
    let req = DeviceRequirements {
        min_qubits: Some(10),
        max_two_qubit_error: Some(0.45),
        max_readout_error: Some(0.2),
        min_t1_us: Some(50_000.0),
        min_t2_us: Some(50_000.0),
    };
    for backend in filter_backends(&fleet, &req) {
        assert!(backend.num_qubits() >= 10);
        assert!(backend.avg_two_qubit_error() <= 0.45);
        assert!(backend.avg_readout_error() <= 0.2);
        assert!(backend.avg_t1_us() >= 50_000.0);
        assert!(backend.avg_t2_us() >= 50_000.0);
    }
}

#[test]
fn tighter_filters_shrink_the_shortlist_monotonically() {
    let fleet = small_fleet();
    let mut previous = usize::MAX;
    for threshold in [0.7, 0.5, 0.3, 0.2, 0.1, 0.05] {
        let req = DeviceRequirements {
            max_two_qubit_error: Some(threshold),
            ..DeviceRequirements::default()
        };
        let count = filter_backends(&fleet, &req).len();
        assert!(count <= previous, "count must shrink as the bound tightens");
        previous = count;
    }
}

#[test]
fn topology_scheduling_prefers_denser_devices_for_dense_requests() {
    // A fully-connected 4-qubit request against one dense and one sparse
    // device with equal error rates.
    let devices = vec![
        Backend::uniform("dense", topology::fully_connected(6), 0.01, 0.05),
        Backend::uniform("sparse", topology::line(6), 0.01, 0.05),
    ];
    let mut meta = meta_for(&devices);
    let request = library::topology_circuit(4, &topology::fully_connected(4).edges()).unwrap();
    meta.upload_topology_metadata("dense-req", request);
    let scheduler = QrioScheduler::new(&meta);
    let decision = scheduler
        .select_device("dense-req", &devices, &DeviceRequirements::none())
        .unwrap();
    assert_eq!(decision.device, "dense");
}
