//! Integration tests for the Kubernetes-like substrate working together with
//! the master server artifacts: images, YAML specs, node lifecycle and the
//! FIFO queue.

use qrio::{containerize, JobRequestBuilder, SimJobRunner};
use qrio_backend::{topology, Backend};
use qrio_circuit::library;
use qrio_cluster::{framework, yaml, Cluster, JobPhase, Node, Resources};

fn node(name: &str, qubits: usize, err: f64) -> Node {
    Node::from_backend(
        Backend::uniform(name, topology::grid(2, qubits.div_ceil(2)), 0.01, err),
        Resources::new(4000, 8192),
    )
}

fn containerized_request(
    name: &str,
    qubits: usize,
) -> (qrio_cluster::JobSpec, qrio_cluster::ImageBundle) {
    let circuit = library::ghz(qubits).unwrap();
    let request = JobRequestBuilder::new()
        .with_circuit(&circuit)
        .job_name(name)
        .fidelity_target(0.8)
        .shots(96)
        .build()
        .unwrap();
    let job = containerize(&request).unwrap();
    (job.spec, job.image)
}

#[test]
fn master_server_artifacts_run_on_the_cluster() {
    let mut cluster = Cluster::new();
    cluster.add_node(node("quiet", 6, 0.02)).unwrap();
    cluster.add_node(node("loud", 6, 0.4)).unwrap();

    let (spec, image) = containerized_request("ghz-cluster", 4);
    // The YAML document the master server writes round-trips.
    let yaml_text = yaml::to_yaml(&spec);
    let parsed = yaml::from_yaml(&yaml_text).unwrap();
    assert_eq!(parsed.name, spec.name);
    assert_eq!(parsed.num_qubits, spec.num_qubits);

    cluster.push_image(image);
    cluster.submit_job(spec).unwrap();
    let decision = cluster
        .schedule_job(
            "ghz-cluster",
            &framework::default_filters(),
            &framework::AverageErrorScore,
        )
        .unwrap();
    assert_eq!(decision.node, "quiet");
    cluster
        .run_job("ghz-cluster", &SimJobRunner::new(3))
        .unwrap();
    let job = cluster.job("ghz-cluster").unwrap();
    assert!(matches!(job.phase(), JobPhase::Succeeded { .. }));
    assert!(job.achieved_fidelity().unwrap() > 0.5);
    assert!(job.logs().iter().any(|l| l.contains("transpiled")));
}

#[test]
fn node_failure_heal_and_reschedule() {
    let mut cluster = Cluster::new();
    cluster.add_node(node("alpha", 6, 0.05)).unwrap();
    cluster.add_node(node("beta", 6, 0.02)).unwrap();

    // Beta (the better device) goes down: jobs land on alpha.
    cluster.node_mut("beta").unwrap().mark_not_ready();
    let (spec, image) = containerized_request("failover-job", 4);
    cluster.push_image(image);
    cluster.submit_job(spec).unwrap();
    let decision = cluster
        .schedule_job(
            "failover-job",
            &framework::default_filters(),
            &framework::AverageErrorScore,
        )
        .unwrap();
    assert_eq!(decision.node, "alpha");
    assert!(decision
        .filtered_out
        .iter()
        .any(|(n, reason)| n == "beta" && reason.contains("not ready")));

    // Self-healing brings beta back and the next job prefers it again.
    assert_eq!(cluster.heal_nodes(), vec!["beta"]);
    let (spec2, image2) = containerized_request("post-heal-job", 4);
    cluster.push_image(image2);
    cluster.submit_job(spec2).unwrap();
    let decision2 = cluster
        .schedule_job(
            "post-heal-job",
            &framework::default_filters(),
            &framework::AverageErrorScore,
        )
        .unwrap();
    assert_eq!(decision2.node, "beta");
}

#[test]
fn fifo_queue_runs_every_job_with_the_real_runner() {
    let mut cluster = Cluster::new();
    cluster.add_node(node("only-node", 6, 0.05)).unwrap();
    for i in 0..3 {
        let (spec, image) = containerized_request(&format!("queued-{i}"), 3);
        cluster.push_image(image);
        cluster.submit_job(spec).unwrap();
    }
    assert_eq!(cluster.pending_jobs().len(), 3);
    let decisions = cluster.process_queue(
        &framework::default_filters(),
        &framework::AverageErrorScore,
        &SimJobRunner::new(9),
    );
    assert_eq!(decisions.len(), 3);
    for i in 0..3 {
        let job = cluster.job(&format!("queued-{i}")).unwrap();
        assert!(
            matches!(job.phase(), JobPhase::Succeeded { .. }),
            "job {i} did not finish"
        );
    }
    // Node resources fully released after the queue drained.
    assert_eq!(
        cluster.node("only-node").unwrap().allocated(),
        Resources::new(0, 0)
    );
}

#[test]
fn registry_tracks_pushes_and_pulls() {
    let mut cluster = Cluster::new();
    cluster.add_node(node("n", 4, 0.05)).unwrap();
    let (spec, image) = containerized_request("registry-job", 3);
    assert_eq!(image.len(), 4, "circuit, runner, requirements, Dockerfile");
    cluster.push_image(image);
    assert!(cluster.registry().contains(&spec.image));
    cluster.submit_job(spec).unwrap();
    cluster
        .schedule_job(
            "registry-job",
            &framework::default_filters(),
            &framework::AverageErrorScore,
        )
        .unwrap();
    cluster
        .run_job("registry-job", &SimJobRunner::new(1))
        .unwrap();
    assert_eq!(cluster.registry().pull_count(), 1);
}

/// Determinism audit pin: every user-visible listing of the cluster and the
/// meta server iterates in sorted (BTree) order, independent of insertion
/// order — the property batch draining, watch streams and bulk operations
/// rely on. If a store ever regresses to a hash-ordered map, this test
/// catches it.
#[test]
fn listings_iterate_in_sorted_order_regardless_of_insertion_order() {
    let insertion_orders = [
        vec!["zeta", "alpha", "mid"],
        vec!["mid", "zeta", "alpha"],
        vec!["alpha", "mid", "zeta"],
    ];
    for order in &insertion_orders {
        let mut cluster = Cluster::new();
        let mut meta = qrio_meta::MetaServer::new();
        for name in order {
            cluster.add_node(node(name, 6, 0.02)).unwrap();
            meta.register_backend(Backend::uniform(*name, topology::line(6), 0.01, 0.02));
            let (spec, image) = containerized_request(&format!("job-{name}"), 4);
            cluster.push_image(image);
            cluster.submit_job(spec).unwrap();
        }
        let node_names: Vec<&str> = cluster.nodes().map(|n| n.name()).collect();
        assert_eq!(node_names, vec!["alpha", "mid", "zeta"]);
        let job_names: Vec<&str> = cluster.jobs().map(|j| j.name()).collect();
        assert_eq!(job_names, vec!["job-alpha", "job-mid", "job-zeta"]);
        assert_eq!(
            cluster.registry().image_names(),
            vec![
                "qrio/job-alpha:latest",
                "qrio/job-mid:latest",
                "qrio/job-zeta:latest"
            ]
        );
        assert_eq!(meta.device_names(), vec!["alpha", "mid", "zeta"]);
        // Load listings (the bulk telemetry feed) are name-ordered too.
        let load_names: Vec<String> = cluster
            .node_loads()
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        assert_eq!(load_names, vec!["alpha", "mid", "zeta"]);
        // The FIFO submission queue, by contrast, keeps submission order.
        let expected_queue: Vec<String> = order.iter().map(|name| format!("job-{name}")).collect();
        assert_eq!(cluster.pending_jobs(), expected_queue);
    }
}
