//! Shape checks for the paper's experiments (§4) on reduced configurations:
//! the directions and orderings the paper reports must hold, even though the
//! absolute numbers differ from the authors' testbed.

use qrio::experiments::{
    fig10_filtering, fig6_default_topologies, fig7_for_circuit, fig9_topology_choice,
    ExperimentConfig,
};
use qrio_backend::fleet::{generate_fleet, paper_fleet, FleetConfig};
use qrio_circuit::library;

fn fast_config() -> ExperimentConfig {
    ExperimentConfig {
        shots: 96,
        seed: 23,
        repetitions: 5,
    }
}

#[test]
fn fig6_shape_qrio_always_beats_random() {
    let fleet = generate_fleet(&FleetConfig::small(), 2).unwrap();
    let rows = fig6_default_topologies(&fleet, &fast_config()).unwrap();
    assert_eq!(rows.len(), 5, "five default topologies");
    for row in &rows {
        // "our simulated scheduler code works always better than the random
        //  choice" — the decrease is non-negative for every topology.
        assert!(row.average_decrease >= -1e-9, "{} regressed", row.topology);
        assert!(row.qrio_score <= row.random_mean_score + 1e-9);
    }
    let names: Vec<&str> = rows.iter().map(|r| r.topology.as_str()).collect();
    assert_eq!(
        names,
        vec!["grid", "line", "ring", "heavy_square", "fully_connected"]
    );
}

#[test]
fn fig7_shape_oracle_beats_clifford_beats_typical_devices() {
    let fleet = generate_fleet(&FleetConfig::small(), 4).unwrap();
    let config = fast_config();
    // Use two representative circuits to keep the test fast: one Clifford
    // (Rep) and one non-Clifford (Grover).
    for (name, circuit) in [
        (
            "Rep".to_string(),
            library::repetition_code_encoder(5).unwrap(),
        ),
        ("Grover".to_string(), library::grover(3, 5).unwrap()),
    ] {
        let row = fig7_for_circuit(&name, &circuit, &fleet, &config).unwrap();
        // Oracle is an upper bound (up to sampling noise).
        assert!(
            row.oracle + 0.05 >= row.clifford,
            "{name}: oracle {:.3} vs clifford {:.3}",
            row.oracle,
            row.clifford
        );
        // The Clifford choice beats the fleet median (the paper's headline).
        assert!(
            row.clifford + 0.1 >= row.median,
            "{name}: clifford {:.3} vs median {:.3}",
            row.clifford,
            row.median
        );
        // All quantities are valid fidelities.
        for value in [
            row.oracle,
            row.clifford,
            row.random,
            row.average,
            row.median,
        ] {
            assert!((0.0..=1.0 + 1e-9).contains(&value));
        }
    }
}

#[test]
fn fig9_shape_tree_device_is_always_selected() {
    let config = ExperimentConfig {
        repetitions: 50,
        ..fast_config()
    };
    let result = fig9_topology_choice(&config).unwrap();
    assert_eq!(result.selections.len(), 50);
    assert!(
        result.always_selected_expected(),
        "the tree device must win every repetition"
    );
}

#[test]
fn fig10_shape_on_the_full_paper_fleet() {
    let fleet = paper_fleet().unwrap();
    assert_eq!(fleet.len(), 100);
    let sweep = fig10_filtering(&fleet);
    assert_eq!(sweep.len(), 10);
    // Monotone growth from (almost) zero to the full fleet.
    for window in sweep.windows(2) {
        assert!(window[0].1 <= window[1].1);
    }
    assert!(
        sweep[0].1 <= 10,
        "0.07 threshold admits almost nothing: {:?}",
        sweep[0]
    );
    assert_eq!(sweep[9].1, 100, "0.68 threshold admits the whole fleet");
}
