//! Cross-crate integration and property-based tests for the quantum toolchain
//! substrates: QASM round-trips, transpilation onto fleet devices, Clifford
//! canaries, and simulator agreement.

use proptest::prelude::*;

use qrio_backend::fleet::{generate_fleet, FleetConfig};
use qrio_backend::{topology, Backend, CouplingMap};
use qrio_circuit::{library, qasm};
use qrio_meta::{canary_fidelity_on_backend, FidelityRankingConfig};
use qrio_sim::{run_ideal, StabilizerSimulator};
use qrio_transpiler::{deflate, transpile};

#[test]
fn benchmark_circuits_transpile_onto_every_small_fleet_device() {
    let fleet = generate_fleet(&FleetConfig::small(), 8).unwrap();
    let circuits = [
        library::bernstein_vazirani(5, 0b10101).unwrap(),
        library::grover(3, 1).unwrap(),
        library::hidden_subgroup(4).unwrap(),
    ];
    for backend in &fleet {
        for circuit in &circuits {
            if circuit.num_qubits() > backend.num_qubits() {
                continue;
            }
            let result = transpile(circuit, backend).unwrap();
            for inst in result.circuit.instructions() {
                if inst.is_two_qubit_gate() {
                    assert!(backend
                        .coupling_map()
                        .has_edge(inst.qubits[0], inst.qubits[1]));
                }
                if !inst.gate.is_directive() {
                    assert!(backend.basis_gates().contains(inst.gate.name()));
                }
            }
        }
    }
}

#[test]
fn canary_fidelity_is_monotone_in_device_noise() {
    let circuit = library::bernstein_vazirani(6, 0b110110).unwrap();
    let config = FidelityRankingConfig {
        shots: 128,
        seed: 3,
        shortfall_weight: 100.0,
    };
    let mut previous = 1.1;
    for (name, err) in [("a", 0.0), ("b", 0.1), ("c", 0.4)] {
        let backend = Backend::uniform(name, topology::line(8), err / 10.0, err);
        let fidelity = canary_fidelity_on_backend(&circuit, &backend, &config).unwrap();
        assert!(
            fidelity <= previous + 0.05,
            "fidelity should not grow with noise"
        );
        previous = fidelity;
    }
}

#[test]
fn clifford_canary_of_every_benchmark_is_clifford_and_structurally_faithful() {
    for (_, circuit) in [
        ("bv", library::bernstein_vazirani(10, 0b1011001101).unwrap()),
        ("grover", library::grover(3, 5).unwrap()),
        ("circ", library::random_circuit(7, 4, 0xC1).unwrap()),
        (
            "circ2",
            library::random_circuit_with_cx_count(8, 12, 0xC2).unwrap(),
        ),
    ] {
        let canary = circuit.to_clifford();
        assert!(canary.is_clifford());
        assert!(canary.two_qubit_gate_count() >= circuit.two_qubit_gate_count());
        assert_eq!(canary.num_qubits(), circuit.num_qubits());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// QASM round-trips preserve random circuits exactly (gate counts, qubit
    /// count and interaction structure).
    #[test]
    fn qasm_roundtrip_preserves_random_circuits(seed in 0u64..500, qubits in 2usize..7, depth in 1usize..5) {
        let circuit = library::random_circuit(qubits, depth, seed).unwrap();
        let text = qasm::to_qasm(&circuit);
        let parsed = qasm::parse_qasm(&text).unwrap();
        prop_assert_eq!(parsed.num_qubits(), circuit.num_qubits());
        prop_assert_eq!(parsed.len(), circuit.len());
        prop_assert_eq!(parsed.count_ops(), circuit.count_ops());
        prop_assert_eq!(parsed.interaction_graph(), circuit.interaction_graph());
    }

    /// Random Clifford circuits agree between the stabilizer and statevector
    /// engines (distribution-level check on small registers).
    #[test]
    fn stabilizer_matches_statevector_on_random_cliffords(seed in 0u64..200) {
        let clifford = library::random_clifford_circuit(4, 3, seed).unwrap();
        let counts_stab = run_ideal(&clifford, 1500, seed).unwrap();
        // Force the statevector engine by appending a cancelling T/Tdg pair.
        let mut forced = clifford.without_measurements();
        forced.t(0).unwrap();
        forced.tdg(0).unwrap();
        forced.measure_all().unwrap();
        let counts_sv = run_ideal(&forced, 1500, seed).unwrap();
        let fidelity = counts_stab.hellinger_fidelity(&counts_sv);
        prop_assert!(fidelity > 0.9, "engines disagree: {}", fidelity);
    }

    /// Transpilation preserves measurement counts and produces only coupled
    /// two-qubit gates on random connected devices.
    #[test]
    fn transpile_respects_random_devices(seed in 0u64..100, qubits in 3usize..6) {
        let circuit = library::random_circuit(qubits, 3, seed).unwrap();
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let map = topology::random_connected(qubits + 4, 0.3, 4, &mut rng);
        let backend = Backend::uniform("prop-dev", map, 0.01, 0.05);
        let result = transpile(&circuit, &backend).unwrap();
        prop_assert_eq!(result.circuit.measurement_count(), circuit.measurement_count());
        for inst in result.circuit.instructions() {
            if inst.is_two_qubit_gate() {
                prop_assert!(backend.coupling_map().has_edge(inst.qubits[0], inst.qubits[1]));
            }
        }
        // Deflation keeps the two-qubit gates coupled on the sub-device.
        let deflated = deflate(&result.circuit, &backend).unwrap();
        for inst in deflated.circuit.instructions() {
            if inst.is_two_qubit_gate() {
                prop_assert!(deflated.backend.coupling_map().has_edge(inst.qubits[0], inst.qubits[1]));
            }
        }
    }

    /// Coupling-map distances form a metric on random connected graphs.
    #[test]
    fn coupling_map_distances_are_a_metric(seed in 0u64..100, n in 3usize..12) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let map: CouplingMap = topology::random_connected(n, 0.3, 4, &mut rng);
        let dist = map.distance_matrix();
        for a in 0..n {
            prop_assert_eq!(dist[a][a], 0);
            for b in 0..n {
                prop_assert_eq!(dist[a][b], dist[b][a]);
                for c in 0..n {
                    prop_assert!(dist[a][c] <= dist[a][b] + dist[b][c]);
                }
            }
        }
    }

    /// The Bernstein–Vazirani circuit always returns its secret on an ideal
    /// simulator, for every secret.
    #[test]
    fn bv_recovers_every_secret(secret in 0u64..64) {
        let circuit = library::bernstein_vazirani(6, secret).unwrap();
        let counts = run_ideal(&circuit, 128, secret).unwrap();
        prop_assert_eq!(counts.most_frequent(), Some(secret));
    }

    /// Stabilizer measurements of GHZ states are perfectly correlated at any
    /// width (exercises the Gottesman–Knill path well beyond statevector
    /// reach).
    #[test]
    fn ghz_correlations_hold_at_scale(width in 2usize..40, seed in 0u64..50) {
        let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(seed);
        let mut sim = StabilizerSimulator::new(width);
        sim.h(0);
        for q in 1..width {
            sim.cx(q - 1, q);
        }
        let outcomes: Vec<bool> = (0..width).map(|q| sim.measure(q, &mut rng)).collect();
        prop_assert!(outcomes.iter().all(|&o| o == outcomes[0]));
    }

    /// Circuit depth never exceeds instruction count and is preserved under
    /// qubit relabelling.
    #[test]
    fn depth_invariants(seed in 0u64..200, qubits in 2usize..6, depth in 1usize..6) {
        let circuit = library::random_circuit(qubits, depth, seed).unwrap();
        prop_assert!(circuit.depth() <= circuit.len());
        let shift: Vec<usize> = (0..qubits).map(|q| q + 2).collect();
        let remapped = circuit.remap_qubits(&shift, qubits + 2).unwrap();
        prop_assert_eq!(remapped.depth(), circuit.depth());
        prop_assert_eq!(remapped.two_qubit_gate_count(), circuit.two_qubit_gate_count());
    }
}
