//! Table 1: the metadata sent to the QRIO Meta Server depends on the option
//! the user chose (fidelity vs. topology vs. any other registered strategy),
//! and scoring dispatches through the strategy registry by name.

use qrio_backend::{topology, Backend};
use qrio_circuit::{library, qasm};
use qrio_cluster::StrategySpec;
use qrio_meta::MetaServer;

fn meta_with_devices() -> MetaServer {
    let mut meta = MetaServer::new();
    meta.register_backend(Backend::uniform("dev-a", topology::line(8), 0.01, 0.05));
    meta.register_backend(Backend::uniform("dev-b", topology::ring(8), 0.01, 0.05));
    meta
}

#[test]
fn fidelity_option_stores_fidelity_number_and_original_circuit() {
    let mut meta = meta_with_devices();
    let circuit = library::grover(3, 2).unwrap();
    meta.upload_fidelity_metadata("grover-job", 0.85, &qasm::to_qasm(&circuit))
        .unwrap();
    let record = meta.job_metadata("grover-job").unwrap();
    assert_eq!(record.strategy_name(), "fidelity");
    assert!((record.params().get_f64("target").unwrap() - 0.85).abs() < 1e-12);
    let stored = record.circuit().unwrap();
    assert_eq!(stored.num_qubits(), 3);
    assert_eq!(stored.count_ops(), circuit.count_ops());
    // Scoring such a job produces a fidelity score with a canary breakdown.
    let score = meta.score("grover-job", "dev-a").unwrap();
    assert!(score.detail("canary_fidelity").is_some());
}

#[test]
fn topology_option_stores_the_topology_circuit_only() {
    let mut meta = meta_with_devices();
    let topo = library::topology_circuit(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
    meta.upload_topology_metadata("topo-job", topo.clone());
    let record = meta.job_metadata("topo-job").unwrap();
    assert_eq!(record.strategy_name(), "topology");
    assert!(record.params().is_empty());
    let stored = record.circuit().unwrap();
    assert_eq!(stored.interaction_graph(), topo.interaction_graph());
    assert_eq!(stored.two_qubit_gate_count(), 4);
    let score = meta.score("topo-job", "dev-b").unwrap();
    assert!(score.detail("exact_embedding").is_some());
}

#[test]
fn strategy_dispatch_follows_the_stored_metadata() {
    // "checks the database if a fidelity threshold exists for the job. If so,
    //  that job is scored using a Fidelity Ranking strategy, and if not it is
    //  scored using a Topology Ranking strategy." (§3.4) — generalized: the
    //  stored strategy *name* selects the registry plugin.
    let mut meta = meta_with_devices();
    let circuit = library::repetition_code_encoder(4).unwrap();
    meta.upload_fidelity_metadata("job-1", 0.9, &qasm::to_qasm(&circuit))
        .unwrap();
    meta.upload_topology_metadata(
        "job-2",
        library::topology_circuit(3, &[(0, 1), (1, 2)]).unwrap(),
    );
    assert_eq!(
        meta.job_metadata("job-1").unwrap().strategy_name(),
        "fidelity"
    );
    assert_eq!(
        meta.job_metadata("job-2").unwrap().strategy_name(),
        "topology"
    );
    for device in ["dev-a", "dev-b"] {
        let fidelity = meta.score("job-1", device).unwrap();
        assert_eq!(fidelity.device, device);
        assert!(fidelity.detail("canary_fidelity").is_some());
        let topology = meta.score("job-2", device).unwrap();
        assert!(topology.detail("exact_embedding").is_some());
    }
}

#[test]
fn every_builtin_strategy_is_selectable_by_name() {
    let mut meta = meta_with_devices();
    assert_eq!(
        meta.registry().names(),
        vec!["fidelity", "min_queue", "topology", "weighted"]
    );
    let circuit = library::bernstein_vazirani(4, 0b1001).unwrap();
    let text = qasm::to_qasm(&circuit);
    meta.upload_job_metadata("f", &StrategySpec::fidelity(0.9), Some(&text))
        .unwrap();
    meta.upload_job_metadata("t", &StrategySpec::topology(&[(0, 1), (1, 2)], 3), None)
        .unwrap();
    meta.upload_job_metadata(
        "w",
        &StrategySpec::weighted(0.9, 1.0, 5.0, 1.0),
        Some(&text),
    )
    .unwrap();
    meta.upload_job_metadata("q", &StrategySpec::min_queue(), None)
        .unwrap();
    for job in ["f", "t", "w", "q"] {
        let ranked = meta.score_all(job).unwrap();
        assert_eq!(ranked.len(), 2, "job '{job}' scores on both devices");
    }
}

#[test]
fn meta_server_holds_a_copy_of_every_vendor_backend() {
    let meta = meta_with_devices();
    assert_eq!(meta.device_count(), 2);
    assert_eq!(meta.device_names(), vec!["dev-a", "dev-b"]);
    let backend = meta.backend("dev-a").unwrap();
    assert_eq!(backend.num_qubits(), 8);
    assert!(backend.basis_gates().contains("cx"));
}
