//! Table 1: the metadata sent to the QRIO Meta Server depends on the option
//! the user chose (fidelity vs. topology), and the scoring strategy dispatches
//! on that metadata.

use qrio_backend::{topology, Backend};
use qrio_circuit::{library, qasm};
use qrio_meta::{JobMetadata, MetaServer, ScoreResponse};

fn meta_with_devices() -> MetaServer {
    let mut meta = MetaServer::new();
    meta.register_backend(Backend::uniform("dev-a", topology::line(8), 0.01, 0.05));
    meta.register_backend(Backend::uniform("dev-b", topology::ring(8), 0.01, 0.05));
    meta
}

#[test]
fn fidelity_option_stores_fidelity_number_and_original_circuit() {
    let mut meta = meta_with_devices();
    let circuit = library::grover(3, 2).unwrap();
    meta.upload_fidelity_metadata("grover-job", 0.85, &qasm::to_qasm(&circuit))
        .unwrap();
    match meta.job_metadata("grover-job") {
        Some(JobMetadata::Fidelity {
            target,
            circuit: stored,
        }) => {
            assert!((target - 0.85).abs() < 1e-12);
            assert_eq!(stored.num_qubits(), 3);
            assert_eq!(stored.count_ops(), circuit.count_ops());
        }
        other => panic!("unexpected metadata {other:?}"),
    }
    // Scoring such a job produces a fidelity response.
    assert!(matches!(
        meta.score("grover-job", "dev-a").unwrap(),
        ScoreResponse::Fidelity(_)
    ));
}

#[test]
fn topology_option_stores_the_topology_circuit_only() {
    let mut meta = meta_with_devices();
    let topo = library::topology_circuit(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
    meta.upload_topology_metadata("topo-job", topo.clone());
    match meta.job_metadata("topo-job") {
        Some(JobMetadata::Topology { topology_circuit }) => {
            assert_eq!(
                topology_circuit.interaction_graph(),
                topo.interaction_graph()
            );
            assert_eq!(topology_circuit.two_qubit_gate_count(), 4);
        }
        other => panic!("unexpected metadata {other:?}"),
    }
    assert!(matches!(
        meta.score("topo-job", "dev-b").unwrap(),
        ScoreResponse::Topology(_)
    ));
}

#[test]
fn strategy_dispatch_follows_the_stored_metadata() {
    // "checks the database if a fidelity threshold exists for the job. If so,
    //  that job is scored using a Fidelity Ranking strategy, and if not it is
    //  scored using a Topology Ranking strategy." (§3.4)
    let mut meta = meta_with_devices();
    let circuit = library::repetition_code_encoder(4).unwrap();
    meta.upload_fidelity_metadata("job-1", 0.9, &qasm::to_qasm(&circuit))
        .unwrap();
    meta.upload_topology_metadata(
        "job-2",
        library::topology_circuit(3, &[(0, 1), (1, 2)]).unwrap(),
    );
    for device in ["dev-a", "dev-b"] {
        assert!(matches!(
            meta.score("job-1", device).unwrap(),
            ScoreResponse::Fidelity(_)
        ));
        assert!(matches!(
            meta.score("job-2", device).unwrap(),
            ScoreResponse::Topology(_)
        ));
    }
}

#[test]
fn meta_server_holds_a_copy_of_every_vendor_backend() {
    let meta = meta_with_devices();
    assert_eq!(meta.device_count(), 2);
    assert_eq!(meta.device_names(), vec!["dev-a", "dev-b"]);
    let backend = meta.backend("dev-a").unwrap();
    assert_eq!(backend.num_qubits(), 8);
    assert!(backend.basis_gates().contains("cx"));
}
