//! Integration tests for the open ranking interface: all four built-in
//! strategies — fidelity, topology, weighted multi-objective and min-queue —
//! plus a user-defined plugin, each driven through the same
//! `JobRequest` → scheduler → decision path.

use std::sync::Arc;

use qrio::{JobRequestBuilder, Qrio, TopologyDesigner};
use qrio_backend::{topology, Backend};
use qrio_circuit::{library, Circuit};
use qrio_cluster::{JobPhase, StrategyParams, StrategySpec};
use qrio_meta::{
    DeviceTelemetry, FidelityRankingConfig, JobContext, MetaError, MetaServer, RankingStrategy,
    Score,
};
use qrio_scheduler::QrioScheduler;

fn fast_qrio() -> Qrio {
    Qrio::with_config(
        FidelityRankingConfig {
            shots: 96,
            seed: 19,
            shortfall_weight: 100.0,
        },
        19,
    )
}

#[test]
fn fidelity_strategy_end_to_end() {
    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform("clean", topology::line(8), 0.002, 0.01))
        .unwrap();
    qrio.add_device(Backend::uniform("noisy", topology::line(8), 0.05, 0.35))
        .unwrap();
    let bv = library::bernstein_vazirani(5, 0b10011).unwrap();
    let request = JobRequestBuilder::new()
        .with_circuit(&bv)
        .job_name("fidelity-e2e")
        .fidelity_target(0.9)
        .shots(128)
        .build()
        .unwrap();
    assert_eq!(request.strategy.name, "fidelity");
    let outcome = qrio.submit(&request).unwrap();
    assert_eq!(outcome.decision.node, "clean");
    assert!(matches!(
        qrio.cluster().job("fidelity-e2e").unwrap().phase(),
        JobPhase::Succeeded { .. }
    ));
}

#[test]
fn topology_strategy_end_to_end() {
    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform(
        "tree-dev",
        topology::binary_tree(10),
        0.01,
        0.05,
    ))
    .unwrap();
    qrio.add_device(Backend::uniform("line-dev", topology::line(10), 0.01, 0.05))
        .unwrap();
    let mut designer = TopologyDesigner::new(10);
    for (a, b) in topology::binary_tree(10).edges() {
        designer.connect(a, b).unwrap();
    }
    let request = JobRequestBuilder::new()
        .with_circuit(&library::ghz(10).unwrap())
        .job_name("topology-e2e")
        .topology(&designer)
        .shots(96)
        .build()
        .unwrap();
    assert_eq!(request.strategy.name, "topology");
    assert_eq!(request.strategy.params.get_u64("qubits"), Some(10));
    let outcome = qrio.submit(&request).unwrap();
    assert_eq!(outcome.decision.node, "tree-dev");
}

#[test]
fn weighted_strategy_diverts_from_a_busy_device_end_to_end() {
    // Two identical devices; dev-a is kept busy by a long-running job, so the
    // weighted strategy must send the next job to dev-b even though raw
    // fidelity scores tie.
    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform("dev-a", topology::line(8), 0.005, 0.02))
        .unwrap();
    qrio.add_device(Backend::uniform("dev-b", topology::line(8), 0.005, 0.02))
        .unwrap();

    let bv = library::bernstein_vazirani(4, 0b1011).unwrap();
    // Occupy dev-a's classical resources (a long-running tenant). The
    // orchestrator refreshes telemetry on every submit, so occupying the node
    // is enough for the weighted strategy to see the load.
    let occupant_resources = qrio_cluster::Resources::new(3000, 6000);
    assert!(qrio
        .cluster_mut()
        .node_mut("dev-a")
        .unwrap()
        .allocate(&occupant_resources));

    let request = JobRequestBuilder::new()
        .with_circuit(&bv)
        .job_name("weighted-e2e")
        .weighted(0.9, 1.0, 5.0, 50.0)
        .shots(96)
        .build()
        .unwrap();
    assert_eq!(request.strategy.name, "weighted");
    let outcome = qrio.submit(&request).unwrap();
    assert_eq!(
        outcome.decision.node, "dev-b",
        "utilization must steer the weighted strategy away from the busy node"
    );
    assert!(matches!(
        qrio.cluster().job("weighted-e2e").unwrap().phase(),
        JobPhase::Succeeded { .. }
    ));
}

#[test]
fn min_queue_strategy_end_to_end() {
    let mut qrio = fast_qrio();
    // min_queue ignores calibration entirely: the noisy-but-idle device wins
    // once the clean device is occupied.
    qrio.add_device(Backend::uniform("clean", topology::line(8), 0.002, 0.01))
        .unwrap();
    qrio.add_device(Backend::uniform("noisy", topology::line(8), 0.03, 0.2))
        .unwrap();
    let bv = library::bernstein_vazirani(4, 0b1100).unwrap();

    // Without load, the tie-break picks the lexicographically-first device.
    let idle_request = JobRequestBuilder::new()
        .with_circuit(&bv)
        .job_name("mq-idle")
        .min_queue()
        .shots(96)
        .build()
        .unwrap();
    assert_eq!(idle_request.strategy.name, "min_queue");
    let idle_outcome = qrio.submit(&idle_request).unwrap();
    assert_eq!(idle_outcome.decision.node, "clean");

    // Occupy the clean device; the next min-queue job must divert.
    assert!(qrio
        .cluster_mut()
        .node_mut("clean")
        .unwrap()
        .allocate(&qrio_cluster::Resources::new(2000, 4000)));
    let busy_request = JobRequestBuilder::new()
        .with_circuit(&bv)
        .job_name("mq-busy")
        .min_queue()
        .shots(96)
        .build()
        .unwrap();
    let busy_outcome = qrio.submit(&busy_request).unwrap();
    assert_eq!(busy_outcome.decision.node, "noisy");
}

#[test]
fn custom_strategy_runs_end_to_end_on_the_two_device_fleet() {
    /// "Fewest two-qubit gates after transpile", as in the
    /// `custom_strategy` example.
    #[derive(Debug)]
    struct FewestTwoQubitGates;

    impl RankingStrategy for FewestTwoQubitGates {
        fn name(&self) -> &str {
            "fewest-2q-gates"
        }

        fn validate(
            &self,
            _params: &StrategyParams,
            circuit: Option<&Circuit>,
        ) -> Result<(), MetaError> {
            circuit
                .map(|_| ())
                .ok_or_else(|| MetaError::InvalidMetadata("a circuit is required".into()))
        }

        fn score(&self, job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
            let circuit = job.circuit.expect("validated at upload");
            let transpiled = qrio_transpiler::transpile(circuit, backend)?;
            Ok(Score::new(
                backend.name(),
                transpiled.circuit.two_qubit_gate_count() as f64,
            ))
        }
    }

    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform("ring-dev", topology::ring(8), 0.01, 0.05))
        .unwrap();
    qrio.add_device(Backend::uniform("line-dev", topology::line(8), 0.01, 0.05))
        .unwrap();
    qrio.register_strategy(Arc::new(FewestTwoQubitGates))
        .unwrap();
    // Duplicate registration fails loudly.
    assert!(qrio
        .register_strategy(Arc::new(FewestTwoQubitGates))
        .is_err());

    let ring_circuit = library::topology_circuit(8, &topology::ring(8).edges()).unwrap();
    let request = JobRequestBuilder::new()
        .with_circuit(&ring_circuit)
        .job_name("custom-e2e")
        .strategy(StrategySpec::new("fewest-2q-gates"))
        .shots(96)
        .build()
        .unwrap();
    let outcome = qrio.submit(&request).unwrap();
    assert_eq!(outcome.decision.node, "ring-dev");
    assert!(matches!(
        qrio.cluster().job("custom-e2e").unwrap().phase(),
        JobPhase::Succeeded { .. }
    ));
    // An unregistered strategy name is rejected at submission.
    let bad = JobRequestBuilder::new()
        .with_circuit(&ring_circuit)
        .job_name("ghost")
        .strategy(StrategySpec::new("never-registered"))
        .build()
        .unwrap();
    assert!(qrio.submit(&bad).is_err());
}

#[test]
fn scheduler_tie_break_is_independent_of_fleet_order() {
    // Regression test for the (score, device_name) ordering: identical twins
    // produce identical fidelity scores; the ranking must come out the same
    // whichever way the fleet slice is ordered.
    let twin_a = Backend::uniform("twin-a", topology::line(8), 0.01, 0.05);
    let twin_b = Backend::uniform("twin-b", topology::line(8), 0.01, 0.05);
    let mut winners = Vec::new();
    for fleet in [
        vec![twin_a.clone(), twin_b.clone()],
        vec![twin_b.clone(), twin_a.clone()],
    ] {
        let mut meta = MetaServer::with_config(FidelityRankingConfig {
            shots: 96,
            seed: 23,
            shortfall_weight: 100.0,
        });
        for backend in &fleet {
            meta.register_backend(backend.clone());
        }
        // min_queue with no telemetry scores exactly 0.0 on both devices — a
        // guaranteed tie.
        meta.upload_job_metadata("tie", &StrategySpec::min_queue(), None)
            .unwrap();
        let scheduler = QrioScheduler::new(&meta);
        let decision = scheduler
            .select_device("tie", &fleet, &qrio_cluster::DeviceRequirements::none())
            .unwrap();
        assert_eq!(decision.ranked[0].1, decision.ranked[1].1);
        winners.push(decision.device.clone());
        // score_all shares the same deterministic ordering.
        let ranked = meta.score_all("tie").unwrap();
        assert_eq!(ranked[0].device, "twin-a");
        // Telemetry breaks the tie the other way.
        meta.update_telemetry(
            "twin-a",
            DeviceTelemetry {
                queue_depth: 2,
                utilization: 0.5,
                health_penalty: 0.0,
            },
        );
        let reranked = meta.score_all("tie").unwrap();
        assert_eq!(reranked[0].device, "twin-b");
    }
    assert_eq!(winners, vec!["twin-a", "twin-a"]);
}
