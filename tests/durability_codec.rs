//! Round-trip property tests for the durability codec: every journaled
//! record type must survive encode → decode → encode as a byte-identical
//! fixed point, so a journal written today replays bit-exactly tomorrow.

use proptest::prelude::*;

use qrio::durability::{
    decode_command, decode_events, encode_command_record, encode_events_record, Command,
    RECORD_COMMAND, RECORD_EVENTS, RECORD_VERSION,
};
use qrio::{DeviceTelemetry, JobEvent, JobId, JobRequestBuilder, JobState};
use qrio_circuit::library;
use qrio_cluster::{DeviceRequirements, ParamValue, Resources, StrategySpec};
use qrio_sim::ParallelConfig;

/// Deterministic splitmix-style generator so every proptest case derives a
/// full value tree from one integer seed.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn arb_string(state: &mut u64, prefix: &str) -> String {
    // Exercise the UTF-8 path: plain ASCII, an accented char and an emoji.
    let decorations = ["", "-é", "-⚛", "-qpu"];
    format!(
        "{prefix}{}{}",
        next(state) % 100,
        decorations[(next(state) % 4) as usize]
    )
}

fn arb_opt_str(state: &mut u64, prefix: &str) -> Option<String> {
    if next(state) % 2 == 0 {
        Some(arb_string(state, prefix))
    } else {
        None
    }
}

fn arb_state(state: &mut u64) -> JobState {
    JobState::ALL[(next(state) % JobState::ALL.len() as u64) as usize]
}

fn arb_event(state: &mut u64, seq: u64) -> JobEvent {
    JobEvent {
        seq,
        at: next(state) % 1_000,
        job: JobId::new(arb_string(state, "job-")),
        from: if next(state) % 3 == 0 {
            None
        } else {
            Some(arb_state(state))
        },
        to: arb_state(state),
        node: arb_opt_str(state, "node-"),
        reason: arb_opt_str(state, "because "),
    }
}

fn arb_request(state: &mut u64) -> qrio::JobRequest {
    let secret = next(state) % 8;
    let circuit = library::bernstein_vazirani(3, secret).expect("library circuit");
    let mut requirements = DeviceRequirements::none();
    if next(state) % 2 == 0 {
        requirements.min_qubits = Some((next(state) % 16) as usize);
    }
    if next(state) % 2 == 0 {
        requirements.max_two_qubit_error = Some((next(state) % 1000) as f64 / 1000.0);
    }
    if next(state) % 2 == 0 {
        requirements.min_t1_us = Some((next(state) % 500) as f64);
    }
    let mut builder = JobRequestBuilder::new()
        .with_circuit(&circuit)
        .job_name(arb_string(state, "codec-"))
        .image_name(arb_string(state, "img-"))
        .resources(100 + next(state) % 4000, 64 + next(state) % 2048)
        .requirements(requirements)
        .priority((next(state) % 256) as u8)
        .shots(1 + next(state) % 4096)
        .parallelism(ParallelConfig::with_threads((next(state) % 5) as usize));
    builder = match next(state) % 3 {
        0 => builder.fidelity_target((next(state) % 1000) as f64 / 1000.0),
        1 => builder.min_queue(),
        _ => {
            let mut spec = StrategySpec::new(arb_string(state, "strategy-"));
            spec.params.set("target", ParamValue::Float(0.25));
            spec.params.set("width", ParamValue::Int(next(state) % 32));
            spec.params
                .set("note", ParamValue::Text(arb_string(state, "t-")));
            spec.params
                .set("edges", ParamValue::Edges(vec![(0, 1), (1, 2)]));
            builder.strategy(spec)
        }
    };
    builder.build().expect("request builds")
}

fn arb_command(state: &mut u64) -> Command {
    match next(state) % 13 {
        0 => Command::AddDevice {
            spec_text: arb_string(state, "spec body "),
            resources: Resources {
                cpu_millis: next(state) % 10_000,
                memory_mib: next(state) % 65_536,
            },
        },
        1 => Command::Recalibrate {
            spec_text: arb_string(state, "spec body "),
        },
        2 => {
            let n = next(state) % 4;
            Command::Telemetry {
                reports: (0..n)
                    .map(|_| {
                        (
                            arb_string(state, "dev-"),
                            DeviceTelemetry {
                                queue_depth: (next(state) % 64) as usize,
                                utilization: (next(state) % 1000) as f64 / 1000.0,
                                health_penalty: (next(state) % 100) as f64 / 100.0,
                            },
                        )
                    })
                    .collect(),
            }
        }
        3 => Command::Enqueue {
            request: Box::new(arb_request(state)),
        },
        4 => Command::Cancel {
            job: arb_string(state, "job-"),
        },
        5 => Command::Tick,
        6 => Command::ForceAdmit {
            job: arb_string(state, "job-"),
        },
        7 => Command::Schedule {
            job: arb_string(state, "job-"),
        },
        8 => Command::Execute {
            job: arb_string(state, "job-"),
        },
        9 => Command::Rebind {
            job: arb_string(state, "job-"),
            target: arb_string(state, "node-"),
        },
        10 => Command::Cordon {
            node: arb_string(state, "node-"),
        },
        11 => Command::Uncordon {
            node: arb_string(state, "node-"),
        },
        _ => Command::Heal,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Commands of every shape decode back to themselves, and re-encoding
    /// the decoded value reproduces the original payload byte for byte.
    #[test]
    fn command_encode_decode_encode_is_identity(seed in 0u64..100_000) {
        let mut state = seed;
        let cmd = arb_command(&mut state);
        let record = encode_command_record(&cmd);
        prop_assert_eq!(record.kind, RECORD_COMMAND);
        prop_assert_eq!(record.version, RECORD_VERSION);
        let decoded = decode_command(&record.payload).expect("command decodes");
        prop_assert_eq!(&decoded, &cmd);
        let re_encoded = encode_command_record(&decoded);
        prop_assert_eq!(re_encoded.payload, record.payload);
    }

    /// Watch-log event batches round-trip exactly, including optional
    /// from-states, nodes and reasons, and non-ASCII text.
    #[test]
    fn event_stream_encode_decode_encode_is_identity(seed in 0u64..100_000) {
        let mut state = seed;
        let events: Vec<JobEvent> = (0..next(&mut state) % 20)
            .map(|seq| arb_event(&mut state, seq))
            .collect();
        let record = encode_events_record(&events);
        prop_assert_eq!(record.kind, RECORD_EVENTS);
        prop_assert_eq!(record.version, RECORD_VERSION);
        let decoded = decode_events(&record.payload).expect("events decode");
        prop_assert_eq!(&decoded, &events);
        let re_encoded = encode_events_record(&decoded);
        prop_assert_eq!(re_encoded.payload, record.payload);
    }

    /// Decoding a truncated command payload is a typed error, never a panic
    /// and never a silently-wrong value.
    #[test]
    fn truncated_command_payloads_never_panic(seed in 0u64..20_000) {
        let mut state = seed;
        let cmd = arb_command(&mut state);
        let record = encode_command_record(&cmd);
        let cut = (next(&mut state) as usize) % (record.payload.len() + 1);
        if cut < record.payload.len() {
            // Either a typed error, or (when the cut lands on a record whose
            // tail is optional-flag padding) a value — but never a panic.
            let _ = decode_command(&record.payload[..cut]);
        }
    }
}

/// The empty event batch is a valid record: replay heals with zero events.
#[test]
fn empty_event_batch_round_trips() {
    let record = encode_events_record(&[]);
    let decoded = decode_events(&record.payload).expect("empty batch decodes");
    assert!(decoded.is_empty());
    assert_eq!(encode_events_record(&decoded).payload, record.payload);
}
