//! End-to-end integration tests: the full QRIO pipeline from job request to
//! executed result, spanning every crate in the workspace.

use qrio::{JobRequestBuilder, Qrio, TopologyDesigner};
use qrio_backend::{fleet::FleetConfig, topology, Backend};
use qrio_circuit::library;
use qrio_cluster::{DeviceRequirements, JobPhase};
use qrio_meta::FidelityRankingConfig;

fn fast_qrio() -> Qrio {
    Qrio::with_config(
        FidelityRankingConfig {
            shots: 96,
            seed: 13,
            shortfall_weight: 100.0,
        },
        13,
    )
}

#[test]
fn fidelity_job_runs_on_the_best_device_of_a_generated_fleet() {
    let mut qrio = fast_qrio();
    let fleet = qrio_backend::fleet::generate_fleet(&FleetConfig::small(), 5).unwrap();
    let fleet_size = fleet.len();
    qrio.add_fleet(fleet).unwrap();
    assert_eq!(qrio.cluster().node_count(), fleet_size);

    let bv = library::bernstein_vazirani(5, 0b11010).unwrap();
    let request = JobRequestBuilder::new()
        .with_circuit(&bv)
        .job_name("e2e-bv")
        .fidelity_target(0.9)
        .shots(128)
        .build()
        .unwrap();
    let outcome = qrio.submit(&request).unwrap();

    // The chosen device is the best-ranked candidate and the job succeeded.
    assert_eq!(outcome.decision.candidates[0].0, outcome.decision.node);
    assert!(matches!(
        qrio.cluster().job("e2e-bv").unwrap().phase(),
        JobPhase::Succeeded { .. }
    ));
    assert!(!outcome.counts.is_empty());
    assert!(outcome.achieved_fidelity.is_some());
    // Events were recorded for the full lifecycle.
    let kinds: Vec<&str> = qrio
        .cluster()
        .events()
        .iter()
        .map(|e| e.kind.as_str())
        .collect();
    for expected in [
        "NodeAdded",
        "ImagePushed",
        "JobSubmitted",
        "JobScheduled",
        "JobStarted",
        "JobSucceeded",
    ] {
        assert!(kinds.contains(&expected), "missing event {expected}");
    }
}

#[test]
fn topology_job_selects_the_matching_device_end_to_end() {
    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform(
        "tree-dev",
        topology::binary_tree(10),
        0.01,
        0.05,
    ))
    .unwrap();
    qrio.add_device(Backend::uniform("ring-dev", topology::ring(10), 0.01, 0.05))
        .unwrap();
    qrio.add_device(Backend::uniform("line-dev", topology::line(10), 0.01, 0.05))
        .unwrap();

    let mut designer = TopologyDesigner::new(10);
    for (a, b) in topology::binary_tree(10).edges() {
        designer.connect(a, b).unwrap();
    }
    let request = JobRequestBuilder::new()
        .with_circuit(&library::ghz(10).unwrap())
        .job_name("e2e-topology")
        .topology(&designer)
        .shots(128)
        .build()
        .unwrap();
    let outcome = qrio.submit(&request).unwrap();
    assert_eq!(outcome.decision.node, "tree-dev");
}

#[test]
fn user_requirements_flow_through_filtering() {
    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform("good", topology::line(8), 0.005, 0.02))
        .unwrap();
    qrio.add_device(Backend::uniform("bad", topology::line(8), 0.05, 0.5))
        .unwrap();

    let ghz = library::ghz(4).unwrap();
    let request = JobRequestBuilder::new()
        .with_circuit(&ghz)
        .job_name("e2e-filtered")
        .requirements(DeviceRequirements {
            max_two_qubit_error: Some(0.1),
            ..DeviceRequirements::default()
        })
        .fidelity_target(0.9)
        .shots(96)
        .build()
        .unwrap();
    let outcome = qrio.submit(&request).unwrap();
    assert_eq!(outcome.decision.node, "good");
    // The noisy device was filtered before ranking, not merely out-scored.
    assert!(outcome
        .decision
        .filtered_out
        .iter()
        .any(|(node, _)| node == "bad"));
    assert_eq!(outcome.decision.candidates.len(), 1);
}

#[test]
fn failed_scheduling_leaves_a_terminal_job_and_no_allocation() {
    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform("only", topology::line(4), 0.02, 0.2))
        .unwrap();
    let request = JobRequestBuilder::new()
        .with_circuit(&library::ghz(12).unwrap())
        .job_name("too-big")
        .fidelity_target(0.9)
        .build()
        .unwrap();
    assert!(qrio.submit(&request).is_err());
    let job = qrio.cluster().job("too-big").unwrap();
    assert!(job.phase().is_terminal());
    assert_eq!(
        qrio.cluster().node("only").unwrap().allocated(),
        qrio_cluster::Resources::new(0, 0)
    );
}

#[test]
fn multiple_jobs_share_the_cluster_sequentially() {
    let mut qrio = fast_qrio();
    qrio.add_device(Backend::uniform("dev-a", topology::grid(2, 3), 0.005, 0.03))
        .unwrap();
    qrio.add_device(Backend::uniform("dev-b", topology::ring(8), 0.02, 0.15))
        .unwrap();

    for (i, circuit) in [
        library::ghz(3).unwrap(),
        library::repetition_code_encoder(4).unwrap(),
    ]
    .iter()
    .enumerate()
    {
        let request = JobRequestBuilder::new()
            .with_circuit(circuit)
            .job_name(format!("multi-{i}"))
            .fidelity_target(0.8)
            .shots(96)
            .build()
            .unwrap();
        let outcome = qrio.submit(&request).unwrap();
        assert!(matches!(
            qrio.cluster().job(&format!("multi-{i}")).unwrap().phase(),
            JobPhase::Succeeded { .. }
        ));
        assert!(!outcome.counts.is_empty());
    }
    assert_eq!(qrio.cluster().jobs().count(), 2);
}
