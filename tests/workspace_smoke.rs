//! Workspace smoke test: the whole pipeline — fleet construction, job
//! submission in both request modes, filtering, meta-server ranking,
//! scheduling and execution — wired end-to-end through the public `qrio`
//! facade. Guards the workspace against cross-crate regressions.

use qrio::{JobRequestBuilder, Qrio, TopologyDesigner};
use qrio_backend::{topology, Backend};
use qrio_circuit::library;

/// Two devices that differ both in noise and in topology, so each request
/// mode has a clear winner.
fn two_device_cloud() -> Qrio {
    let mut qrio = Qrio::new();
    qrio.add_device(Backend::uniform(
        "clean-ring",
        topology::ring(8),
        0.002,
        0.01,
    ))
    .unwrap();
    qrio.add_device(Backend::uniform(
        "noisy-line",
        topology::line(8),
        0.05,
        0.35,
    ))
    .unwrap();
    qrio
}

#[test]
fn fidelity_mode_job_selects_a_device_end_to_end() {
    let mut qrio = two_device_cloud();
    assert_eq!(qrio.cluster().node_count(), 2);

    let circuit = library::bernstein_vazirani(5, 0b10110).unwrap();
    let request = JobRequestBuilder::new()
        .with_circuit(&circuit)
        .job_name("smoke-fidelity")
        .fidelity_target(0.9)
        .shots(256)
        .build()
        .unwrap();

    let outcome = qrio.submit(&request).unwrap();
    assert!(
        outcome
            .decision
            .candidates
            .iter()
            .any(|(device, _)| device == &outcome.decision.node),
        "selected node must come from the candidate list"
    );
    assert_eq!(
        outcome.decision.node, "clean-ring",
        "the low-noise device should win"
    );
    assert!(
        !outcome.counts.is_empty(),
        "execution should produce measurement counts"
    );
    assert!(!qrio.job_logs("smoke-fidelity").unwrap().is_empty());
}

#[test]
fn topology_mode_job_selects_a_device_end_to_end() {
    let mut qrio = two_device_cloud();

    // The user draws a ring: only "clean-ring" embeds it exactly.
    let mut designer = TopologyDesigner::new(8);
    for (a, b) in topology::ring(8).edges() {
        designer.connect(a, b).unwrap();
    }

    let request = JobRequestBuilder::new()
        .with_circuit(&library::ghz(8).unwrap())
        .job_name("smoke-topology")
        .topology(&designer)
        .shots(128)
        .build()
        .unwrap();

    let outcome = qrio.submit(&request).unwrap();
    assert_eq!(
        outcome.decision.node, "clean-ring",
        "the ring device embeds the drawn ring"
    );
    assert!(!outcome.counts.is_empty());
}
