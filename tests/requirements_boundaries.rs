//! Property-based boundary tests for `DeviceRequirements::is_satisfied_by`
//! (the filtering stage of §3.5): every bound is inclusive — a label exactly
//! at the bound passes — and an all-`None` requirement accepts every device.

use proptest::prelude::*;

use qrio_backend::NodeLabels;
use qrio_cluster::DeviceRequirements;

fn labels(qubits: usize, two_q: f64, readout: f64, t1: f64, t2: f64) -> NodeLabels {
    NodeLabels {
        num_qubits: qubits,
        avg_two_qubit_error: two_q,
        avg_single_qubit_error: 0.01,
        avg_t1_us: t1,
        avg_t2_us: t2,
        avg_readout_error: readout,
        cpu_millis: 4000,
        memory_mib: 8192,
    }
}

#[test]
fn every_bound_is_inclusive_at_exact_equality() {
    // A device sitting exactly on every bound satisfies all of them: min
    // bounds reject strictly-below, max bounds reject strictly-above.
    let req = DeviceRequirements {
        min_qubits: Some(10),
        max_two_qubit_error: Some(0.25),
        max_readout_error: Some(0.125),
        min_t1_us: Some(100.0),
        min_t2_us: Some(80.0),
    };
    let exactly_at = labels(10, 0.25, 0.125, 100.0, 80.0);
    assert!(req.is_satisfied_by(&exactly_at));

    // One ulp-ish step past each bound flips the verdict for that bound only.
    assert!(!req.is_satisfied_by(&labels(9, 0.25, 0.125, 100.0, 80.0)));
    assert!(!req.is_satisfied_by(&labels(10, 0.25 + 1e-12, 0.125, 100.0, 80.0)));
    assert!(!req.is_satisfied_by(&labels(10, 0.25, 0.125 + 1e-12, 100.0, 80.0)));
    assert!(!req.is_satisfied_by(&labels(10, 0.25, 0.125, 100.0 - 1e-9, 80.0)));
    assert!(!req.is_satisfied_by(&labels(10, 0.25, 0.125, 100.0, 80.0 - 1e-9)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// An all-`None` requirement accepts any device whatsoever.
    #[test]
    fn all_none_passes_everything(
        qubits in 0usize..200,
        two_q_milli in 0u64..1000,
        readout_milli in 0u64..1000,
        t1_tenths in 0u64..2_000_000,
    ) {
        let device = labels(
            qubits,
            two_q_milli as f64 / 1000.0,
            readout_milli as f64 / 1000.0,
            t1_tenths as f64 / 10.0,
            t1_tenths as f64 / 20.0,
        );
        prop_assert!(DeviceRequirements::none().is_satisfied_by(&device));
        prop_assert!(DeviceRequirements::default().is_satisfied_by(&device));
    }

    /// A requirement built from the device's own values is satisfied (bounds
    /// are inclusive), and tightening any single bound past the device's
    /// value rejects it.
    #[test]
    fn bounds_built_from_the_device_itself_are_inclusive(
        qubits in 1usize..100,
        two_q_milli in 1u64..500,
        readout_milli in 1u64..500,
        t1_tenths in 10u64..1_000_000,
    ) {
        let two_q = two_q_milli as f64 / 1000.0;
        let readout = readout_milli as f64 / 1000.0;
        let t1 = t1_tenths as f64 / 10.0;
        let t2 = t1 / 2.0;
        let device = labels(qubits, two_q, readout, t1, t2);
        let exact = DeviceRequirements {
            min_qubits: Some(qubits),
            max_two_qubit_error: Some(two_q),
            max_readout_error: Some(readout),
            min_t1_us: Some(t1),
            min_t2_us: Some(t2),
        };
        prop_assert!(exact.is_satisfied_by(&device), "inclusive bounds must pass");

        // Tightening exactly one bound past the device's value rejects it.
        let tightened = [
            DeviceRequirements { min_qubits: Some(qubits + 1), ..exact },
            DeviceRequirements { max_two_qubit_error: Some(two_q / 2.0), ..exact },
            DeviceRequirements { max_readout_error: Some(readout / 2.0), ..exact },
            DeviceRequirements { min_t1_us: Some(t1 * 2.0), ..exact },
            DeviceRequirements { min_t2_us: Some(t2 * 2.0), ..exact },
        ];
        for (i, req) in tightened.iter().enumerate() {
            prop_assert!(!req.is_satisfied_by(&device), "tightened bound {i} must reject");
        }

        // Loosening every bound keeps the device acceptable.
        let loosened = DeviceRequirements {
            min_qubits: Some(qubits.saturating_sub(1)),
            max_two_qubit_error: Some(two_q * 2.0),
            max_readout_error: Some(readout * 2.0),
            min_t1_us: Some(t1 / 2.0),
            min_t2_us: Some(t2 / 2.0),
        };
        prop_assert!(loosened.is_satisfied_by(&device));
    }

    /// Each bound acts independently: a requirement with a single `Some`
    /// matches if and only if that one dimension is within bounds.
    #[test]
    fn single_bound_requirements_are_independent(
        qubits in 1usize..100,
        bound in 1usize..100,
    ) {
        let device = labels(qubits, 0.5, 0.5, 10.0, 10.0);
        let req = DeviceRequirements {
            min_qubits: Some(bound),
            ..DeviceRequirements::default()
        };
        prop_assert_eq!(req.is_satisfied_by(&device), qubits >= bound);
    }
}
