//! Crash-recovery integration tests: enable durability, mutate, "crash" (drop
//! the orchestrator), recover from the journal and verify the rebuilt
//! instance matches the pre-crash one exactly — then keep working with it.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use qrio::durability::DurabilityError;
use qrio::{
    DeviceTelemetry, DurabilityConfig, FidelityRankingConfig, JobRequestBuilder, JobState, Qrio,
    QrioError,
};
use qrio_backend::{topology, Backend};
use qrio_circuit::{library, Circuit};
use qrio_cluster::{StrategyParams, StrategySpec};
use qrio_meta::{JobContext, MetaError, RankingStrategy, Score};

/// A scratch journal path unique to this test binary and test name.
fn journal_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qrio-recovery-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{name}.qj"))
}

fn seeded_qrio() -> Qrio {
    Qrio::with_config(
        FidelityRankingConfig {
            shots: 96,
            seed: 23,
            shortfall_weight: 100.0,
        },
        23,
    )
}

fn two_device_fleet(qrio: &mut Qrio) {
    qrio.add_device(Backend::uniform("clean", topology::line(8), 0.002, 0.01))
        .unwrap();
    qrio.add_device(Backend::uniform("noisy", topology::line(8), 0.05, 0.35))
        .unwrap();
}

fn bv_request(name: &str) -> qrio::JobRequest {
    let bv = library::bernstein_vazirani(4, 0b1011).unwrap();
    JobRequestBuilder::new()
        .with_circuit(&bv)
        .job_name(name)
        .fidelity_target(0.8)
        .shots(64)
        .build()
        .unwrap()
}

#[test]
fn recovery_restores_exact_pre_crash_state_and_resumes() {
    let path = journal_path("exact-state");
    let (pre_events, pre_statuses, pre_now);
    {
        let mut qrio = seeded_qrio();
        qrio.enable_durability(
            &path,
            DurabilityConfig {
                snapshot_every: 3,
                ..DurabilityConfig::default()
            },
        )
        .unwrap();
        two_device_fleet(&mut qrio);
        let ids: Vec<_> = ["dur-a", "dur-b", "dur-c"]
            .iter()
            .map(|name| qrio.enqueue(&bv_request(name)).unwrap())
            .collect();
        qrio.report_telemetry([(
            "noisy".to_string(),
            DeviceTelemetry {
                queue_depth: 3,
                utilization: 0.5,
                health_penalty: 0.0,
            },
        )]);
        // One service cycle: some jobs finish, at least one stays in flight,
        // so the crash lands mid-workload.
        qrio.tick();
        qrio.cancel(&ids[2]).ok();
        assert!(qrio.durability_error().is_none());

        pre_events = qrio.watch(0).to_vec();
        pre_statuses = ids
            .iter()
            .map(|id| (id.clone(), qrio.job_status(id).unwrap().clone()))
            .collect::<Vec<_>>();
        pre_now = qrio.now();
        // Crash: drop without any orderly shutdown.
    }

    let (mut recovered, report) = Qrio::recover(&path).unwrap();
    assert_eq!(recovered.watch(0), &pre_events[..]);
    for (id, status) in &pre_statuses {
        assert_eq!(recovered.job_status(id).unwrap(), status);
    }
    assert_eq!(recovered.now(), pre_now);
    assert!(recovered.is_durable());
    assert_eq!(report.torn_tail, None);
    assert_eq!(report.events_healed, 0);
    assert_eq!(report.jobs, pre_statuses.len() as u64);

    // The recovered instance is live: finish the workload.
    recovered.run_until_idle();
    for (id, _) in &pre_statuses {
        assert!(recovered.status(id).unwrap().is_terminal());
    }
}

#[test]
fn recovering_the_same_journal_twice_is_byte_deterministic() {
    let path = journal_path("deterministic");
    {
        let mut qrio = seeded_qrio();
        qrio.enable_durability(&path, DurabilityConfig::default())
            .unwrap();
        two_device_fleet(&mut qrio);
        for name in ["det-a", "det-b"] {
            let _ = qrio.enqueue(&bv_request(name)).unwrap();
        }
        qrio.tick();
    }
    let (first, first_report) = Qrio::recover(&path).unwrap();
    let (second, second_report) = Qrio::recover(&path).unwrap();
    assert_eq!(first_report, second_report);
    assert_eq!(first_report.to_string(), second_report.to_string());
    assert_eq!(first.watch(0), second.watch(0));
}

#[test]
fn torn_tail_is_truncated_and_recovery_keeps_the_acknowledged_prefix() {
    let path = journal_path("torn-tail");
    let pre_jobs: Vec<String>;
    {
        let mut qrio = seeded_qrio();
        qrio.enable_durability(&path, DurabilityConfig::default())
            .unwrap();
        two_device_fleet(&mut qrio);
        for name in ["torn-a", "torn-b", "torn-c"] {
            let _ = qrio.enqueue(&bv_request(name)).unwrap();
        }
        qrio.tick();
        pre_jobs = qrio.watch(0).iter().map(|e| e.job.to_string()).collect();
    }

    // Tear the last few bytes off, as a crash mid-write would.
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

    let (mut recovered, report) = Qrio::recover(&path).unwrap();
    assert!(report.torn_tail.is_some(), "truncation must be reported");
    // Every job the torn journal still knows was a real pre-crash job —
    // the tear can only lose the unacknowledged tail, never invent state.
    for event in recovered.watch(0) {
        assert!(pre_jobs.contains(&event.job.to_string()));
    }
    // And the recovered instance keeps journaling: drive it to completion.
    recovered.run_until_idle();
    assert!(recovered.durability_error().is_none());
}

/// Ranks devices by name length — exists only to prove the re-registration
/// hook runs before replay.
#[derive(Debug)]
struct NameLength;

impl RankingStrategy for NameLength {
    fn name(&self) -> &str {
        "name-length"
    }

    fn validate(
        &self,
        _params: &StrategyParams,
        _circuit: Option<&Circuit>,
    ) -> Result<(), MetaError> {
        Ok(())
    }

    fn score(&self, _job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
        Ok(Score::new(backend.name(), backend.name().len() as f64))
    }
}

#[test]
fn custom_strategies_need_the_recover_with_hook() {
    let path = journal_path("custom-strategy");
    {
        let mut qrio = seeded_qrio();
        qrio.register_strategy(Arc::new(NameLength)).unwrap();
        qrio.enable_durability(&path, DurabilityConfig::default())
            .unwrap();
        two_device_fleet(&mut qrio);
        let bv = library::bernstein_vazirani(4, 0b0110).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("custom-job")
            .strategy(StrategySpec::new("name-length"))
            .shots(64)
            .build()
            .unwrap();
        let _ = qrio.enqueue(&request).unwrap();
    }

    // Without the hook the journaled enqueue cannot replay (the strategy is a
    // live trait object the journal does not carry) — a typed divergence.
    match Qrio::recover(&path) {
        Err(QrioError::Durability(DurabilityError::ReplayDivergence(_))) => {}
        other => panic!("expected replay divergence, got {other:?}"),
    }

    // With the hook, replay sees the strategy and the job completes.
    let (mut recovered, _) =
        Qrio::recover_with(&path, |qrio| qrio.register_strategy(Arc::new(NameLength))).unwrap();
    let id = qrio::JobId::new("custom-job");
    assert_eq!(recovered.status(&id).unwrap(), JobState::Queued);
    recovered.run_until_idle();
    assert_eq!(recovered.status(&id).unwrap(), JobState::Succeeded);
}

#[test]
fn journals_without_a_snapshot_or_with_garbage_are_typed_errors() {
    // Header-only journal: structurally valid, but nothing to recover from.
    let path = journal_path("no-snapshot");
    drop(qrio_journal::Journal::create(&path).unwrap());
    match Qrio::recover(&path) {
        Err(QrioError::Durability(DurabilityError::NoSnapshot)) => {}
        other => panic!("expected NoSnapshot, got {other:?}"),
    }

    // Not a journal at all.
    let garbage = journal_path("garbage");
    fs::write(&garbage, b"this is not a journal").unwrap();
    match Qrio::recover(&garbage) {
        Err(QrioError::Durability(DurabilityError::Journal(_))) => {}
        other => panic!("expected a journal error, got {other:?}"),
    }
}

#[test]
fn durability_lifecycle_guards() {
    let path = journal_path("guards");
    let mut qrio = seeded_qrio();
    assert!(!qrio.is_durable());
    assert_eq!(qrio.disable_durability(), None);
    qrio.enable_durability(&path, DurabilityConfig::default())
        .unwrap();
    assert!(qrio.is_durable());
    // Double-enable is rejected without clobbering the active journal.
    match qrio.enable_durability(&path, DurabilityConfig::default()) {
        Err(QrioError::InvalidRequest(_)) => {}
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    qrio.sync_journal().unwrap();
    qrio.snapshot_now().unwrap();
    assert_eq!(qrio.disable_durability(), None);
    assert!(!qrio.is_durable());

    // Enabling at an impossible path surfaces the journal error.
    let dir = std::env::temp_dir();
    match qrio.enable_durability(&dir, DurabilityConfig::default()) {
        Err(QrioError::Durability(DurabilityError::Journal(_))) => {}
        other => panic!("expected a journal error, got {other:?}"),
    }
    assert!(!qrio.is_durable());
}

#[test]
fn batched_sync_recovery_loses_no_acknowledged_jobs() {
    // `sync_every_n_commands` batches the expensive fsync, but every command
    // is still flushed to the OS before it is acknowledged — so a process
    // crash (drop without shutdown) must never lose an acknowledged job, no
    // matter where in the sync batch it lands.
    for jobs in 1..=6u32 {
        let path = journal_path(&format!("batched-sync-{jobs}"));
        let ids: Vec<qrio::JobId>;
        {
            let mut qrio = seeded_qrio();
            qrio.enable_durability(
                &path,
                DurabilityConfig {
                    snapshot_every: 1_000,
                    sync_every_n_commands: 4,
                    compact_above_bytes: 0,
                },
            )
            .unwrap();
            two_device_fleet(&mut qrio);
            ids = (0..jobs)
                .map(|i| {
                    qrio.enqueue(&bv_request(&format!("ack-{jobs}-{i}")))
                        .unwrap()
                })
                .collect();
            qrio.tick();
            assert!(qrio.durability_error().is_none());
            // Crash mid-batch: no disable_durability, no final sync.
        }
        let (recovered, _) = Qrio::recover(&path).unwrap();
        for id in &ids {
            assert!(
                recovered.job_status(id).is_ok(),
                "job {id} was acknowledged before the crash but lost on recovery \
                 (jobs={jobs}, sync_every_n_commands=4)"
            );
        }
    }
}

#[test]
fn faulted_workload_recovers_retries_dead_letters_and_breakers_exactly() {
    use qrio::BreakerConfig;
    use qrio_cluster::{FaultInjector, RetryPolicy};

    let path = journal_path("fault-recovery");
    let (pre_events, pre_dead, pre_board, pre_now);
    {
        let mut qrio = seeded_qrio();
        qrio.enable_durability(
            &path,
            DurabilityConfig {
                snapshot_every: 5,
                sync_every_n_commands: 3,
                compact_above_bytes: 0,
            },
        )
        .unwrap();
        two_device_fleet(&mut qrio);
        qrio.configure_breakers(Some(BreakerConfig {
            consecutive_failures: 2,
            failure_rate: 2.0,
            window: 8,
            open_ticks: 4,
            probe_jobs: 1,
        }))
        .unwrap();
        qrio.configure_faults(Some(FaultInjector {
            seed: 77,
            transient_rate: 1.0,
            ..FaultInjector::default()
        }))
        .unwrap();
        // One job retries its way to the dead-letter queue; two more fail
        // fast and trip breakers; one sits in backoff when the crash hits.
        let _ = qrio
            .enqueue(
                &JobRequestBuilder::new()
                    .with_circuit(&library::bernstein_vazirani(4, 0b1011).unwrap())
                    .job_name("retry-exhaust")
                    .fidelity_target(0.8)
                    .shots(64)
                    .retry_policy(RetryPolicy::fixed(2, 1))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        for name in ["fast-fail-a", "fast-fail-b"] {
            let _ = qrio.enqueue(&bv_request(name)).unwrap();
        }
        let _ = qrio
            .enqueue(
                &JobRequestBuilder::new()
                    .with_circuit(&library::bernstein_vazirani(4, 0b0101).unwrap())
                    .job_name("in-backoff")
                    .fidelity_target(0.8)
                    .shots(64)
                    .retry_policy(RetryPolicy::exponential(6, 50, 400))
                    .build()
                    .unwrap(),
            )
            .unwrap();
        for _ in 0..8 {
            qrio.tick();
        }
        assert!(qrio.durability_error().is_none());
        assert!(
            !qrio.dead_letters().is_empty(),
            "the exhausted job must be dead-lettered before the crash"
        );
        pre_events = qrio.watch(0).to_vec();
        pre_dead = qrio.dead_letters();
        pre_board = qrio.breakers().cloned();
        pre_now = qrio.now();
        // Crash.
    }

    let (mut recovered, _) = Qrio::recover(&path).unwrap();
    assert_eq!(recovered.watch(0), &pre_events[..]);
    assert_eq!(recovered.dead_letters(), pre_dead);
    assert_eq!(recovered.breakers().cloned(), pre_board);
    assert_eq!(recovered.now(), pre_now);

    // The recovered instance carries the fault configuration too: clearing
    // it lets the backed-off job finish on a live retry.
    recovered.configure_faults(None).unwrap();
    recovered.run_until_idle();
    assert_eq!(
        recovered.status(&qrio::JobId::new("in-backoff")).unwrap(),
        JobState::Succeeded
    );
    assert!(recovered.durability_error().is_none());
}

#[test]
fn durability_does_not_change_behavior() {
    let run = |durable: bool| {
        let path = journal_path("behavior-parity");
        let mut qrio = seeded_qrio();
        if durable {
            qrio.enable_durability(
                &path,
                DurabilityConfig {
                    snapshot_every: 2,
                    ..DurabilityConfig::default()
                },
            )
            .unwrap();
        }
        two_device_fleet(&mut qrio);
        for name in ["par-a", "par-b", "par-c"] {
            let _ = qrio.enqueue(&bv_request(name)).unwrap();
        }
        qrio.run_until_idle();
        (
            qrio.watch(0).to_vec(),
            qrio.now(),
            qrio.outcome(&qrio::JobId::new("par-a"))
                .unwrap()
                .decision
                .node,
        )
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn compacted_journal_recovers_identically_to_uncompacted() {
    // Run the same seeded workload twice: once journaling everything forever,
    // once with aggressive compaction (every snapshot triggers a rewrite).
    // Replaying the compacted journal must reconstruct the exact same state as
    // replaying the full one — compaction may only drop bytes that no longer
    // influence recovery.
    let run = |compact_above_bytes: u64, path: &PathBuf| {
        let mut qrio = seeded_qrio();
        qrio.enable_durability(
            path,
            DurabilityConfig {
                snapshot_every: 2,
                compact_above_bytes,
                ..DurabilityConfig::default()
            },
        )
        .unwrap();
        two_device_fleet(&mut qrio);
        let ids: Vec<_> = ["cmp-a", "cmp-b", "cmp-c", "cmp-d"]
            .iter()
            .map(|name| qrio.enqueue(&bv_request(name)).unwrap())
            .collect();
        qrio.run_until_idle();
        assert!(qrio.durability_error().is_none());
        ids
        // Crash: drop without shutdown.
    };

    let full_path = journal_path("compact-equiv-full");
    let compact_path = journal_path("compact-equiv-compacted");
    let ids = run(0, &full_path);
    let same_ids = run(1, &compact_path);
    assert_eq!(ids, same_ids);

    // Compaction actually reclaimed space on disk.
    let full_len = fs::metadata(&full_path).unwrap().len();
    let compact_len = fs::metadata(&compact_path).unwrap().len();
    assert!(
        compact_len < full_len,
        "compacted journal ({compact_len} bytes) should be smaller than the \
         uncompacted one ({full_len} bytes)"
    );

    // Both journals recover to the same live state.
    let (full, _) = Qrio::recover(&full_path).unwrap();
    let (compacted, _) = Qrio::recover(&compact_path).unwrap();
    assert_eq!(full.watch(0), compacted.watch(0));
    assert_eq!(full.now(), compacted.now());
    for id in &ids {
        assert_eq!(
            full.job_status(id).unwrap(),
            compacted.job_status(id).unwrap()
        );
        assert_eq!(full.outcome(id).unwrap(), compacted.outcome(id).unwrap());
    }
    assert_eq!(full.dead_letters(), compacted.dead_letters());
}

#[test]
fn replay_to_reconstructs_every_intermediate_prefix() {
    // Time-travel replay: for every cursor in the journal's history, the
    // reconstructed watch log must be an exact prefix of the full history,
    // and the checkpoint must land on the first command boundary at or
    // after the target.
    let path = journal_path("replay-to");
    {
        let mut qrio = seeded_qrio();
        qrio.enable_durability(
            &path,
            DurabilityConfig {
                snapshot_every: 3,
                ..DurabilityConfig::default()
            },
        )
        .unwrap();
        two_device_fleet(&mut qrio);
        for name in ["tt-a", "tt-b", "tt-c"] {
            let _ = qrio.enqueue(&bv_request(name)).unwrap();
        }
        qrio.run_until_idle();
    }

    let (full, _) = Qrio::recover(&path).unwrap();
    let history = full.watch(0).to_vec();
    assert!(history.len() > 4, "fixture needs a non-trivial history");

    for cursor in 0..=(history.len() as u64 + 3) {
        let (replica, checkpoint) = Qrio::replay_to(&path, cursor).unwrap();
        assert_eq!(checkpoint.target_cursor, cursor);
        assert!(checkpoint.snapshot_cursor <= cursor);
        assert!(
            checkpoint.reached_cursor >= cursor.min(history.len() as u64),
            "cursor {cursor}: replay stopped early at {}",
            checkpoint.reached_cursor
        );
        assert_eq!(checkpoint.reached_cursor as usize, replica.watch(0).len());
        assert_eq!(
            replica.watch(0),
            &history[..checkpoint.reached_cursor as usize],
            "cursor {cursor}: replayed history diverges from the full log"
        );
        // The replica is an inspection copy: nothing it does is journaled.
        assert!(!replica.is_durable());
    }

    // Replaying to the end reconstructs the terminal state exactly.
    let (at_end, _) = Qrio::replay_to(&path, history.len() as u64).unwrap();
    assert_eq!(at_end.describe_state(), full.describe_state());
}
