//! Minimal, dependency-free stand-in for the `rand` crate (0.8-era API).
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate implements exactly the surface the workspace uses: `StdRng` (a
//! xoshiro256++ generator seeded via SplitMix64), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Streams are deterministic per seed, which is
//! all the test-suite relies on.

/// A source of random 64-bit words; everything else is derived from this.
pub trait RngCore {
    /// Returns the next 64 random bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` built from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// Panics if the range is empty, matching `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly; mirrors `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Modulo reduction: the bias over u64 output is negligible for
                // the widths used in this workspace.
                self.start.wrapping_add((rng.next_u64() % width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u128).wrapping_sub(start as u128) as u128 + 1;
                if width > u64::MAX as u128 {
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add((rng.next_u64() % width as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * rng.next_f64() as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Distributions, mirroring `rand::distributions`.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" uniform distribution: `[0, 1)` for floats, full range
    /// for integers, fair coin for `bool`.
    pub struct Standard;

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            rng.next_f64()
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            rng.next_f64() as f32
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic per seed; not cryptographically secure (neither is the
    /// real `StdRng` guarantee relied on here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
