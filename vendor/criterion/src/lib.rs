//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate implements the surface the workspace's benches use: `Criterion`,
//! benchmark groups with `sample_size` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of statistical analysis it reports the
//! median wall-clock time per iteration over `sample_size` samples.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `"name/param"`.
    pub fn new<N: Display, P: Display>(name: N, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the closure under timing; handed to every benchmark body.
pub struct Bencher {
    samples: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Times `f`, recording the median duration over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut durations: Vec<f64> = Vec::with_capacity(self.samples);
        // One warm-up call, excluded from the samples.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            durations.push(start.elapsed().as_secs_f64() * 1e9);
        }
        durations.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = Some(durations[durations.len() / 2]);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    // Tied to the parent `Criterion`'s lifetime to mirror the real API shape.
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            median_ns: None,
        };
        f(&mut bencher);
        match bencher.median_ns {
            Some(ns) => println!("{}/{}: median {:.1} ns/iter", self.name, id, ns),
            None => println!("{}/{}: no measurement taken", self.name, id),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.run(id.into().id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the body.
    pub fn bench_with_input<I, D: ?Sized, F>(&mut self, id: I, input: &D, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &D),
    {
        self.run(id.into().id, |b| f(b, input));
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Entry point for registering benchmarks, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function outside any group.
    pub fn bench_function<N: Display, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: 10,
            median_ns: None,
        };
        f(&mut bencher);
        if let Some(ns) = bencher.median_ns {
            println!("{name}: median {ns:.1} ns/iter");
        }
        self
    }
}

/// Bundles benchmark functions into a group runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benchmarks_record_a_median() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("demo");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
