//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this vendored
//! crate implements the surface the workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]` header),
//! range strategies over integers, and the `prop_assert*` macros. There is no
//! shrinking: a failing case panics with the sampled inputs in the message,
//! which is enough to reproduce (sampling is deterministic per test name).

use rand::rngs::StdRng;

/// Per-test configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::StdRng;
    use rand::Rng;

    /// A source of random values of an associated type.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Strategies over collections, mirroring `proptest::collection`.
pub mod collection {
    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// A strategy producing `Vec`s of values drawn from an element strategy,
    /// with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` strategy constructor, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner plumbing used by the generated tests.
pub mod test_runner {
    pub use super::ProptestConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG: seeds from an FNV-1a hash of the test name
    /// so each property gets its own stable stream.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(hash)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` item
/// becomes a `#[test]` that runs the body over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __proptest_rng = $crate::test_runner::rng_for(stringify!($name));
                for __proptest_case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)*
                    let __proptest_inputs =
                        format!(concat!("case #{}: ", $(stringify!($arg), " = {:?} ",)* ), __proptest_case, $($arg),*);
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                    if let Err(panic) = result {
                        eprintln!("proptest failure in {} ({})", stringify!($name), __proptest_inputs);
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// One-stop import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..9, y in 0usize..4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn arithmetic_holds(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a + b + 1, a + b);
        }

        #[test]
        fn vec_strategy_respects_length_and_element_bounds(
            values in crate::collection::vec(2u8..7, 1..5),
        ) {
            prop_assert!(!values.is_empty() && values.len() < 5);
            prop_assert!(values.iter().all(|v| (2..7).contains(v)));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }
}
