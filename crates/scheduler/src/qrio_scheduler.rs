//! The QRIO scheduler: filtering followed by meta-server ranking (§3.5).
//!
//! This is the component the paper evaluates "outside the Kubernetes
//! infrastructure" (§4.1): a scheduler that filters the fleet against the
//! user's requirements, asks the QRIO Meta Server for a score of the job on
//! each shortlisted device, and selects the device with the lowest score. The
//! same logic is also exposed as a cluster [`ScorePlugin`] so it can drive the
//! in-process Kubernetes-like substrate.

use qrio_backend::Backend;
use qrio_cluster::{DeviceRequirements, JobSpec, Node, ScorePlugin};
use qrio_meta::MetaServer;

use crate::error::SchedulerError;
use crate::filter::filter_backends;

/// The decision made by the QRIO scheduler for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerDecision {
    /// The selected device (lowest score).
    pub device: String,
    /// The winning score.
    pub score: f64,
    /// Every scored candidate, sorted best-first.
    pub ranked: Vec<(String, f64)>,
    /// Number of devices that survived filtering.
    pub shortlisted: usize,
    /// Number of devices in the original fleet.
    pub fleet_size: usize,
}

/// The QRIO scheduler, parameterized by a meta server holding the backend
/// store and job metadata.
#[derive(Debug, Clone, Copy)]
pub struct QrioScheduler<'a> {
    meta: &'a MetaServer,
}

impl<'a> QrioScheduler<'a> {
    /// Create a scheduler backed by `meta`.
    pub fn new(meta: &'a MetaServer) -> Self {
        QrioScheduler { meta }
    }

    /// The meta server the scheduler consults.
    pub fn meta(&self) -> &MetaServer {
        self.meta
    }

    /// Select a device for `job_name` from `fleet`, honouring the user's
    /// device requirement bounds.
    ///
    /// The job's metadata (fidelity target or topology circuit) must already
    /// have been uploaded to the meta server — that is the visualizer's
    /// responsibility in the full system.
    ///
    /// # Errors
    ///
    /// Returns an error if the fleet is empty, no device passes filtering, no
    /// shortlisted device can be scored, or the meta server has no metadata
    /// for the job.
    pub fn select_device(
        &self,
        job_name: &str,
        fleet: &[Backend],
        requirements: &DeviceRequirements,
    ) -> Result<SchedulerDecision, SchedulerError> {
        let (ranked, shortlisted) = self.rank(job_name, fleet, requirements)?;
        let (device, score) = ranked[0].clone();
        Ok(SchedulerDecision {
            device,
            score,
            ranked,
            shortlisted,
            fleet_size: fleet.len(),
        })
    }

    /// Filter `fleet` against `requirements` and rank every surviving device
    /// for `job_name`, best (lowest score) first, without committing to a
    /// decision. Returns the ranking plus the shortlist size.
    ///
    /// This is the re-ranking primitive: callers that already bound a job can
    /// re-invoke it after a calibration-drift or outage event and compare the
    /// fresh ranking against the original binding (see
    /// `Cluster::rebind_job`).
    ///
    /// # Errors
    ///
    /// Same contract as [`QrioScheduler::select_device`]: empty fleet, empty
    /// shortlist, missing metadata, or no scoreable device.
    pub fn rank(
        &self,
        job_name: &str,
        fleet: &[Backend],
        requirements: &DeviceRequirements,
    ) -> Result<(Vec<(String, f64)>, usize), SchedulerError> {
        if fleet.is_empty() {
            return Err(SchedulerError::EmptyFleet);
        }
        // Surface missing-metadata errors immediately rather than as an empty
        // ranking.
        if self.meta.job_metadata(job_name).is_none() {
            return Err(SchedulerError::Meta(qrio_meta::MetaError::UnknownJob(
                job_name.to_string(),
            )));
        }

        // Stage 1: filtering.
        let shortlisted = filter_backends(fleet, requirements);
        if shortlisted.is_empty() {
            return Err(SchedulerError::NoDeviceAfterFiltering {
                job: job_name.to_string(),
            });
        }

        // Stage 2: ranking via the meta server. Job-level errors (no such
        // job / strategy, parameters every device would reject) abort the
        // cycle; anything else is a device-evaluation failure — the strategy
        // could not score *this* device (too small, no embedding, simulation
        // failed, device unknown to the meta server) — and per the
        // `RankingStrategy` contract such devices are skipped.
        let mut ranked: Vec<(String, f64)> = Vec::with_capacity(shortlisted.len());
        let mut last_skip_error = None;
        for backend in &shortlisted {
            match self.meta.score(job_name, backend.name()) {
                Ok(response) => ranked.push((backend.name().to_string(), response.value)),
                Err(
                    err @ (qrio_meta::MetaError::UnknownJob(_)
                    | qrio_meta::MetaError::UnknownStrategy(_)
                    | qrio_meta::MetaError::InvalidMetadata(_)),
                ) => return Err(err.into()),
                Err(skipped) => last_skip_error = Some(skipped),
            }
        }
        if ranked.is_empty() {
            // Surface the root cause when every device failed the same way,
            // rather than a generic "nothing could be scored".
            return Err(match last_skip_error {
                Some(err) => err.into(),
                None => SchedulerError::NoDeviceCouldBeScored {
                    job: job_name.to_string(),
                },
            });
        }
        // Deterministic ordering: equal scores break on device name, so the
        // decision never depends on the caller's fleet ordering.
        ranked.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        Ok((ranked, shortlisted.len()))
    }
}

/// A cluster [`ScorePlugin`] that asks the meta server for the score of the
/// job on each node's device — the "custom ranking plugin" of §3.5.
#[derive(Debug, Clone, Copy)]
pub struct MetaRankingPlugin<'a> {
    meta: &'a MetaServer,
}

impl<'a> MetaRankingPlugin<'a> {
    /// Create a ranking plugin backed by `meta`.
    pub fn new(meta: &'a MetaServer) -> Self {
        MetaRankingPlugin { meta }
    }
}

impl ScorePlugin for MetaRankingPlugin<'_> {
    fn name(&self) -> &str {
        "QrioMetaRanking"
    }

    fn score(&self, spec: &JobSpec, node: &Node) -> Result<f64, String> {
        self.meta
            .score(&spec.name, node.name())
            .map(|response| response.value)
            .map_err(|err| err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::{library, qasm};
    use qrio_meta::FidelityRankingConfig;

    fn fleet() -> Vec<Backend> {
        vec![
            Backend::uniform("clean", topology::line(12), 0.001, 0.01),
            Backend::uniform("mid", topology::ring(12), 0.02, 0.15),
            Backend::uniform("noisy", topology::line(12), 0.05, 0.45),
        ]
    }

    fn meta_with_fleet(fleet: &[Backend]) -> MetaServer {
        let mut meta = MetaServer::with_config(FidelityRankingConfig {
            shots: 128,
            seed: 11,
            shortfall_weight: 100.0,
        });
        for backend in fleet {
            meta.register_backend(backend.clone());
        }
        meta
    }

    #[test]
    fn fidelity_job_selects_the_cleanest_device() {
        let fleet = fleet();
        let mut meta = meta_with_fleet(&fleet);
        let bv = library::bernstein_vazirani(6, 0b110101).unwrap();
        meta.upload_fidelity_metadata("bv-job", 0.95, &qasm::to_qasm(&bv))
            .unwrap();
        let scheduler = QrioScheduler::new(&meta);
        let decision = scheduler
            .select_device("bv-job", &fleet, &DeviceRequirements::none())
            .unwrap();
        assert_eq!(decision.device, "clean");
        assert_eq!(decision.shortlisted, 3);
        assert_eq!(decision.ranked.len(), 3);
        assert!(decision.ranked[0].1 <= decision.ranked[1].1);
    }

    #[test]
    fn filtering_narrows_the_shortlist() {
        let fleet = fleet();
        let mut meta = meta_with_fleet(&fleet);
        let bv = library::bernstein_vazirani(4, 0b1010).unwrap();
        meta.upload_fidelity_metadata("bv-job", 0.9, &qasm::to_qasm(&bv))
            .unwrap();
        let scheduler = QrioScheduler::new(&meta);
        let requirements = DeviceRequirements {
            max_two_qubit_error: Some(0.2),
            ..DeviceRequirements::default()
        };
        let decision = scheduler
            .select_device("bv-job", &fleet, &requirements)
            .unwrap();
        assert_eq!(decision.shortlisted, 2);
        assert_ne!(decision.device, "noisy");
        // Impossible requirements -> filtering error.
        let impossible = DeviceRequirements {
            max_two_qubit_error: Some(0.001),
            ..DeviceRequirements::default()
        };
        assert!(matches!(
            scheduler.select_device("bv-job", &fleet, &impossible),
            Err(SchedulerError::NoDeviceAfterFiltering { .. })
        ));
    }

    #[test]
    fn topology_job_selects_matching_device() {
        let fleet = vec![
            Backend::uniform("ring-dev", topology::ring(10), 0.01, 0.05),
            Backend::uniform("tree-dev", topology::binary_tree(10), 0.01, 0.05),
            Backend::uniform("line-dev", topology::line(10), 0.01, 0.05),
        ];
        let mut meta = meta_with_fleet(&fleet);
        let request = library::topology_circuit(10, &topology::binary_tree(10).edges()).unwrap();
        meta.upload_topology_metadata("topo-job", request);
        let scheduler = QrioScheduler::new(&meta);
        let decision = scheduler
            .select_device("topo-job", &fleet, &DeviceRequirements::none())
            .unwrap();
        assert_eq!(decision.device, "tree-dev");
    }

    #[test]
    fn rank_reflects_fresh_calibration_without_binding() {
        // The re-ranking path: after a calibration-drift re-registration the
        // same job ranks differently, and rank() agrees with select_device().
        let fleet = fleet();
        let mut meta = meta_with_fleet(&fleet);
        let bv = library::bernstein_vazirani(5, 0b10011).unwrap();
        meta.upload_fidelity_metadata("drift-job", 0.9, &qasm::to_qasm(&bv))
            .unwrap();
        let scheduler = QrioScheduler::new(&meta);
        let (ranked, shortlisted) = scheduler
            .rank("drift-job", &fleet, &DeviceRequirements::none())
            .unwrap();
        assert_eq!(shortlisted, 3);
        assert_eq!(ranked[0].0, "clean");
        assert!(ranked.windows(2).all(|w| w[0].1 <= w[1].1));
        let decision = scheduler
            .select_device("drift-job", &fleet, &DeviceRequirements::none())
            .unwrap();
        assert_eq!(decision.ranked, ranked);

        // 'clean' drifts to terrible calibration: re-ranking must demote it.
        let mut meta = meta;
        meta.register_backend(Backend::uniform("clean", topology::line(12), 0.2, 0.6));
        let scheduler = QrioScheduler::new(&meta);
        let (reranked, _) = scheduler
            .rank("drift-job", &fleet, &DeviceRequirements::none())
            .unwrap();
        assert_ne!(reranked[0].0, "clean", "drifted device loses the top spot");
    }

    #[test]
    fn missing_metadata_and_empty_fleet_error() {
        let fleet = fleet();
        let meta = meta_with_fleet(&fleet);
        let scheduler = QrioScheduler::new(&meta);
        assert!(matches!(
            scheduler.select_device("ghost", &fleet, &DeviceRequirements::none()),
            Err(SchedulerError::Meta(_))
        ));
        assert!(matches!(
            scheduler.select_device("ghost", &[], &DeviceRequirements::none()),
            Err(SchedulerError::EmptyFleet)
        ));
    }

    #[test]
    fn devices_too_small_for_the_job_are_skipped() {
        let mut fleet = fleet();
        fleet.push(Backend::uniform("tiny", topology::line(2), 0.0, 0.0));
        let mut meta = meta_with_fleet(&fleet);
        let ghz = library::ghz(8).unwrap();
        meta.upload_fidelity_metadata("ghz-job", 0.9, &qasm::to_qasm(&ghz))
            .unwrap();
        let scheduler = QrioScheduler::new(&meta);
        let decision = scheduler
            .select_device("ghz-job", &fleet, &DeviceRequirements::none())
            .unwrap();
        assert!(decision.ranked.iter().all(|(name, _)| name != "tiny"));
    }

    #[test]
    fn equal_scores_break_ties_by_device_name() {
        // Two devices with identical topology and calibration produce exactly
        // equal scores for a min-queue job with no telemetry; the ranking must
        // not depend on fleet iteration order.
        let twin_a = Backend::uniform("twin-a", topology::line(6), 0.01, 0.05);
        let twin_b = Backend::uniform("twin-b", topology::line(6), 0.01, 0.05);
        for fleet in [
            vec![twin_a.clone(), twin_b.clone()],
            vec![twin_b.clone(), twin_a.clone()],
        ] {
            let mut meta = meta_with_fleet(&fleet);
            meta.upload_job_metadata("tie-job", &qrio_cluster::StrategySpec::min_queue(), None)
                .unwrap();
            let scheduler = QrioScheduler::new(&meta);
            let decision = scheduler
                .select_device("tie-job", &fleet, &DeviceRequirements::none())
                .unwrap();
            assert_eq!(decision.ranked[0].1, decision.ranked[1].1, "scores tie");
            assert_eq!(decision.device, "twin-a", "ties break lexicographically");
            let names: Vec<&str> = decision.ranked.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, vec!["twin-a", "twin-b"]);
        }
    }

    #[test]
    fn ranking_plugin_scores_cluster_nodes() {
        use qrio_cluster::{Resources, StrategySpec};
        let fleet = fleet();
        let mut meta = meta_with_fleet(&fleet);
        let bv = library::bernstein_vazirani(5, 0b10011).unwrap();
        meta.upload_fidelity_metadata("bv-plugin", 0.9, &qasm::to_qasm(&bv))
            .unwrap();
        let plugin = MetaRankingPlugin::new(&meta);
        let spec = JobSpec {
            name: "bv-plugin".into(),
            image: "img".into(),
            qasm: qasm::to_qasm(&bv),
            num_qubits: 5,
            resources: Resources::new(100, 128),
            requirements: DeviceRequirements::none(),
            strategy: StrategySpec::fidelity(0.9),
            priority: 0,
            shots: 128,
            threads: 0,
            retry: None,
            deadline: None,
        };
        let clean_node = Node::from_backend(fleet[0].clone(), Resources::new(1000, 1024));
        let noisy_node = Node::from_backend(fleet[2].clone(), Resources::new(1000, 1024));
        let clean_score = plugin.score(&spec, &clean_node).unwrap();
        let noisy_score = plugin.score(&spec, &noisy_node).unwrap();
        assert!(clean_score < noisy_score);
        assert_eq!(plugin.name(), "QrioMetaRanking");
        // Unknown job -> error string.
        let mut unknown_spec = spec;
        unknown_spec.name = "missing".into();
        assert!(plugin.score(&unknown_spec, &clean_node).is_err());
    }
}
