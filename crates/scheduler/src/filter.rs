//! The filtering stage of the QRIO scheduler (§3.5, evaluated in §4.5).
//!
//! Users can bound device characteristics (maximum two-qubit error, readout
//! error, minimum qubit count, T1/T2); filtering removes devices that violate
//! any bound so that the expensive ranking stage only runs on the shortlist.

use qrio_backend::{Backend, NodeLabels};
use qrio_cluster::DeviceRequirements;

/// Outcome of filtering one fleet for one set of requirements.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterReport {
    /// Names of the devices that passed every bound.
    pub accepted: Vec<String>,
    /// Names of rejected devices with the bound that rejected them.
    pub rejected: Vec<(String, String)>,
}

impl FilterReport {
    /// Number of devices that passed.
    pub fn accepted_count(&self) -> usize {
        self.accepted.len()
    }
}

/// Filter `fleet` by the user's device requirements, returning references to
/// the surviving backends.
pub fn filter_backends<'a>(
    fleet: &'a [Backend],
    requirements: &DeviceRequirements,
) -> Vec<&'a Backend> {
    fleet
        .iter()
        .filter(|backend| {
            let labels = NodeLabels::from_backend(backend, u64::MAX, u64::MAX);
            requirements.is_satisfied_by(&labels)
        })
        .collect()
}

/// Filter `fleet` and report which devices were rejected and why (useful for
/// the Fig. 10 experiment and for user-facing diagnostics).
pub fn filter_backends_report(
    fleet: &[Backend],
    requirements: &DeviceRequirements,
) -> FilterReport {
    let mut accepted = Vec::new();
    let mut rejected = Vec::new();
    for backend in fleet {
        let labels = NodeLabels::from_backend(backend, u64::MAX, u64::MAX);
        match rejection_reason(requirements, &labels) {
            None => accepted.push(backend.name().to_string()),
            Some(reason) => rejected.push((backend.name().to_string(), reason)),
        }
    }
    FilterReport { accepted, rejected }
}

fn rejection_reason(requirements: &DeviceRequirements, labels: &NodeLabels) -> Option<String> {
    if let Some(min_qubits) = requirements.min_qubits {
        if labels.num_qubits < min_qubits {
            return Some(format!(
                "{} qubits < required {min_qubits}",
                labels.num_qubits
            ));
        }
    }
    if let Some(max_err) = requirements.max_two_qubit_error {
        if labels.avg_two_qubit_error > max_err {
            return Some(format!(
                "avg 2q error {:.4} > allowed {max_err:.4}",
                labels.avg_two_qubit_error
            ));
        }
    }
    if let Some(max_ro) = requirements.max_readout_error {
        if labels.avg_readout_error > max_ro {
            return Some(format!(
                "avg readout error {:.4} > allowed {max_ro:.4}",
                labels.avg_readout_error
            ));
        }
    }
    if let Some(min_t1) = requirements.min_t1_us {
        if labels.avg_t1_us < min_t1 {
            return Some(format!(
                "avg T1 {:.0}us < required {min_t1:.0}us",
                labels.avg_t1_us
            ));
        }
    }
    if let Some(min_t2) = requirements.min_t2_us {
        if labels.avg_t2_us < min_t2 {
            return Some(format!(
                "avg T2 {:.0}us < required {min_t2:.0}us",
                labels.avg_t2_us
            ));
        }
    }
    None
}

/// Sweep the maximum-two-qubit-error bound across `thresholds` and report how
/// many fleet devices pass at each point — the exact quantity Fig. 10 plots.
pub fn two_qubit_error_sweep(fleet: &[Backend], thresholds: &[f64]) -> Vec<(f64, usize)> {
    thresholds
        .iter()
        .map(|&threshold| {
            let requirements = DeviceRequirements {
                max_two_qubit_error: Some(threshold),
                ..DeviceRequirements::default()
            };
            (threshold, filter_backends(fleet, &requirements).len())
        })
        .collect()
}

/// The ten thresholds the paper sweeps in Fig. 10 (0.07 → 0.68).
pub fn paper_fig10_thresholds() -> Vec<f64> {
    vec![
        0.07, 0.147, 0.214, 0.280, 0.347, 0.414, 0.480, 0.547, 0.613, 0.680,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::{fleet, topology};

    fn mixed_fleet() -> Vec<Backend> {
        vec![
            Backend::uniform("low-err", topology::line(10), 0.01, 0.05),
            Backend::uniform("mid-err", topology::line(20), 0.02, 0.3),
            Backend::uniform("high-err", topology::line(30), 0.05, 0.6),
        ]
    }

    #[test]
    fn filtering_on_two_qubit_error() {
        let fleet = mixed_fleet();
        let req = DeviceRequirements {
            max_two_qubit_error: Some(0.4),
            ..DeviceRequirements::default()
        };
        let survivors = filter_backends(&fleet, &req);
        let names: Vec<&str> = survivors.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["low-err", "mid-err"]);
    }

    #[test]
    fn filtering_on_qubit_count_and_t1() {
        let fleet = mixed_fleet();
        let req = DeviceRequirements {
            min_qubits: Some(15),
            ..DeviceRequirements::default()
        };
        assert_eq!(filter_backends(&fleet, &req).len(), 2);
        let req = DeviceRequirements {
            min_t1_us: Some(1e9),
            ..DeviceRequirements::default()
        };
        assert!(filter_backends(&fleet, &req).is_empty());
    }

    #[test]
    fn report_explains_rejections() {
        let fleet = mixed_fleet();
        let req = DeviceRequirements {
            max_two_qubit_error: Some(0.1),
            min_qubits: Some(15),
            ..DeviceRequirements::default()
        };
        let report = filter_backends_report(&fleet, &req);
        assert_eq!(report.accepted_count(), 0);
        assert_eq!(report.rejected.len(), 3);
        assert!(report
            .rejected
            .iter()
            .any(|(name, reason)| name == "low-err" && reason.contains("qubits")));
        assert!(report
            .rejected
            .iter()
            .any(|(name, reason)| name == "mid-err" && reason.contains("2q error")));
    }

    #[test]
    fn sweep_is_monotone_on_the_paper_fleet() {
        let fleet = fleet::paper_fleet().unwrap();
        let sweep = two_qubit_error_sweep(&fleet, &paper_fig10_thresholds());
        assert_eq!(sweep.len(), 10);
        for window in sweep.windows(2) {
            assert!(
                window[0].1 <= window[1].1,
                "filter count must grow with the threshold"
            );
        }
        // The loosest threshold admits (nearly) the whole fleet; the paper
        // reports all 100 devices at 0.68.
        assert!(sweep.last().unwrap().1 >= 95);
        // The tightest threshold admits almost nothing.
        assert!(sweep.first().unwrap().1 <= 10);
    }

    #[test]
    fn no_requirements_accepts_everything() {
        let fleet = mixed_fleet();
        assert_eq!(
            filter_backends(&fleet, &DeviceRequirements::none()).len(),
            3
        );
    }
}
