//! Error types for the QRIO scheduler.

use std::error::Error;
use std::fmt;

use qrio_meta::MetaError;
use qrio_sim::SimulatorError;
use qrio_transpiler::TranspilerError;

/// Errors produced while filtering, ranking or selecting devices.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerError {
    /// No device survived the filtering stage.
    NoDeviceAfterFiltering {
        /// Job name.
        job: String,
    },
    /// Devices survived filtering but none could be scored.
    NoDeviceCouldBeScored {
        /// Job name.
        job: String,
    },
    /// The candidate list was empty to begin with.
    EmptyFleet,
    /// The meta server reported an error.
    Meta(MetaError),
    /// The oracle baseline failed to transpile a circuit.
    Transpiler(TranspilerError),
    /// The oracle baseline failed to simulate a circuit.
    Simulator(SimulatorError),
}

impl fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerError::NoDeviceAfterFiltering { job } => {
                write!(f, "no device passed the filtering stage for job '{job}'")
            }
            SchedulerError::NoDeviceCouldBeScored { job } => {
                write!(f, "no filtered device could be scored for job '{job}'")
            }
            SchedulerError::EmptyFleet => write!(f, "the candidate device list is empty"),
            SchedulerError::Meta(err) => write!(f, "meta server error: {err}"),
            SchedulerError::Transpiler(err) => write!(f, "transpiler error: {err}"),
            SchedulerError::Simulator(err) => write!(f, "simulator error: {err}"),
        }
    }
}

impl Error for SchedulerError {}

impl From<MetaError> for SchedulerError {
    fn from(err: MetaError) -> Self {
        SchedulerError::Meta(err)
    }
}

impl From<TranspilerError> for SchedulerError {
    fn from(err: TranspilerError) -> Self {
        SchedulerError::Transpiler(err)
    }
}

impl From<SimulatorError> for SchedulerError {
    fn from(err: SimulatorError) -> Self {
        SchedulerError::Simulator(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(SchedulerError::EmptyFleet.to_string().contains("empty"));
        let e: SchedulerError = MetaError::UnknownJob("x".into()).into();
        assert!(e.to_string().contains("meta server"));
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<SchedulerError>();
    }
}
