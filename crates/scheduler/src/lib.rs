//! # qrio-scheduler
//!
//! The QRIO scheduler (reproduction of *Empowering the Quantum Cloud User
//! with QRIO*, IISWC 2024, §3.5) and the baselines the paper compares it to.
//!
//! Scheduling a quantum job is a two-stage pipeline:
//!
//! 1. **Filtering** ([`filter`]) — devices that violate the user's bounds on
//!    qubit count, average two-qubit error, readout error or T1/T2 are
//!    removed (evaluated in Fig. 10).
//! 2. **Ranking** ([`QrioScheduler`]) — each shortlisted device is scored by
//!    the QRIO Meta Server through the job's registered ranking-strategy
//!    plugin (Clifford-canary fidelity, Mapomatic topology similarity,
//!    weighted multi-objective, min-queue, or any user-defined strategy) and
//!    the device with the lowest score wins; ties break on device name.
//!
//! [`baselines`] provides the comparison points of the evaluation: the random
//! scheduler (Fig. 6/7) and the oracle scheduler that scores devices with the
//! original circuit and exact simulation (Fig. 7), plus the fleet-wide
//! average/median fidelity statistics.
//!
//! # Examples
//!
//! ```
//! use qrio_backend::{topology, Backend};
//! use qrio_circuit::{library, qasm};
//! use qrio_cluster::DeviceRequirements;
//! use qrio_meta::MetaServer;
//! use qrio_scheduler::QrioScheduler;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let fleet = vec![
//!     Backend::uniform("clean", topology::line(8), 0.001, 0.01),
//!     Backend::uniform("noisy", topology::line(8), 0.05, 0.4),
//! ];
//! let mut meta = MetaServer::new();
//! for device in &fleet {
//!     meta.register_backend(device.clone());
//! }
//! let bv = library::bernstein_vazirani(5, 0b10101)?;
//! meta.upload_fidelity_metadata("bv-job", 0.9, &qasm::to_qasm(&bv))?;
//!
//! let scheduler = QrioScheduler::new(&meta);
//! let decision = scheduler.select_device("bv-job", &fleet, &DeviceRequirements::none())?;
//! assert_eq!(decision.device, "clean");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
mod error;
pub mod filter;
mod qrio_scheduler;

pub use baselines::{
    achieved_fidelity, oracle_select, OracleEntry, OracleOutcome, RandomScheduler,
};
pub use error::SchedulerError;
pub use filter::{
    filter_backends, filter_backends_report, paper_fig10_thresholds, two_qubit_error_sweep,
    FilterReport,
};
pub use qrio_scheduler::{MetaRankingPlugin, QrioScheduler, SchedulerDecision};
