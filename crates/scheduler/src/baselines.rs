//! Baseline schedulers used in the paper's evaluation (§4.2 / §4.3): the
//! random scheduler and the oracle scheduler, plus the achieved-fidelity
//! measurement shared by Fig. 7.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qrio_backend::Backend;
use qrio_circuit::Circuit;
use qrio_sim::{executor, NoiseModel};
use qrio_transpiler::{deflate, transpile};

use crate::error::SchedulerError;

/// The random scheduler baseline: picks a device uniformly at random from the
/// filtered list, ignoring scores entirely (§4.2).
#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// A random scheduler seeded for reproducibility.
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Pick one device name uniformly at random.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulerError::EmptyFleet`] when `candidates` is empty.
    pub fn pick<'a>(&mut self, candidates: &[&'a Backend]) -> Result<&'a Backend, SchedulerError> {
        if candidates.is_empty() {
            return Err(SchedulerError::EmptyFleet);
        }
        let index = self.rng.gen_range(0..candidates.len());
        Ok(candidates[index])
    }
}

/// Measure the fidelity a circuit actually achieves on a backend: transpile
/// the *original* circuit to the device, deflate to the active qubits, run it
/// noise-free (the recorded "correct output" of the oracle definition) and
/// under the device noise model, and compare with Hellinger fidelity.
///
/// # Errors
///
/// Returns an error if the circuit cannot be transpiled or simulated (e.g. a
/// non-Clifford circuit wider than the statevector limit).
pub fn achieved_fidelity(
    circuit: &Circuit,
    backend: &Backend,
    shots: u64,
    seed: u64,
) -> Result<f64, SchedulerError> {
    let prepared = if circuit.measurement_count() > 0 {
        circuit.clone()
    } else {
        let mut measured = circuit.clone();
        let _ = measured.measure_all();
        measured
    };
    let transpiled = transpile(&prepared, backend)?;
    let deflated = deflate(&transpiled.circuit, backend)?;
    let ideal = executor::run_ideal(&deflated.circuit, shots, seed)?;
    let noise = NoiseModel::from_backend(&deflated.backend);
    // The noisy half runs a full seed stride away from the ideal half so the
    // two sharded executions never share an RNG stream.
    let noisy = executor::run_with_noise(
        &deflated.circuit,
        &noise,
        shots,
        seed.wrapping_add(qrio_sim::SEED_STREAM_STRIDE),
    )?;
    Ok(ideal.hellinger_fidelity(&noisy))
}

/// The per-device outcome of an oracle evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleEntry {
    /// Device name.
    pub device: String,
    /// Fidelity the original circuit achieves on that device.
    pub fidelity: f64,
}

/// The result of running the oracle scheduler over a fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleOutcome {
    /// The device with the highest achieved fidelity.
    pub best_device: String,
    /// The fidelity achieved on the best device.
    pub best_fidelity: f64,
    /// Per-device fidelities for every device that could run the circuit.
    pub entries: Vec<OracleEntry>,
}

impl OracleOutcome {
    /// Mean fidelity across the evaluated devices (the "Average" bar of Fig. 7).
    pub fn average_fidelity(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.fidelity).sum::<f64>() / self.entries.len() as f64
    }

    /// Median fidelity across the evaluated devices (the "Median" bar of Fig. 7).
    pub fn median_fidelity(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let mut fidelities: Vec<f64> = self.entries.iter().map(|e| e.fidelity).collect();
        fidelities.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mid = fidelities.len() / 2;
        if fidelities.len() % 2 == 1 {
            fidelities[mid]
        } else {
            (fidelities[mid - 1] + fidelities[mid]) / 2.0
        }
    }

    /// The fidelity achieved on a specific device, if it was evaluated.
    pub fn fidelity_on(&self, device: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.device == device)
            .map(|e| e.fidelity)
    }
}

/// The oracle scheduler: score every device with the *original* circuit (not
/// the Clifford canary) using exact noise-free simulation as ground truth, and
/// pick the device with the highest fidelity. This requires knowing the
/// correct answer ahead of scheduling, which is why it is an oracle rather
/// than a deployable policy (§4.3).
///
/// # Errors
///
/// Returns an error if no device in `fleet` can run the circuit.
pub fn oracle_select(
    circuit: &Circuit,
    fleet: &[Backend],
    shots: u64,
    seed: u64,
) -> Result<OracleOutcome, SchedulerError> {
    let mut entries = Vec::new();
    for backend in fleet {
        match achieved_fidelity(circuit, backend, shots, seed) {
            Ok(fidelity) => entries.push(OracleEntry {
                device: backend.name().to_string(),
                fidelity,
            }),
            Err(SchedulerError::Transpiler(_)) | Err(SchedulerError::Simulator(_)) => continue,
            Err(other) => return Err(other),
        }
    }
    let best = entries
        .iter()
        .max_by(|a, b| {
            a.fidelity
                .partial_cmp(&b.fidelity)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .cloned()
        .ok_or(SchedulerError::EmptyFleet)?;
    Ok(OracleOutcome {
        best_device: best.device,
        best_fidelity: best.fidelity,
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;

    fn fleet() -> Vec<Backend> {
        vec![
            Backend::uniform("clean", topology::line(10), 0.001, 0.005),
            Backend::uniform("mid", topology::ring(10), 0.02, 0.15),
            Backend::uniform("noisy", topology::line(10), 0.05, 0.4),
        ]
    }

    #[test]
    fn random_scheduler_is_seeded_and_uniformish() {
        let fleet = fleet();
        let refs: Vec<&Backend> = fleet.iter().collect();
        let mut a = RandomScheduler::new(5);
        let mut b = RandomScheduler::new(5);
        for _ in 0..10 {
            assert_eq!(a.pick(&refs).unwrap().name(), b.pick(&refs).unwrap().name());
        }
        // All devices get picked eventually.
        let mut seen = std::collections::BTreeSet::new();
        let mut rs = RandomScheduler::new(1);
        for _ in 0..100 {
            seen.insert(rs.pick(&refs).unwrap().name().to_string());
        }
        assert_eq!(seen.len(), 3);
        let mut empty = RandomScheduler::new(0);
        assert!(empty.pick(&[]).is_err());
    }

    #[test]
    fn achieved_fidelity_orders_devices_by_noise() {
        let circuit = library::bernstein_vazirani(5, 0b10101).unwrap();
        let fleet = fleet();
        let f_clean = achieved_fidelity(&circuit, &fleet[0], 256, 3).unwrap();
        let f_noisy = achieved_fidelity(&circuit, &fleet[2], 256, 3).unwrap();
        assert!(
            f_clean > 0.9,
            "clean device should achieve high fidelity: {f_clean}"
        );
        assert!(f_clean > f_noisy);
    }

    #[test]
    fn oracle_picks_the_cleanest_device() {
        let circuit = library::grover(3, 5).unwrap();
        let fleet = fleet();
        let outcome = oracle_select(&circuit, &fleet, 256, 7).unwrap();
        assert_eq!(outcome.best_device, "clean");
        assert_eq!(outcome.entries.len(), 3);
        assert!(outcome.best_fidelity >= outcome.average_fidelity());
        assert!(outcome.best_fidelity >= outcome.median_fidelity());
        assert!(outcome.fidelity_on("noisy").unwrap() <= outcome.best_fidelity);
        assert_eq!(outcome.fidelity_on("missing"), None);
    }

    #[test]
    fn oracle_skips_devices_that_cannot_run_the_circuit() {
        let circuit = library::ghz(8).unwrap();
        let mut fleet = fleet();
        fleet.push(Backend::uniform("tiny", topology::line(2), 0.0, 0.0));
        let outcome = oracle_select(&circuit, &fleet, 128, 1).unwrap();
        assert!(outcome.entries.iter().all(|e| e.device != "tiny"));
    }

    #[test]
    fn oracle_on_empty_fleet_errors() {
        let circuit = library::ghz(3).unwrap();
        assert!(matches!(
            oracle_select(&circuit, &[], 64, 0),
            Err(SchedulerError::EmptyFleet)
        ));
    }

    #[test]
    fn median_and_average_statistics() {
        let outcome = OracleOutcome {
            best_device: "a".into(),
            best_fidelity: 0.9,
            entries: vec![
                OracleEntry {
                    device: "a".into(),
                    fidelity: 0.9,
                },
                OracleEntry {
                    device: "b".into(),
                    fidelity: 0.5,
                },
                OracleEntry {
                    device: "c".into(),
                    fidelity: 0.1,
                },
                OracleEntry {
                    device: "d".into(),
                    fidelity: 0.3,
                },
            ],
        };
        assert!((outcome.average_fidelity() - 0.45).abs() < 1e-12);
        assert!((outcome.median_fidelity() - 0.4).abs() < 1e-12);
    }
}
