//! The open ranking interface: the [`RankingStrategy`] trait and the
//! [`StrategyRegistry`] that resolves strategy names to implementations.
//!
//! The paper's core promise is that the cloud *user* customizes device
//! selection (§3.4). Instead of a closed enum of policies, every policy is a
//! plugin: an object implementing [`RankingStrategy`], registered by name in
//! the meta server's registry. The job spec only carries the strategy *name*
//! plus typed [`StrategyParams`]; adding a new policy means registering one
//! new object — no changes to the cluster, scheduler or orchestrator crates.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use qrio_backend::Backend;
use qrio_circuit::Circuit;
use qrio_cluster::StrategyParams;

use crate::error::MetaError;

/// A score produced for one (job, device) pair. Lower is better, matching the
/// paper's convention ("it is always better to get a lower score", §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Score {
    /// The device the score refers to.
    pub device: String,
    /// The numeric score handed to the scheduler (lower is better).
    pub value: f64,
    /// Strategy-specific breakdown of the score (e.g. `canary_fidelity`,
    /// `queue_depth`), for diagnostics and the visualizer's detail view.
    pub details: Vec<(String, f64)>,
}

impl Score {
    /// A score with no detail breakdown.
    pub fn new(device: impl Into<String>, value: f64) -> Self {
        Score {
            device: device.into(),
            value,
            details: Vec::new(),
        }
    }

    /// Builder-style: attach one detail entry.
    #[must_use]
    pub fn with_detail(mut self, key: impl Into<String>, value: f64) -> Self {
        self.details.push((key.into(), value));
        self
    }

    /// Look up a detail entry by name.
    pub fn detail(&self, key: &str) -> Option<f64> {
        self.details
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, value)| *value)
    }
}

/// A point-in-time load report for one device, fed to the meta server by the
/// control plane (queue depth and classical utilization from the cluster
/// registry). Telemetry-aware strategies read it from the [`JobContext`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceTelemetry {
    /// Number of jobs currently queued or running on the device.
    pub queue_depth: usize,
    /// Classical utilization of the device's node, in `[0, 1]`.
    pub utilization: f64,
    /// Health penalty from the device's circuit breaker, in `[0, 1]`:
    /// `0.0` for a healthy device, `1.0` while the breaker is open
    /// (cordoned), `0.5` on probation, and the recent failure rate while
    /// closed. Telemetry-aware strategies use it to steer work away from
    /// recently-flaky devices.
    pub health_penalty: f64,
}

/// Everything a strategy may consult when scoring a job against a device.
#[derive(Debug, Clone, Copy)]
pub struct JobContext<'a> {
    /// Name of the job being scored.
    pub job_name: &'a str,
    /// The job's strategy parameters (from the [`qrio_cluster::StrategySpec`]).
    pub params: &'a StrategyParams,
    /// The user's circuit, when one was uploaded with the job metadata.
    pub circuit: Option<&'a Circuit>,
    /// Latest telemetry for the device under evaluation, when reported.
    pub telemetry: Option<&'a DeviceTelemetry>,
}

/// A device-ranking policy, registered by name in a [`StrategyRegistry`].
///
/// Implementations score a job against one candidate device at a time; the
/// scheduler ranks devices by ascending [`Score::value`]. The `validate` hook
/// runs when job metadata is uploaded, so malformed parameters are rejected at
/// submission time rather than mid-scheduling.
///
/// # Examples
///
/// A user-defined strategy that prefers devices needing the fewest two-qubit
/// gates after transpilation:
///
/// ```
/// use qrio_backend::Backend;
/// use qrio_circuit::Circuit;
/// use qrio_cluster::StrategyParams;
/// use qrio_meta::{JobContext, MetaError, RankingStrategy, Score};
///
/// #[derive(Debug)]
/// struct FewestTwoQubitGates;
///
/// impl RankingStrategy for FewestTwoQubitGates {
///     fn name(&self) -> &str {
///         "fewest-2q-gates"
///     }
///
///     fn validate(
///         &self,
///         _params: &StrategyParams,
///         circuit: Option<&Circuit>,
///     ) -> Result<(), MetaError> {
///         circuit
///             .map(|_| ())
///             .ok_or_else(|| MetaError::InvalidMetadata("a circuit is required".into()))
///     }
///
///     fn score(&self, job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
///         let circuit = job.circuit.expect("validated at upload");
///         let transpiled = qrio_transpiler::transpile(circuit, backend)?;
///         Ok(Score::new(
///             backend.name(),
///             transpiled.circuit.two_qubit_gate_count() as f64,
///         ))
///     }
/// }
/// ```
pub trait RankingStrategy: fmt::Debug + Send + Sync {
    /// The registry name jobs reference this strategy by.
    fn name(&self) -> &str;

    /// Validate the job's parameters (and presence/absence of a circuit) at
    /// metadata-upload time.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::InvalidMetadata`] when the parameters are
    /// malformed for this strategy.
    fn validate(&self, params: &StrategyParams, circuit: Option<&Circuit>)
        -> Result<(), MetaError>;

    /// Score the job against one candidate device (lower is better).
    ///
    /// # Errors
    ///
    /// Returns an error when the device cannot be evaluated (e.g. the circuit
    /// does not fit); the scheduler skips such devices. Reserve
    /// [`MetaError::InvalidMetadata`] for parameter problems that would fail
    /// on *every* device — the scheduler treats it as job-level and aborts
    /// the cycle instead of skipping.
    fn score(&self, job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError>;

    /// The parameter keys this strategy understands, when its parameter
    /// surface is closed. Static analysis uses this to flag misspelled
    /// parameters that `score` would silently ignore.
    ///
    /// Return `None` (the default) when the surface is open or unknown — no
    /// checking runs then. Return `Some(&[])` for a strategy that takes no
    /// parameters at all.
    fn known_params(&self) -> Option<&'static [&'static str]> {
        None
    }

    /// Whether a score for a `(job, device)` pair may be memoized by the meta
    /// server until the job metadata is re-uploaded or the device calibration
    /// is re-registered.
    ///
    /// Return `true` only when `score` is a pure function of the job's
    /// parameters/circuit and the backend's calibration — in particular, a
    /// strategy that reads [`JobContext::telemetry`] must keep the default
    /// `false`, since telemetry changes between scheduling cycles without any
    /// re-upload. The built-in `fidelity` and `topology` strategies are
    /// cacheable (their embedding searches and canary simulations are
    /// deterministic and telemetry-free); `weighted` and `min_queue` are not.
    fn is_cacheable(&self) -> bool {
        false
    }
}

/// A name-indexed collection of [`RankingStrategy`] plugins, owned by the meta
/// server. Names are unique; registering a duplicate is an error so plugins
/// cannot silently shadow each other.
#[derive(Clone, Default)]
pub struct StrategyRegistry {
    strategies: BTreeMap<String, Arc<dyn RankingStrategy>>,
}

impl StrategyRegistry {
    /// An empty registry (no strategies at all — most callers want
    /// [`crate::builtin::builtin_registry`] instead).
    pub fn new() -> Self {
        StrategyRegistry::default()
    }

    /// Register a strategy under its own name.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::DuplicateStrategy`] when the name is taken.
    pub fn register(&mut self, strategy: Arc<dyn RankingStrategy>) -> Result<(), MetaError> {
        let name = strategy.name().to_string();
        if self.strategies.contains_key(&name) {
            return Err(MetaError::DuplicateStrategy(name));
        }
        self.strategies.insert(name, strategy);
        Ok(())
    }

    /// Look up a strategy by name.
    pub fn get(&self, name: &str) -> Option<&dyn RankingStrategy> {
        self.strategies.get(name).map(Arc::as_ref)
    }

    /// Look up a strategy by name, or error with [`MetaError::UnknownStrategy`].
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::UnknownStrategy`] when no strategy is registered
    /// under `name`.
    pub fn resolve(&self, name: &str) -> Result<&dyn RankingStrategy, MetaError> {
        self.get(name)
            .ok_or_else(|| MetaError::UnknownStrategy(name.to_string()))
    }

    /// Names of every registered strategy, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.strategies.keys().map(String::as_str).collect()
    }

    /// Number of registered strategies.
    pub fn len(&self) -> usize {
        self.strategies.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.strategies.is_empty()
    }
}

impl fmt::Debug for StrategyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyRegistry")
            .field("strategies", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct ConstantStrategy {
        name: &'static str,
        value: f64,
    }

    impl RankingStrategy for ConstantStrategy {
        fn name(&self) -> &str {
            self.name
        }

        fn validate(
            &self,
            _params: &StrategyParams,
            _circuit: Option<&Circuit>,
        ) -> Result<(), MetaError> {
            Ok(())
        }

        fn score(&self, _job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
            Ok(Score::new(backend.name(), self.value).with_detail("constant", self.value))
        }
    }

    #[test]
    fn registry_registers_resolves_and_rejects_duplicates() {
        let mut registry = StrategyRegistry::new();
        assert!(registry.is_empty());
        registry
            .register(Arc::new(ConstantStrategy {
                name: "const",
                value: 1.0,
            }))
            .unwrap();
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["const"]);
        assert!(registry.get("const").is_some());
        assert!(registry.resolve("const").is_ok());
        assert!(matches!(
            registry.resolve("missing"),
            Err(MetaError::UnknownStrategy(_))
        ));
        assert!(matches!(
            registry.register(Arc::new(ConstantStrategy {
                name: "const",
                value: 2.0,
            })),
            Err(MetaError::DuplicateStrategy(_))
        ));
        assert!(format!("{registry:?}").contains("const"));
    }

    #[test]
    fn score_details_are_queryable() {
        let score = Score::new("dev", 4.25)
            .with_detail("alpha", 1.0)
            .with_detail("beta", 3.25);
        assert_eq!(score.detail("alpha"), Some(1.0));
        assert_eq!(score.detail("beta"), Some(3.25));
        assert_eq!(score.detail("gamma"), None);
        assert_eq!(score.value, 4.25);
    }
}
