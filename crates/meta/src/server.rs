//! The QRIO Meta Server: backend store, per-job metadata and score requests.
//!
//! The meta server holds a copy of every vendor backend file and the metadata
//! the visualizer uploads for each job (Table 1): for the fidelity workflow,
//! the target fidelity and the user's QASM circuit; for the topology workflow,
//! the user-drawn topology circuit. When the scheduler's ranking plugin asks
//! for a score of a job against a device, the server dispatches to the
//! matching strategy (§3.4).

use std::collections::BTreeMap;

use qrio_backend::{spec as backend_spec, Backend};
use qrio_circuit::{qasm, Circuit};

use crate::error::MetaError;
use crate::fidelity_ranking::{evaluate_fidelity, FidelityEvaluation, FidelityRankingConfig};
use crate::topology_ranking::{evaluate_topology, TopologyEvaluation};

/// Metadata stored per job, mirroring Table 1 of the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum JobMetadata {
    /// Fidelity workflow: target fidelity plus the user's original circuit.
    Fidelity {
        /// Requested fidelity in `[0, 1]`.
        target: f64,
        /// The user circuit (parsed from the uploaded QASM file).
        circuit: Circuit,
    },
    /// Topology workflow: the user-drawn topology as a topology circuit.
    Topology {
        /// One CNOT per requested interaction edge.
        topology_circuit: Circuit,
    },
}

/// A score produced for a (job, device) pair. Lower is better.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreResponse {
    /// Result of the fidelity-ranking strategy.
    Fidelity(FidelityEvaluation),
    /// Result of the topology-ranking strategy.
    Topology(TopologyEvaluation),
}

impl ScoreResponse {
    /// The numeric score (lower is better), regardless of strategy.
    pub fn score(&self) -> f64 {
        match self {
            ScoreResponse::Fidelity(e) => e.score,
            ScoreResponse::Topology(e) => e.score,
        }
    }

    /// The device the score refers to.
    pub fn device(&self) -> &str {
        match self {
            ScoreResponse::Fidelity(e) => &e.device,
            ScoreResponse::Topology(e) => &e.device,
        }
    }
}

/// The QRIO Meta Server.
#[derive(Debug, Clone, Default)]
pub struct MetaServer {
    backends: BTreeMap<String, Backend>,
    jobs: BTreeMap<String, JobMetadata>,
    fidelity_config: FidelityRankingConfig,
}

impl MetaServer {
    /// An empty meta server with default scoring configuration.
    pub fn new() -> Self {
        MetaServer::default()
    }

    /// An empty meta server with a custom fidelity-ranking configuration.
    pub fn with_config(fidelity_config: FidelityRankingConfig) -> Self {
        MetaServer {
            fidelity_config,
            ..MetaServer::default()
        }
    }

    /// The fidelity-ranking configuration in use.
    pub fn fidelity_config(&self) -> &FidelityRankingConfig {
        &self.fidelity_config
    }

    // --- Backend store -------------------------------------------------------------------

    /// Register a vendor backend (a copy of the node's backend file, §3.1).
    pub fn register_backend(&mut self, backend: Backend) {
        self.backends.insert(backend.name().to_string(), backend);
    }

    /// Register a backend from its `backend.spec` text.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec does not parse.
    pub fn register_backend_spec(&mut self, spec_text: &str) -> Result<(), MetaError> {
        let backend = backend_spec::from_spec(spec_text)
            .map_err(|e| MetaError::InvalidMetadata(format!("bad backend spec: {e}")))?;
        self.register_backend(backend);
        Ok(())
    }

    /// Look up a registered backend.
    pub fn backend(&self, device: &str) -> Option<&Backend> {
        self.backends.get(device)
    }

    /// Names of all registered backends.
    pub fn device_names(&self) -> Vec<&str> {
        self.backends.keys().map(String::as_str).collect()
    }

    /// Number of registered backends.
    pub fn device_count(&self) -> usize {
        self.backends.len()
    }

    // --- Job metadata (Table 1) ----------------------------------------------------------

    /// Upload fidelity-workflow metadata: the target fidelity and the user's
    /// QASM circuit.
    ///
    /// # Errors
    ///
    /// Returns an error if the target is outside `[0, 1]` or the QASM fails to
    /// parse.
    pub fn upload_fidelity_metadata(
        &mut self,
        job_name: impl Into<String>,
        target: f64,
        qasm_text: &str,
    ) -> Result<(), MetaError> {
        if !(0.0..=1.0).contains(&target) {
            return Err(MetaError::InvalidMetadata(format!(
                "fidelity {target} outside [0, 1]"
            )));
        }
        let circuit = qasm::parse_qasm(qasm_text)?;
        self.jobs
            .insert(job_name.into(), JobMetadata::Fidelity { target, circuit });
        Ok(())
    }

    /// Upload topology-workflow metadata: the user-drawn topology circuit.
    pub fn upload_topology_metadata(
        &mut self,
        job_name: impl Into<String>,
        topology_circuit: Circuit,
    ) {
        self.jobs
            .insert(job_name.into(), JobMetadata::Topology { topology_circuit });
    }

    /// The metadata stored for a job, if any.
    pub fn job_metadata(&self, job_name: &str) -> Option<&JobMetadata> {
        self.jobs.get(job_name)
    }

    // --- Scoring -------------------------------------------------------------------------

    /// Score `job_name` against `device` (the request body of §3.4). The
    /// strategy is chosen by the stored metadata: fidelity if a fidelity
    /// threshold exists for the job, topology otherwise.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown jobs or devices, or when the underlying
    /// strategy fails.
    pub fn score(&self, job_name: &str, device: &str) -> Result<ScoreResponse, MetaError> {
        let metadata = self
            .jobs
            .get(job_name)
            .ok_or_else(|| MetaError::UnknownJob(job_name.to_string()))?;
        let backend = self
            .backends
            .get(device)
            .ok_or_else(|| MetaError::UnknownDevice(device.to_string()))?;
        match metadata {
            JobMetadata::Fidelity { target, circuit } => {
                let evaluation =
                    evaluate_fidelity(circuit, *target, backend, &self.fidelity_config)?;
                Ok(ScoreResponse::Fidelity(evaluation))
            }
            JobMetadata::Topology { topology_circuit } => {
                let evaluation = evaluate_topology(topology_circuit, backend)?;
                Ok(ScoreResponse::Topology(evaluation))
            }
        }
    }

    /// Score a job against every registered device, returning successful
    /// evaluations sorted best (lowest score) first. Devices that cannot host
    /// the job are skipped.
    ///
    /// # Errors
    ///
    /// Returns an error if the job is unknown.
    pub fn score_all(&self, job_name: &str) -> Result<Vec<ScoreResponse>, MetaError> {
        if !self.jobs.contains_key(job_name) {
            return Err(MetaError::UnknownJob(job_name.to_string()));
        }
        let mut responses: Vec<ScoreResponse> = self
            .backends
            .keys()
            .filter_map(|device| self.score(job_name, device).ok())
            .collect();
        responses.sort_by(|a, b| {
            a.score()
                .partial_cmp(&b.score())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::{spec, topology};
    use qrio_circuit::library;

    fn server_with_devices() -> MetaServer {
        let mut server = MetaServer::with_config(FidelityRankingConfig {
            shots: 128,
            seed: 3,
            shortfall_weight: 100.0,
        });
        server.register_backend(Backend::uniform("clean", topology::line(8), 0.0, 0.0));
        server.register_backend(Backend::uniform("noisy", topology::line(8), 0.05, 0.3));
        server.register_backend(Backend::uniform(
            "tree",
            topology::binary_tree(8),
            0.01,
            0.05,
        ));
        server
    }

    #[test]
    fn backend_registration_and_lookup() {
        let mut server = server_with_devices();
        assert_eq!(server.device_count(), 3);
        assert!(server.backend("clean").is_some());
        assert!(server.backend("missing").is_none());
        // Spec-based registration (the vendor path).
        let text = spec::to_spec(&Backend::uniform(
            "from-spec",
            topology::ring(4),
            0.01,
            0.02,
        ));
        server.register_backend_spec(&text).unwrap();
        assert!(server.backend("from-spec").is_some());
        assert!(server.register_backend_spec("garbage").is_err());
    }

    #[test]
    fn fidelity_scoring_dispatch() {
        let mut server = server_with_devices();
        let bv = library::bernstein_vazirani(5, 0b10110).unwrap();
        server
            .upload_fidelity_metadata("bv-job", 0.95, &qrio_circuit::qasm::to_qasm(&bv))
            .unwrap();
        assert!(matches!(
            server.job_metadata("bv-job"),
            Some(JobMetadata::Fidelity { .. })
        ));
        let clean = server.score("bv-job", "clean").unwrap();
        let noisy = server.score("bv-job", "noisy").unwrap();
        assert!(clean.score() < noisy.score());
        match clean {
            ScoreResponse::Fidelity(e) => assert!(e.canary_fidelity > 0.9),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn topology_scoring_dispatch() {
        // Fig. 9 style: devices differ only in topology, so the device whose
        // coupling map matches the requested tree must win.
        let mut server = MetaServer::new();
        server.register_backend(Backend::uniform(
            "eq-tree",
            topology::binary_tree(8),
            0.01,
            0.05,
        ));
        server.register_backend(Backend::uniform("eq-ring", topology::ring(8), 0.01, 0.05));
        server.register_backend(Backend::uniform("eq-line", topology::line(8), 0.01, 0.05));
        let request = library::topology_circuit(8, &topology::binary_tree(8).edges()).unwrap();
        server.upload_topology_metadata("topo-job", request);
        let ranked = server.score_all("topo-job").unwrap();
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].device(), "eq-tree");
        for window in ranked.windows(2) {
            assert!(window[0].score() <= window[1].score());
        }
    }

    #[test]
    fn unknown_job_and_device_errors() {
        let mut server = server_with_devices();
        assert!(matches!(
            server.score("nope", "clean"),
            Err(MetaError::UnknownJob(_))
        ));
        assert!(server.score_all("nope").is_err());
        let bv = library::bernstein_vazirani(3, 0b101).unwrap();
        server
            .upload_fidelity_metadata("j", 0.9, &qrio_circuit::qasm::to_qasm(&bv))
            .unwrap();
        assert!(matches!(
            server.score("j", "missing"),
            Err(MetaError::UnknownDevice(_))
        ));
    }

    #[test]
    fn invalid_metadata_is_rejected() {
        let mut server = server_with_devices();
        let bv = library::bernstein_vazirani(3, 0b1).unwrap();
        let text = qrio_circuit::qasm::to_qasm(&bv);
        assert!(server.upload_fidelity_metadata("bad", 1.5, &text).is_err());
        assert!(server
            .upload_fidelity_metadata("bad", 0.9, "not qasm at all $$")
            .is_err());
    }

    #[test]
    fn score_all_skips_undersized_devices() {
        let mut server = server_with_devices();
        server.register_backend(Backend::uniform("tiny", topology::line(2), 0.0, 0.0));
        let ghz = library::ghz(6).unwrap();
        server
            .upload_fidelity_metadata("ghz-job", 0.9, &qrio_circuit::qasm::to_qasm(&ghz))
            .unwrap();
        let ranked = server.score_all("ghz-job").unwrap();
        assert!(ranked.iter().all(|r| r.device() != "tiny"));
        assert!(!ranked.is_empty());
    }
}
