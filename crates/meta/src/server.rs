//! The QRIO Meta Server: backend store, per-job metadata, device telemetry
//! and score requests.
//!
//! The meta server holds a copy of every vendor backend file, the metadata the
//! visualizer uploads for each job (Table 1) and the latest load telemetry the
//! control plane reports per device. When the scheduler's ranking plugin asks
//! for a score of a job against a device, the server resolves the job's
//! strategy **by name** in its [`StrategyRegistry`] and dispatches to that
//! plugin (§3.4) — fidelity and topology ranking are just the built-in
//! entries; user-defined strategies register through
//! [`MetaServer::register_strategy`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use qrio_backend::{spec as backend_spec, Backend};
use qrio_circuit::{qasm, Circuit};
use qrio_cluster::{StrategyParams, StrategySpec};

use crate::builtin::builtin_registry;
use crate::error::MetaError;
use crate::fidelity_ranking::FidelityRankingConfig;
use crate::strategy::{DeviceTelemetry, JobContext, RankingStrategy, Score, StrategyRegistry};

/// Metadata stored per job: the strategy reference from the job spec plus the
/// user's circuit, when one was uploaded (Table 1 generalized to arbitrary
/// strategies).
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    strategy: StrategySpec,
    circuit: Option<Circuit>,
}

impl JobRecord {
    /// Name of the ranking strategy the job selected.
    pub fn strategy_name(&self) -> &str {
        &self.strategy.name
    }

    /// The strategy parameters uploaded with the job.
    pub fn params(&self) -> &StrategyParams {
        &self.strategy.params
    }

    /// The uploaded circuit, when the strategy needs one.
    pub fn circuit(&self) -> Option<&Circuit> {
        self.circuit.as_ref()
    }
}

/// The full persistable state of a [`MetaServer`], used by durability
/// snapshots.
///
/// The strategy registry is deliberately **not** part of the state: strategy
/// implementations are arbitrary Rust values and cannot be serialized.
/// [`MetaServer::from_state`] starts from the built-in registry; user-defined
/// strategies must be re-registered by the caller before any scoring happens
/// (the orchestrator's recovery hook does exactly that). The memoized-score
/// cache is also dropped — it is a pure performance artifact and every entry
/// is deterministically recomputable.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaState {
    /// The fidelity-ranking configuration of the built-in strategies.
    pub fidelity_config: FidelityRankingConfig,
    /// Every registered backend with its calibration revision, in name order.
    pub backends: Vec<(Backend, u64)>,
    /// Every job record as `(job, strategy, circuit)`, in name order.
    pub jobs: Vec<(String, StrategySpec, Option<Circuit>)>,
    /// The latest telemetry per device, in name order.
    pub telemetry: Vec<(String, DeviceTelemetry)>,
}

/// Memoized `(job, device)` scores for cacheable strategies, plus hit/miss
/// counters. Entries carry the device's calibration revision at compute time,
/// so re-registering a backend invalidates them implicitly.
#[derive(Debug, Clone, Default)]
struct ScoreCache {
    entries: BTreeMap<(String, String), (u64, Score)>,
    hits: u64,
    misses: u64,
}

/// A snapshot of the memoized-score cache counters, exported for operational
/// dashboards and workload reports (e.g. `BENCH_cloud.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to recompute the score.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The QRIO Meta Server.
#[derive(Debug)]
pub struct MetaServer {
    backends: BTreeMap<String, Backend>,
    jobs: BTreeMap<String, JobRecord>,
    telemetry: BTreeMap<String, DeviceTelemetry>,
    registry: StrategyRegistry,
    fidelity_config: FidelityRankingConfig,
    /// Calibration revision per device: bumped on every (re-)registration.
    backend_revisions: BTreeMap<String, u64>,
    /// Score memoization for strategies whose
    /// [`RankingStrategy::is_cacheable`] is true — notably the topology
    /// strategy's VF2 embedding search, which `score_all` would otherwise
    /// re-run for every (job, device) pair on every scheduling cycle.
    score_cache: Mutex<ScoreCache>,
}

impl Default for MetaServer {
    fn default() -> Self {
        MetaServer::with_config(FidelityRankingConfig::default())
    }
}

impl Clone for MetaServer {
    fn clone(&self) -> Self {
        MetaServer {
            backends: self.backends.clone(),
            jobs: self.jobs.clone(),
            telemetry: self.telemetry.clone(),
            registry: self.registry.clone(),
            fidelity_config: self.fidelity_config,
            backend_revisions: self.backend_revisions.clone(),
            score_cache: Mutex::new(self.score_cache.lock().expect("cache poisoned").clone()),
        }
    }
}

impl MetaServer {
    /// An empty meta server with default scoring configuration and the four
    /// built-in strategies registered.
    pub fn new() -> Self {
        MetaServer::default()
    }

    /// An empty meta server whose built-in strategies use a custom
    /// fidelity-ranking configuration.
    pub fn with_config(fidelity_config: FidelityRankingConfig) -> Self {
        MetaServer {
            backends: BTreeMap::new(),
            jobs: BTreeMap::new(),
            telemetry: BTreeMap::new(),
            registry: builtin_registry(fidelity_config),
            fidelity_config,
            backend_revisions: BTreeMap::new(),
            score_cache: Mutex::new(ScoreCache::default()),
        }
    }

    /// The fidelity-ranking configuration the built-in strategies use.
    pub fn fidelity_config(&self) -> &FidelityRankingConfig {
        &self.fidelity_config
    }

    /// Rebuild a meta server from a previously exported [`MetaState`].
    ///
    /// Backends, calibration revisions, job records and telemetry are restored
    /// verbatim — in particular, revision counters are **not** re-bumped and
    /// job records are **not** re-validated (they were validated at original
    /// upload time). The registry starts from the built-ins; see [`MetaState`]
    /// for the custom-strategy caveat. The score cache starts cold.
    pub fn from_state(state: MetaState) -> Self {
        let mut server = MetaServer::with_config(state.fidelity_config);
        for (backend, revision) in state.backends {
            let name = backend.name().to_string();
            server.backend_revisions.insert(name.clone(), revision);
            server.backends.insert(name, backend);
        }
        for (job, strategy, circuit) in state.jobs {
            server.jobs.insert(job, JobRecord { strategy, circuit });
        }
        for (device, telemetry) in state.telemetry {
            server.telemetry.insert(device, telemetry);
        }
        server
    }

    /// Export the server's full persistable state for a durability snapshot.
    pub fn export_state(&self) -> MetaState {
        MetaState {
            fidelity_config: self.fidelity_config,
            backends: self
                .backends
                .iter()
                .map(|(name, backend)| {
                    let revision = self.backend_revisions.get(name).copied().unwrap_or(0);
                    (backend.clone(), revision)
                })
                .collect(),
            jobs: self
                .jobs
                .iter()
                .map(|(name, record)| {
                    (
                        name.clone(),
                        record.strategy.clone(),
                        record.circuit.clone(),
                    )
                })
                .collect(),
            telemetry: self
                .telemetry
                .iter()
                .map(|(device, telemetry)| (device.clone(), *telemetry))
                .collect(),
        }
    }

    // --- Strategy registry ---------------------------------------------------------------

    /// Register a user-defined ranking strategy under its own name.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::DuplicateStrategy`] when the name is taken.
    pub fn register_strategy(
        &mut self,
        strategy: Arc<dyn RankingStrategy>,
    ) -> Result<(), MetaError> {
        self.registry.register(strategy)
    }

    /// The strategy registry (built-ins plus user registrations).
    pub fn registry(&self) -> &StrategyRegistry {
        &self.registry
    }

    // --- Backend store -------------------------------------------------------------------

    /// Register a vendor backend (a copy of the node's backend file, §3.1).
    ///
    /// Re-registering a device bumps its calibration revision, which
    /// invalidates every memoized score computed against the old calibration.
    pub fn register_backend(&mut self, backend: Backend) {
        let name = backend.name().to_string();
        *self.backend_revisions.entry(name.clone()).or_insert(0) += 1;
        self.backends.insert(name, backend);
    }

    /// Register a backend from its `backend.spec` text.
    ///
    /// # Errors
    ///
    /// Returns an error when the spec does not parse.
    pub fn register_backend_spec(&mut self, spec_text: &str) -> Result<(), MetaError> {
        let backend = backend_spec::from_spec(spec_text)
            .map_err(|e| MetaError::InvalidMetadata(format!("bad backend spec: {e}")))?;
        self.register_backend(backend);
        Ok(())
    }

    /// Look up a registered backend.
    pub fn backend(&self, device: &str) -> Option<&Backend> {
        self.backends.get(device)
    }

    /// Names of all registered backends.
    pub fn device_names(&self) -> Vec<&str> {
        self.backends.keys().map(String::as_str).collect()
    }

    /// Number of registered backends.
    pub fn device_count(&self) -> usize {
        self.backends.len()
    }

    // --- Telemetry -----------------------------------------------------------------------

    /// Report the latest load telemetry for a device (queue depth and
    /// classical utilization from the cluster registry). Telemetry-aware
    /// strategies read these values when scoring.
    pub fn update_telemetry(&mut self, device: impl Into<String>, telemetry: DeviceTelemetry) {
        self.telemetry.insert(device.into(), telemetry);
    }

    /// The latest telemetry reported for a device, if any.
    pub fn telemetry_for(&self, device: &str) -> Option<&DeviceTelemetry> {
        self.telemetry.get(device)
    }

    /// Refresh telemetry for a whole fleet in one call — the shape the
    /// control plane's per-scheduling-cycle report arrives in (one entry per
    /// node from `Cluster::node_loads`).
    pub fn update_telemetry_bulk(
        &mut self,
        reports: impl IntoIterator<Item = (String, DeviceTelemetry)>,
    ) {
        for (device, telemetry) in reports {
            self.telemetry.insert(device, telemetry);
        }
    }

    // --- Job metadata (Table 1, generalized) ---------------------------------------------

    /// Upload job metadata: the strategy reference (name + typed params) plus
    /// the user's QASM circuit when the strategy needs one. The strategy is
    /// resolved in the registry and its `validate` hook runs immediately, so
    /// malformed uploads fail here rather than at scheduling time.
    ///
    /// # Errors
    ///
    /// Returns [`MetaError::UnknownStrategy`] for unregistered names, a parse
    /// error for bad QASM, or whatever the strategy's validation rejects.
    pub fn upload_job_metadata(
        &mut self,
        job_name: impl Into<String>,
        strategy: &StrategySpec,
        qasm_text: Option<&str>,
    ) -> Result<(), MetaError> {
        let circuit = match qasm_text {
            Some(text) => Some(qasm::parse_qasm(text)?),
            None => None,
        };
        self.upload_job_record(job_name, strategy.clone(), circuit)
    }

    /// Upload fidelity-workflow metadata: the target fidelity and the user's
    /// QASM circuit (sugar for [`Self::upload_job_metadata`] with the built-in
    /// `"fidelity"` strategy).
    ///
    /// # Errors
    ///
    /// Returns an error if the target is outside `[0, 1]` or the QASM fails to
    /// parse.
    pub fn upload_fidelity_metadata(
        &mut self,
        job_name: impl Into<String>,
        target: f64,
        qasm_text: &str,
    ) -> Result<(), MetaError> {
        self.upload_job_metadata(job_name, &StrategySpec::fidelity(target), Some(qasm_text))
    }

    /// Upload topology-workflow metadata: the user-drawn topology circuit
    /// (sugar for the built-in `"topology"` strategy with the circuit as the
    /// request).
    pub fn upload_topology_metadata(
        &mut self,
        job_name: impl Into<String>,
        topology_circuit: Circuit,
    ) {
        self.upload_job_record(
            job_name,
            StrategySpec::new(qrio_cluster::strategy_names::TOPOLOGY),
            Some(topology_circuit),
        )
        .expect("the built-in topology strategy accepts a circuit upload");
    }

    fn upload_job_record(
        &mut self,
        job_name: impl Into<String>,
        strategy: StrategySpec,
        circuit: Option<Circuit>,
    ) -> Result<(), MetaError> {
        let plugin = self.registry.resolve(&strategy.name)?;
        plugin.validate(&strategy.params, circuit.as_ref())?;
        let job_name = job_name.into();
        // A (re-)upload may change the strategy, parameters or circuit: drop
        // every memoized score for this job.
        self.score_cache
            .lock()
            .expect("cache poisoned")
            .entries
            .retain(|(job, _), _| *job != job_name);
        self.jobs.insert(job_name, JobRecord { strategy, circuit });
        Ok(())
    }

    /// The metadata stored for a job, if any.
    pub fn job_metadata(&self, job_name: &str) -> Option<&JobRecord> {
        self.jobs.get(job_name)
    }

    /// Remove the metadata stored for a job, returning it when it existed.
    ///
    /// This is the cleanup hook the orchestrator calls when a job reaches a
    /// terminal failure (unschedulable, execution error, cancelled): the
    /// upload is garbage-collected instead of accumulating forever. Every
    /// memoized score of the job is dropped with it.
    pub fn remove_job_metadata(&mut self, job_name: &str) -> Option<JobRecord> {
        let removed = self.jobs.remove(job_name)?;
        self.score_cache
            .lock()
            .expect("cache poisoned")
            .entries
            .retain(|(job, _), _| job != job_name);
        Some(removed)
    }

    /// Number of jobs with metadata currently stored.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Names of all jobs with stored metadata, in sorted order — the
    /// deterministic listing bulk operations and leak checks iterate.
    pub fn job_names(&self) -> Vec<&str> {
        self.jobs.keys().map(String::as_str).collect()
    }

    // --- Scoring -------------------------------------------------------------------------

    /// Score `job_name` against `device` (the request body of §3.4): resolve
    /// the job's strategy by name and dispatch to the plugin, handing it the
    /// job's parameters, circuit and the device's latest telemetry.
    ///
    /// For strategies whose [`RankingStrategy::is_cacheable`] is true the
    /// result is memoized per `(job, device, calibration revision)`:
    /// `score_all` then re-runs the expensive evaluation (VF2 embedding
    /// search, canary simulation) only when the job metadata was re-uploaded
    /// or the device calibration re-registered.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown jobs, devices or strategies, or when the
    /// underlying strategy fails.
    pub fn score(&self, job_name: &str, device: &str) -> Result<Score, MetaError> {
        let record = self
            .jobs
            .get(job_name)
            .ok_or_else(|| MetaError::UnknownJob(job_name.to_string()))?;
        let backend = self
            .backends
            .get(device)
            .ok_or_else(|| MetaError::UnknownDevice(device.to_string()))?;
        let strategy = self.registry.resolve(&record.strategy.name)?;
        let context = JobContext {
            job_name,
            params: &record.strategy.params,
            circuit: record.circuit.as_ref(),
            telemetry: self.telemetry.get(device),
        };
        if !strategy.is_cacheable() {
            return strategy.score(&context, backend);
        }
        let revision = self.backend_revisions.get(device).copied().unwrap_or(0);
        let key = (job_name.to_string(), device.to_string());
        {
            let mut cache = self.score_cache.lock().expect("cache poisoned");
            let cached = match cache.entries.get(&key) {
                Some((cached_revision, score)) if *cached_revision == revision => {
                    Some(score.clone())
                }
                _ => None,
            };
            if let Some(score) = cached {
                cache.hits += 1;
                return Ok(score);
            }
            cache.misses += 1;
        }
        // Compute outside the lock: cacheable strategies can be expensive.
        let score = strategy.score(&context, backend)?;
        self.score_cache
            .lock()
            .expect("cache poisoned")
            .entries
            .insert(key, (revision, score.clone()));
        Ok(score)
    }

    /// Cumulative `(hits, misses)` of the memoized-score cache, for tests and
    /// operational visibility.
    pub fn score_cache_stats(&self) -> (u64, u64) {
        let stats = self.cache_stats();
        (stats.hits, stats.misses)
    }

    /// A full snapshot of the memoized-score cache counters, including the
    /// resident entry count — what workload reports export as the strategy
    /// cache hit rate.
    pub fn cache_stats(&self) -> CacheStats {
        let cache = self.score_cache.lock().expect("cache poisoned");
        CacheStats {
            hits: cache.hits,
            misses: cache.misses,
            entries: cache.entries.len(),
        }
    }

    /// Score a job against every registered device, returning successful
    /// evaluations sorted best (lowest score) first; equal scores order by
    /// device name so the ranking is deterministic. Devices that cannot host
    /// the job are skipped.
    ///
    /// # Errors
    ///
    /// Returns an error if the job is unknown.
    pub fn score_all(&self, job_name: &str) -> Result<Vec<Score>, MetaError> {
        if !self.jobs.contains_key(job_name) {
            return Err(MetaError::UnknownJob(job_name.to_string()));
        }
        let mut responses: Vec<Score> = self
            .backends
            .keys()
            .filter_map(|device| self.score(job_name, device).ok())
            .collect();
        responses.sort_by(|a, b| {
            a.value
                .partial_cmp(&b.value)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.device.cmp(&b.device))
        });
        Ok(responses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{RankingStrategy, Score};
    use qrio_backend::{spec, topology};
    use qrio_circuit::library;

    fn server_with_devices() -> MetaServer {
        let mut server = MetaServer::with_config(FidelityRankingConfig {
            shots: 128,
            seed: 3,
            shortfall_weight: 100.0,
        });
        server.register_backend(Backend::uniform("clean", topology::line(8), 0.0, 0.0));
        server.register_backend(Backend::uniform("noisy", topology::line(8), 0.05, 0.3));
        server.register_backend(Backend::uniform(
            "tree",
            topology::binary_tree(8),
            0.01,
            0.05,
        ));
        server
    }

    #[test]
    fn backend_registration_and_lookup() {
        let mut server = server_with_devices();
        assert_eq!(server.device_count(), 3);
        assert!(server.backend("clean").is_some());
        assert!(server.backend("missing").is_none());
        // Spec-based registration (the vendor path).
        let text = spec::to_spec(&Backend::uniform(
            "from-spec",
            topology::ring(4),
            0.01,
            0.02,
        ));
        server.register_backend_spec(&text).unwrap();
        assert!(server.backend("from-spec").is_some());
        assert!(server.register_backend_spec("garbage").is_err());
    }

    #[test]
    fn fidelity_scoring_dispatch() {
        let mut server = server_with_devices();
        let bv = library::bernstein_vazirani(5, 0b10110).unwrap();
        server
            .upload_fidelity_metadata("bv-job", 0.95, &qrio_circuit::qasm::to_qasm(&bv))
            .unwrap();
        let record = server.job_metadata("bv-job").unwrap();
        assert_eq!(record.strategy_name(), "fidelity");
        assert_eq!(record.params().get_f64("target"), Some(0.95));
        assert!(record.circuit().is_some());
        let clean = server.score("bv-job", "clean").unwrap();
        let noisy = server.score("bv-job", "noisy").unwrap();
        assert!(clean.value < noisy.value);
        assert!(clean.detail("canary_fidelity").unwrap() > 0.9);
    }

    #[test]
    fn topology_scoring_dispatch() {
        // Fig. 9 style: devices differ only in topology, so the device whose
        // coupling map matches the requested tree must win.
        let mut server = MetaServer::new();
        server.register_backend(Backend::uniform(
            "eq-tree",
            topology::binary_tree(8),
            0.01,
            0.05,
        ));
        server.register_backend(Backend::uniform("eq-ring", topology::ring(8), 0.01, 0.05));
        server.register_backend(Backend::uniform("eq-line", topology::line(8), 0.01, 0.05));
        let request = library::topology_circuit(8, &topology::binary_tree(8).edges()).unwrap();
        server.upload_topology_metadata("topo-job", request);
        assert_eq!(
            server.job_metadata("topo-job").unwrap().strategy_name(),
            "topology"
        );
        let ranked = server.score_all("topo-job").unwrap();
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].device, "eq-tree");
        for window in ranked.windows(2) {
            assert!(window[0].value <= window[1].value);
        }
    }

    #[test]
    fn generic_upload_dispatches_by_registry_name() {
        let mut server = server_with_devices();
        let bv = library::bernstein_vazirani(4, 0b1011).unwrap();
        let qasm_text = qrio_circuit::qasm::to_qasm(&bv);
        // The weighted strategy through the fully-generic path.
        server
            .upload_job_metadata(
                "weighted-job",
                &StrategySpec::weighted(0.9, 1.0, 5.0, 1.0),
                Some(&qasm_text),
            )
            .unwrap();
        // The min-queue strategy needs neither params nor circuit.
        server
            .upload_job_metadata("queue-job", &StrategySpec::min_queue(), None)
            .unwrap();
        server.update_telemetry(
            "clean",
            DeviceTelemetry {
                queue_depth: 3,
                utilization: 0.5,
                health_penalty: 0.0,
            },
        );
        let weighted = server.score("weighted-job", "clean").unwrap();
        assert_eq!(weighted.detail("queue_depth"), Some(3.0));
        let queue = server.score("queue-job", "clean").unwrap();
        assert!((queue.value - 3.25).abs() < 1e-12);
        // An unregistered name is rejected at upload time.
        assert!(matches!(
            server.upload_job_metadata("ghost", &StrategySpec::new("no-such"), None),
            Err(MetaError::UnknownStrategy(_))
        ));
    }

    #[test]
    fn user_defined_strategies_register_and_score() {
        #[derive(Debug)]
        struct QubitCountStrategy;

        impl RankingStrategy for QubitCountStrategy {
            fn name(&self) -> &str {
                "qubit-count"
            }

            fn validate(
                &self,
                _params: &StrategyParams,
                _circuit: Option<&Circuit>,
            ) -> Result<(), MetaError> {
                Ok(())
            }

            fn score(&self, _job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
                Ok(Score::new(backend.name(), backend.num_qubits() as f64))
            }
        }

        let mut server = server_with_devices();
        server
            .register_strategy(Arc::new(QubitCountStrategy))
            .unwrap();
        assert!(server.registry().names().contains(&"qubit-count"));
        // Duplicate registration is rejected.
        assert!(server
            .register_strategy(Arc::new(QubitCountStrategy))
            .is_err());
        server
            .upload_job_metadata("count-job", &StrategySpec::new("qubit-count"), None)
            .unwrap();
        let ranked = server.score_all("count-job").unwrap();
        assert_eq!(ranked.len(), 3);
        // All three devices have 8 qubits: the tie breaks on device name.
        assert_eq!(ranked[0].device, "clean");
        assert_eq!(ranked[1].device, "noisy");
        assert_eq!(ranked[2].device, "tree");
    }

    #[test]
    fn topology_scores_are_memoized_until_invalidated() {
        let mut server = MetaServer::new();
        server.register_backend(Backend::uniform("ring", topology::ring(8), 0.01, 0.05));
        server.register_backend(Backend::uniform("line", topology::line(8), 0.01, 0.05));
        let request = library::topology_circuit(8, &topology::ring(8).edges()).unwrap();
        server.upload_topology_metadata("topo-cache", request.clone());

        let first = server.score_all("topo-cache").unwrap();
        assert_eq!(server.score_cache_stats(), (0, 2), "cold cache: all misses");
        let second = server.score_all("topo-cache").unwrap();
        assert_eq!(first, second, "cached scores must be identical");
        assert_eq!(server.score_cache_stats(), (2, 2), "warm cache: all hits");

        // Re-registering one device (new calibration revision) invalidates
        // only that device's entry.
        server.register_backend(Backend::uniform("line", topology::line(8), 0.02, 0.1));
        server.score_all("topo-cache").unwrap();
        assert_eq!(server.score_cache_stats(), (3, 3));

        // Re-uploading the job drops both of its entries.
        server.upload_topology_metadata("topo-cache", request);
        server.score_all("topo-cache").unwrap();
        assert_eq!(server.score_cache_stats(), (3, 5));
    }

    #[test]
    fn telemetry_dependent_strategies_are_never_cached() {
        let mut server = server_with_devices();
        server
            .upload_job_metadata("queue-job", &StrategySpec::min_queue(), None)
            .unwrap();
        server.update_telemetry(
            "clean",
            DeviceTelemetry {
                queue_depth: 1,
                utilization: 0.0,
                health_penalty: 0.0,
            },
        );
        let before = server.score("queue-job", "clean").unwrap();
        // Fresh telemetry must be visible on the very next score call.
        server.update_telemetry(
            "clean",
            DeviceTelemetry {
                queue_depth: 9,
                utilization: 0.0,
                health_penalty: 0.0,
            },
        );
        let after = server.score("queue-job", "clean").unwrap();
        assert!((before.value - 1.0).abs() < 1e-12);
        assert!((after.value - 9.0).abs() < 1e-12);
        assert_eq!(server.score_cache_stats(), (0, 0));
    }

    #[test]
    fn cloned_servers_carry_the_cache() {
        let mut server = MetaServer::new();
        server.register_backend(Backend::uniform("ring", topology::ring(6), 0.01, 0.05));
        let request = library::topology_circuit(6, &topology::ring(6).edges()).unwrap();
        server.upload_topology_metadata("topo", request);
        server.score("topo", "ring").unwrap();
        let clone = server.clone();
        clone.score("topo", "ring").unwrap();
        assert_eq!(clone.score_cache_stats(), (1, 1));
        // The original is unaffected by the clone's hit.
        assert_eq!(server.score_cache_stats(), (0, 1));
    }

    #[test]
    fn bulk_telemetry_refresh_and_cache_stats_snapshot() {
        let mut server = MetaServer::new();
        server.register_backend(Backend::uniform("ring", topology::ring(6), 0.01, 0.05));
        server.register_backend(Backend::uniform("line", topology::line(6), 0.01, 0.05));
        server.update_telemetry_bulk(vec![
            (
                "ring".to_string(),
                DeviceTelemetry {
                    queue_depth: 4,
                    utilization: 0.5,
                    health_penalty: 0.0,
                },
            ),
            (
                "line".to_string(),
                DeviceTelemetry {
                    queue_depth: 1,
                    utilization: 0.0,
                    health_penalty: 0.0,
                },
            ),
        ]);
        assert_eq!(server.telemetry_for("ring").unwrap().queue_depth, 4);
        assert_eq!(server.telemetry_for("line").unwrap().queue_depth, 1);

        let request = library::topology_circuit(6, &topology::ring(6).edges()).unwrap();
        server.upload_topology_metadata("topo", request);
        server.score_all("topo").unwrap();
        server.score_all("topo").unwrap();
        let stats = server.cache_stats();
        assert_eq!((stats.hits, stats.misses), server.score_cache_stats());
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn remove_job_metadata_drops_the_record_and_its_cached_scores() {
        let mut server = MetaServer::new();
        server.register_backend(Backend::uniform("ring", topology::ring(6), 0.01, 0.05));
        server.register_backend(Backend::uniform("line", topology::line(6), 0.01, 0.05));
        let request = library::topology_circuit(6, &topology::ring(6).edges()).unwrap();
        server.upload_topology_metadata("keep", request.clone());
        server.upload_topology_metadata("drop", request);
        assert_eq!(server.job_count(), 2);
        assert_eq!(server.job_names(), vec!["drop", "keep"]);
        server.score_all("keep").unwrap();
        server.score_all("drop").unwrap();
        assert_eq!(server.cache_stats().entries, 4);

        let removed = server.remove_job_metadata("drop").unwrap();
        assert_eq!(removed.strategy_name(), "topology");
        assert!(server.job_metadata("drop").is_none());
        assert_eq!(server.job_count(), 1);
        // Only the removed job's memoized scores are dropped.
        assert_eq!(server.cache_stats().entries, 2);
        server.score_all("keep").unwrap();
        assert_eq!(server.cache_stats().hits, 2, "'keep' entries survived");
        // Removing again (or a never-uploaded job) is None, not an error.
        assert!(server.remove_job_metadata("drop").is_none());
        assert!(server.remove_job_metadata("ghost").is_none());
        // Scoring the removed job now fails as unknown.
        assert!(matches!(
            server.score("drop", "ring"),
            Err(MetaError::UnknownJob(_))
        ));
    }

    #[test]
    fn export_and_restore_round_trip_exactly() {
        let mut server = server_with_devices();
        // Bump one device's revision and store mixed job records + telemetry.
        server.register_backend(Backend::uniform("noisy", topology::line(8), 0.06, 0.31));
        let bv = library::bernstein_vazirani(4, 0b1011).unwrap();
        server
            .upload_fidelity_metadata("bv", 0.9, &qrio_circuit::qasm::to_qasm(&bv))
            .unwrap();
        server
            .upload_job_metadata("queued", &StrategySpec::min_queue(), None)
            .unwrap();
        server.update_telemetry(
            "clean",
            DeviceTelemetry {
                queue_depth: 2,
                utilization: 0.25,
                health_penalty: 0.0,
            },
        );

        let state = server.export_state();
        let restored = MetaServer::from_state(state.clone());
        assert_eq!(restored.export_state(), state);
        // Revisions were restored verbatim (not re-bumped).
        assert_eq!(
            state
                .backends
                .iter()
                .find(|(b, _)| b.name() == "noisy")
                .unwrap()
                .1,
            2
        );
        // Scoring reproduces the original server's results from a cold cache.
        assert_eq!(restored.cache_stats().entries, 0);
        assert_eq!(
            restored.score("bv", "clean").unwrap(),
            server.score("bv", "clean").unwrap()
        );
        assert_eq!(
            restored.telemetry_for("clean"),
            server.telemetry_for("clean")
        );
    }

    #[test]
    fn unknown_job_and_device_errors() {
        let mut server = server_with_devices();
        assert!(matches!(
            server.score("nope", "clean"),
            Err(MetaError::UnknownJob(_))
        ));
        assert!(server.score_all("nope").is_err());
        let bv = library::bernstein_vazirani(3, 0b101).unwrap();
        server
            .upload_fidelity_metadata("j", 0.9, &qrio_circuit::qasm::to_qasm(&bv))
            .unwrap();
        assert!(matches!(
            server.score("j", "missing"),
            Err(MetaError::UnknownDevice(_))
        ));
    }

    #[test]
    fn invalid_metadata_is_rejected() {
        let mut server = server_with_devices();
        let bv = library::bernstein_vazirani(3, 0b1).unwrap();
        let text = qrio_circuit::qasm::to_qasm(&bv);
        assert!(server.upload_fidelity_metadata("bad", 1.5, &text).is_err());
        assert!(server
            .upload_fidelity_metadata("bad", 0.9, "not qasm at all $$")
            .is_err());
        // Fidelity without a circuit is rejected by the strategy's validation.
        assert!(server
            .upload_job_metadata("bad", &StrategySpec::fidelity(0.9), None)
            .is_err());
    }

    #[test]
    fn score_all_skips_undersized_devices() {
        let mut server = server_with_devices();
        server.register_backend(Backend::uniform("tiny", topology::line(2), 0.0, 0.0));
        let ghz = library::ghz(6).unwrap();
        server
            .upload_fidelity_metadata("ghz-job", 0.9, &qrio_circuit::qasm::to_qasm(&ghz))
            .unwrap();
        let ranked = server.score_all("ghz-job").unwrap();
        assert!(ranked.iter().all(|r| r.device != "tiny"));
        assert!(!ranked.is_empty());
    }
}
