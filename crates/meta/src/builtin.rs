//! The built-in ranking strategies shipped with the meta server.
//!
//! Two reproduce the paper's policies as plugins — [`FidelityStrategy`]
//! (§3.4.1) and [`TopologyStrategy`] (§3.4.2) — and two prove the interface is
//! genuinely open: [`WeightedStrategy`], a multi-objective policy blending
//! canary fidelity with live queue depth and classical utilization from the
//! cluster registry, and [`MinQueueStrategy`], a queue-time-only baseline.
//! All four resolve through the same [`StrategyRegistry`] and score through
//! the same `JobRequest` → scheduler → decision path.

use std::sync::Arc;

use qrio_backend::Backend;
use qrio_circuit::{library, Circuit};
use qrio_cluster::{strategy_names, StrategyParams};

use crate::error::MetaError;
use crate::fidelity_ranking::{evaluate_fidelity, FidelityRankingConfig};
use crate::strategy::{JobContext, RankingStrategy, Score, StrategyRegistry};
use crate::topology_ranking::evaluate_topology;

/// The registry every [`crate::MetaServer`] starts with: the four built-in
/// strategies, configured with `config` where applicable.
pub fn builtin_registry(config: FidelityRankingConfig) -> StrategyRegistry {
    let mut registry = StrategyRegistry::new();
    for strategy in [
        Arc::new(FidelityStrategy::new(config)) as Arc<dyn RankingStrategy>,
        Arc::new(TopologyStrategy),
        Arc::new(WeightedStrategy::new(config)),
        Arc::new(MinQueueStrategy),
    ] {
        registry
            .register(strategy)
            .expect("built-in names are unique");
    }
    registry
}

/// Whether one of the *built-in* strategy names scores the user's circuit
/// itself and therefore needs a QASM payload in the job. Front ends use this
/// for early structural checks before a registry is reachable; the
/// authoritative enforcement is each strategy's `validate` hook, which also
/// covers user-defined strategies.
pub fn requires_circuit(name: &str) -> bool {
    matches!(name, strategy_names::FIDELITY | strategy_names::WEIGHTED)
}

/// Read and range-check the `target` parameter shared by the fidelity-based
/// strategies.
fn target_param(params: &StrategyParams, default: f64) -> Result<f64, MetaError> {
    let target = params
        .get_f64(strategy_names::PARAM_TARGET)
        .unwrap_or(default);
    if !(0.0..=1.0).contains(&target) {
        return Err(MetaError::InvalidMetadata(format!(
            "fidelity {target} outside [0, 1]"
        )));
    }
    Ok(target)
}

/// Require the job to carry a circuit (fidelity-style strategies score the
/// user's actual workload).
fn require_circuit<'a>(
    strategy: &str,
    circuit: Option<&'a Circuit>,
) -> Result<&'a Circuit, MetaError> {
    circuit.ok_or_else(|| {
        MetaError::InvalidMetadata(format!("strategy '{strategy}' requires a circuit upload"))
    })
}

/// The Clifford-canary fidelity ranking of §3.4.1 as a plugin.
///
/// Parameters: `target` — the requested fidelity in `[0, 1]` (defaults to
/// 1.0). Requires the job circuit.
#[derive(Debug, Clone, Copy)]
pub struct FidelityStrategy {
    config: FidelityRankingConfig,
}

impl FidelityStrategy {
    /// A fidelity strategy with the given canary-evaluation configuration.
    pub fn new(config: FidelityRankingConfig) -> Self {
        FidelityStrategy { config }
    }

    /// The canary-evaluation configuration in use.
    pub fn config(&self) -> &FidelityRankingConfig {
        &self.config
    }
}

impl RankingStrategy for FidelityStrategy {
    fn name(&self) -> &str {
        strategy_names::FIDELITY
    }

    fn validate(
        &self,
        params: &StrategyParams,
        circuit: Option<&Circuit>,
    ) -> Result<(), MetaError> {
        target_param(params, 1.0)?;
        require_circuit(self.name(), circuit)?;
        Ok(())
    }

    fn score(&self, job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
        let circuit = require_circuit(self.name(), job.circuit)?;
        let target = target_param(job.params, 1.0)?;
        let evaluation = evaluate_fidelity(circuit, target, backend, &self.config)?;
        Ok(Score::new(backend.name(), evaluation.score)
            .with_detail("canary_fidelity", evaluation.canary_fidelity)
            .with_detail("swaps_inserted", evaluation.swaps_inserted as f64))
    }

    fn known_params(&self) -> Option<&'static [&'static str]> {
        Some(&[strategy_names::PARAM_TARGET])
    }

    fn is_cacheable(&self) -> bool {
        // Canary evaluation is seeded per device name and reads no telemetry.
        true
    }
}

/// The topology-similarity ranking of §3.4.2 as a plugin.
///
/// Parameters: `edges` — the requested interaction edges; `qubits` — the
/// number of qubits the request spans (defaults to one past the highest edge
/// endpoint). When no `edges` parameter is present the strategy falls back to
/// the uploaded circuit, treating it as a topology circuit (the visualizer's
/// canvas upload path).
#[derive(Debug, Clone, Copy, Default)]
pub struct TopologyStrategy;

impl TopologyStrategy {
    /// Build the topology circuit a job context describes.
    fn request_circuit(&self, job: &JobContext<'_>) -> Result<Circuit, MetaError> {
        match job.params.get_edges(strategy_names::PARAM_EDGES) {
            Some(edges) => {
                let implied = edges.iter().map(|&(a, b)| a.max(b) + 1).max().unwrap_or(1);
                let qubits = job
                    .params
                    .get_u64(strategy_names::PARAM_QUBITS)
                    .map(|q| q as usize)
                    .unwrap_or(implied);
                Ok(library::topology_circuit(qubits, edges)?)
            }
            None => Ok(require_circuit(self.name(), job.circuit)?.clone()),
        }
    }
}

impl RankingStrategy for TopologyStrategy {
    fn name(&self) -> &str {
        strategy_names::TOPOLOGY
    }

    fn validate(
        &self,
        params: &StrategyParams,
        circuit: Option<&Circuit>,
    ) -> Result<(), MetaError> {
        match params.get_edges(strategy_names::PARAM_EDGES) {
            Some(edges) => {
                if edges.is_empty() {
                    return Err(MetaError::InvalidMetadata(
                        "topology request has no edges".into(),
                    ));
                }
                // Building the circuit validates edge endpoints/self-loops.
                let implied = edges.iter().map(|&(a, b)| a.max(b) + 1).max().unwrap_or(1);
                let qubits = params
                    .get_u64(strategy_names::PARAM_QUBITS)
                    .map(|q| q as usize)
                    .unwrap_or(implied);
                library::topology_circuit(qubits, edges)?;
                Ok(())
            }
            None => {
                require_circuit(self.name(), circuit)?;
                Ok(())
            }
        }
    }

    fn score(&self, job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
        let request = self.request_circuit(job)?;
        let evaluation = evaluate_topology(&request, backend)?;
        Ok(Score::new(backend.name(), evaluation.score).with_detail(
            "exact_embedding",
            if evaluation.exact_embedding { 1.0 } else { 0.0 },
        ))
    }

    fn known_params(&self) -> Option<&'static [&'static str]> {
        Some(&[strategy_names::PARAM_EDGES, strategy_names::PARAM_QUBITS])
    }

    fn is_cacheable(&self) -> bool {
        // The VF2 embedding search is deterministic and reads no telemetry.
        true
    }
}

/// A weighted multi-objective strategy: canary-fidelity score blended with the
/// device's live queue depth and classical utilization (reported by the
/// control plane as [`crate::DeviceTelemetry`]).
///
/// `score = fidelity_weight · fidelity_score + queue_weight · queue_depth
/// + utilization_weight · 100 · (utilization + health_penalty)`
///
/// Parameters (all optional): `target` (default 1.0), `fidelity_weight`
/// (default 1.0), `queue_weight` (default 5.0), `utilization_weight`
/// (default 1.0). Requires the job circuit. Devices with no telemetry report
/// are treated as idle. The health penalty (circuit-breaker flakiness,
/// `0` for a healthy device) rides on the utilization weight, so
/// recently-flaky devices rank behind equally-loaded healthy ones without
/// changing scores in deployments that never report a penalty.
#[derive(Debug, Clone, Copy)]
pub struct WeightedStrategy {
    config: FidelityRankingConfig,
}

impl WeightedStrategy {
    /// A weighted strategy with the given canary-evaluation configuration.
    pub fn new(config: FidelityRankingConfig) -> Self {
        WeightedStrategy { config }
    }
}

/// Read a weight parameter, rejecting negatives (a negative weight would
/// invert "lower is better" for that component).
fn weight_param(params: &StrategyParams, key: &str, default: f64) -> Result<f64, MetaError> {
    let weight = params.get_f64(key).unwrap_or(default);
    if weight < 0.0 || !weight.is_finite() {
        return Err(MetaError::InvalidMetadata(format!(
            "weight '{key}' must be finite and non-negative, got {weight}"
        )));
    }
    Ok(weight)
}

impl RankingStrategy for WeightedStrategy {
    fn name(&self) -> &str {
        strategy_names::WEIGHTED
    }

    fn validate(
        &self,
        params: &StrategyParams,
        circuit: Option<&Circuit>,
    ) -> Result<(), MetaError> {
        target_param(params, 1.0)?;
        weight_param(params, strategy_names::PARAM_FIDELITY_WEIGHT, 1.0)?;
        weight_param(params, strategy_names::PARAM_QUEUE_WEIGHT, 5.0)?;
        weight_param(params, strategy_names::PARAM_UTILIZATION_WEIGHT, 1.0)?;
        require_circuit(self.name(), circuit)?;
        Ok(())
    }

    fn score(&self, job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
        let circuit = require_circuit(self.name(), job.circuit)?;
        let target = target_param(job.params, 1.0)?;
        let w_fidelity = weight_param(job.params, strategy_names::PARAM_FIDELITY_WEIGHT, 1.0)?;
        let w_queue = weight_param(job.params, strategy_names::PARAM_QUEUE_WEIGHT, 5.0)?;
        let w_util = weight_param(job.params, strategy_names::PARAM_UTILIZATION_WEIGHT, 1.0)?;

        let evaluation = evaluate_fidelity(circuit, target, backend, &self.config)?;
        let telemetry = job.telemetry.copied().unwrap_or_default();
        let queue_depth = telemetry.queue_depth as f64;
        let utilization = telemetry.utilization.clamp(0.0, 1.0);
        let health_penalty = telemetry.health_penalty.clamp(0.0, 1.0);
        let value = w_fidelity * evaluation.score
            + w_queue * queue_depth
            + w_util * 100.0 * (utilization + health_penalty);
        Ok(Score::new(backend.name(), value)
            .with_detail("fidelity_score", evaluation.score)
            .with_detail("canary_fidelity", evaluation.canary_fidelity)
            .with_detail("queue_depth", queue_depth)
            .with_detail("utilization", utilization)
            .with_detail("health_penalty", health_penalty))
    }

    fn known_params(&self) -> Option<&'static [&'static str]> {
        Some(&[
            strategy_names::PARAM_TARGET,
            strategy_names::PARAM_FIDELITY_WEIGHT,
            strategy_names::PARAM_QUEUE_WEIGHT,
            strategy_names::PARAM_UTILIZATION_WEIGHT,
        ])
    }
}

/// The min-queue-time baseline: score is the device's queue depth plus half
/// its utilization as a fractional tie-break (scaled strictly below one whole
/// queue step, so utilization can never outrank an actually-shorter queue),
/// ignoring calibration entirely. Needs no parameters and no circuit; devices
/// with no telemetry report are treated as idle.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinQueueStrategy;

impl RankingStrategy for MinQueueStrategy {
    fn name(&self) -> &str {
        strategy_names::MIN_QUEUE
    }

    fn validate(
        &self,
        _params: &StrategyParams,
        _circuit: Option<&Circuit>,
    ) -> Result<(), MetaError> {
        Ok(())
    }

    fn score(&self, job: &JobContext<'_>, backend: &Backend) -> Result<Score, MetaError> {
        let telemetry = job.telemetry.copied().unwrap_or_default();
        let queue_depth = telemetry.queue_depth as f64;
        let utilization = telemetry.utilization.clamp(0.0, 1.0);
        // The utilization component stays strictly below one queue step, so a
        // fully-utilized empty queue still beats a one-deep queue.
        Ok(Score::new(backend.name(), queue_depth + 0.5 * utilization)
            .with_detail("queue_depth", queue_depth)
            .with_detail("utilization", utilization))
    }

    fn known_params(&self) -> Option<&'static [&'static str]> {
        Some(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::DeviceTelemetry;
    use qrio_backend::topology;
    use qrio_cluster::StrategySpec;

    fn config() -> FidelityRankingConfig {
        FidelityRankingConfig {
            shots: 128,
            seed: 7,
            shortfall_weight: 100.0,
        }
    }

    fn context<'a>(
        params: &'a StrategyParams,
        circuit: Option<&'a Circuit>,
        telemetry: Option<&'a DeviceTelemetry>,
    ) -> JobContext<'a> {
        JobContext {
            job_name: "test-job",
            params,
            circuit,
            telemetry,
        }
    }

    #[test]
    fn builtin_registry_holds_all_four_strategies() {
        let registry = builtin_registry(config());
        assert_eq!(
            registry.names(),
            vec!["fidelity", "min_queue", "topology", "weighted"]
        );
    }

    #[test]
    fn fidelity_strategy_orders_devices_by_noise() {
        let strategy = FidelityStrategy::new(config());
        let circuit = library::bernstein_vazirani(5, 0b10101).unwrap();
        let spec = StrategySpec::fidelity(0.9);
        strategy.validate(&spec.params, Some(&circuit)).unwrap();
        let clean = Backend::uniform("clean", topology::line(8), 0.0, 0.0);
        let noisy = Backend::uniform("noisy", topology::line(8), 0.05, 0.3);
        let clean_score = strategy
            .score(&context(&spec.params, Some(&circuit), None), &clean)
            .unwrap();
        let noisy_score = strategy
            .score(&context(&spec.params, Some(&circuit), None), &noisy)
            .unwrap();
        assert!(clean_score.value < noisy_score.value);
        assert!(clean_score.detail("canary_fidelity").unwrap() > 0.9);
        // Missing circuit and bad target are rejected at validation.
        assert!(strategy.validate(&spec.params, None).is_err());
        let bad = StrategySpec::fidelity(1.5);
        assert!(strategy.validate(&bad.params, Some(&circuit)).is_err());
    }

    #[test]
    fn topology_strategy_prefers_exact_embeddings() {
        let strategy = TopologyStrategy;
        let edges = topology::ring(6).edges();
        let spec = StrategySpec::topology(&edges, 6);
        strategy.validate(&spec.params, None).unwrap();
        let ring = Backend::uniform("ring", topology::ring(6), 0.01, 0.05);
        let line = Backend::uniform("line", topology::line(6), 0.01, 0.05);
        let ring_score = strategy
            .score(&context(&spec.params, None, None), &ring)
            .unwrap();
        let line_score = strategy
            .score(&context(&spec.params, None, None), &line)
            .unwrap();
        assert!(ring_score.value < line_score.value);
        assert_eq!(ring_score.detail("exact_embedding"), Some(1.0));
        assert_eq!(line_score.detail("exact_embedding"), Some(0.0));
    }

    #[test]
    fn topology_strategy_validates_edges_and_falls_back_to_circuit() {
        let strategy = TopologyStrategy;
        // Self-loop edges are rejected at upload time.
        let bad = StrategySpec::topology(&[(1, 1)], 3);
        assert!(strategy.validate(&bad.params, None).is_err());
        let empty = StrategySpec::topology(&[], 3);
        assert!(strategy.validate(&empty.params, None).is_err());
        // No edges param and no circuit -> invalid.
        let none = StrategySpec::new("topology");
        assert!(strategy.validate(&none.params, None).is_err());
        // Circuit fallback: a topology circuit upload works without params.
        let topo = library::topology_circuit(3, &[(0, 1), (1, 2)]).unwrap();
        strategy.validate(&none.params, Some(&topo)).unwrap();
        let dev = Backend::uniform("dev", topology::line(4), 0.01, 0.05);
        let score = strategy
            .score(&context(&none.params, Some(&topo), None), &dev)
            .unwrap();
        assert!(score.value >= 0.0);
    }

    #[test]
    fn weighted_strategy_penalises_busy_devices() {
        let strategy = WeightedStrategy::new(config());
        let circuit = library::bernstein_vazirani(4, 0b1011).unwrap();
        let spec = StrategySpec::weighted(0.9, 1.0, 10.0, 1.0);
        strategy.validate(&spec.params, Some(&circuit)).unwrap();
        let dev = Backend::uniform("dev", topology::line(6), 0.005, 0.02);
        let idle = DeviceTelemetry {
            queue_depth: 0,
            utilization: 0.0,
            health_penalty: 0.0,
        };
        let busy = DeviceTelemetry {
            queue_depth: 4,
            utilization: 0.75,
            health_penalty: 0.0,
        };
        let idle_score = strategy
            .score(&context(&spec.params, Some(&circuit), Some(&idle)), &dev)
            .unwrap();
        let busy_score = strategy
            .score(&context(&spec.params, Some(&circuit), Some(&busy)), &dev)
            .unwrap();
        assert!(idle_score.value < busy_score.value);
        // The fidelity component is identical; the gap is queue + utilization.
        let expected_gap = 10.0 * 4.0 + 1.0 * 100.0 * 0.75;
        assert!((busy_score.value - idle_score.value - expected_gap).abs() < 1e-9);
        // Missing telemetry is treated as idle.
        let no_telemetry = strategy
            .score(&context(&spec.params, Some(&circuit), None), &dev)
            .unwrap();
        assert!((no_telemetry.value - idle_score.value).abs() < 1e-9);
        // Negative weights are rejected.
        let bad = StrategySpec::weighted(0.9, -1.0, 0.0, 0.0);
        assert!(strategy.validate(&bad.params, Some(&circuit)).is_err());
    }

    #[test]
    fn min_queue_strategy_ranks_by_queue_depth_alone() {
        let strategy = MinQueueStrategy;
        let params = StrategyParams::new();
        strategy.validate(&params, None).unwrap();
        let dev = Backend::uniform("dev", topology::line(4), 0.5, 0.9);
        let shallow = DeviceTelemetry {
            queue_depth: 1,
            utilization: 0.2,
            health_penalty: 0.0,
        };
        let deep = DeviceTelemetry {
            queue_depth: 6,
            utilization: 0.1,
            health_penalty: 0.0,
        };
        let s = strategy
            .score(&context(&params, None, Some(&shallow)), &dev)
            .unwrap();
        let d = strategy
            .score(&context(&params, None, Some(&deep)), &dev)
            .unwrap();
        assert!(s.value < d.value);
        assert_eq!(d.detail("queue_depth"), Some(6.0));
        // Utilization is a strict tie-break: a fully-utilized node with an
        // empty queue still beats a node with one queued job.
        let full_util = DeviceTelemetry {
            queue_depth: 0,
            utilization: 1.0,
            health_penalty: 0.0,
        };
        let one_deep = DeviceTelemetry {
            queue_depth: 1,
            utilization: 0.0,
            health_penalty: 0.0,
        };
        let f = strategy
            .score(&context(&params, None, Some(&full_util)), &dev)
            .unwrap();
        let o = strategy
            .score(&context(&params, None, Some(&one_deep)), &dev)
            .unwrap();
        assert!(f.value < o.value);
        // No telemetry -> zero score (idle).
        let idle = strategy.score(&context(&params, None, None), &dev).unwrap();
        assert_eq!(idle.value, 0.0);
    }
}
