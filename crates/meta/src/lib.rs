//! # qrio-meta
//!
//! The QRIO Meta Server (reproduction of *Empowering the Quantum Cloud User
//! with QRIO*, IISWC 2024, §3.4).
//!
//! The meta server is the scoring brain of QRIO: it stores a copy of every
//! vendor backend, keeps the per-job metadata the visualizer uploads
//! (Table 1), and answers the scheduler's score requests by dispatching to a
//! **ranking-strategy plugin** resolved by name in its [`StrategyRegistry`].
//! Strategy is an open extension point — implement [`RankingStrategy`] and
//! call [`MetaServer::register_strategy`] — rather than a closed enum. Four
//! strategies ship built in:
//!
//! * [`FidelityStrategy`] (`"fidelity"`) — Clifford-canary evaluation against
//!   a user-supplied fidelity target (Gottesman–Knill makes the noise-free
//!   reference tractable at any circuit size), from [`fidelity_ranking`],
//! * [`TopologyStrategy`] (`"topology"`) — Mapomatic-style scoring of the
//!   requested interaction topology against each device's coupling map, from
//!   [`topology_ranking`],
//! * [`WeightedStrategy`] (`"weighted"`) — a multi-objective blend of the
//!   canary-fidelity score with live queue depth and classical utilization
//!   reported by the control plane as [`DeviceTelemetry`],
//! * [`MinQueueStrategy`] (`"min_queue"`) — a queue-time-only baseline.
//!
//! Scores are "lower is better" throughout, matching the paper's convention;
//! equal scores order by device name so rankings are deterministic.
//!
//! # Examples
//!
//! ```
//! use qrio_backend::{topology, Backend};
//! use qrio_circuit::{library, qasm};
//! use qrio_meta::MetaServer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut meta = MetaServer::new();
//! meta.register_backend(Backend::uniform("clean", topology::line(6), 0.0, 0.0));
//! meta.register_backend(Backend::uniform("noisy", topology::line(6), 0.05, 0.3));
//!
//! let bv = library::bernstein_vazirani(5, 0b10101)?;
//! meta.upload_fidelity_metadata("bv-job", 0.95, &qasm::to_qasm(&bv))?;
//! let ranked = meta.score_all("bv-job")?;
//! assert_eq!(ranked[0].device, "clean");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
mod error;
pub mod fidelity_ranking;
mod server;
mod strategy;
pub mod topology_ranking;

pub use builtin::{
    builtin_registry, requires_circuit, FidelityStrategy, MinQueueStrategy, TopologyStrategy,
    WeightedStrategy,
};
pub use error::MetaError;
pub use fidelity_ranking::{
    canary_fidelity_on_backend, evaluate_fidelity, FidelityEvaluation, FidelityRankingConfig,
};
pub use server::{CacheStats, JobRecord, MetaServer, MetaState};
pub use strategy::{DeviceTelemetry, JobContext, RankingStrategy, Score, StrategyRegistry};
pub use topology_ranking::{evaluate_topology, topology_circuit, TopologyEvaluation};
