//! Error types for the QRIO Meta Server.

use std::error::Error;
use std::fmt;

use qrio_circuit::CircuitError;
use qrio_layout::LayoutError;
use qrio_sim::SimulatorError;
use qrio_transpiler::TranspilerError;

/// Errors produced by the meta server while storing metadata or scoring jobs.
#[derive(Debug, Clone, PartialEq)]
pub enum MetaError {
    /// No backend registered under that device name.
    UnknownDevice(String),
    /// No metadata uploaded for that job name.
    UnknownJob(String),
    /// No ranking strategy registered under that name.
    UnknownStrategy(String),
    /// A ranking strategy with that name is already registered.
    DuplicateStrategy(String),
    /// The uploaded metadata is invalid (e.g. fidelity outside [0, 1]).
    InvalidMetadata(String),
    /// The user's QASM payload failed to parse.
    Circuit(CircuitError),
    /// Transpilation onto the candidate device failed.
    Transpiler(TranspilerError),
    /// Simulation of the canary failed.
    Simulator(SimulatorError),
    /// Layout search failed unexpectedly.
    Layout(LayoutError),
}

impl fmt::Display for MetaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaError::UnknownDevice(name) => write!(f, "unknown device '{name}'"),
            MetaError::UnknownJob(name) => write!(f, "no metadata uploaded for job '{name}'"),
            MetaError::UnknownStrategy(name) => {
                write!(f, "no ranking strategy registered under '{name}'")
            }
            MetaError::DuplicateStrategy(name) => {
                write!(f, "a ranking strategy named '{name}' is already registered")
            }
            MetaError::InvalidMetadata(msg) => write!(f, "invalid job metadata: {msg}"),
            MetaError::Circuit(err) => write!(f, "circuit error: {err}"),
            MetaError::Transpiler(err) => write!(f, "transpiler error: {err}"),
            MetaError::Simulator(err) => write!(f, "simulator error: {err}"),
            MetaError::Layout(err) => write!(f, "layout error: {err}"),
        }
    }
}

impl Error for MetaError {}

impl From<CircuitError> for MetaError {
    fn from(err: CircuitError) -> Self {
        MetaError::Circuit(err)
    }
}

impl From<TranspilerError> for MetaError {
    fn from(err: TranspilerError) -> Self {
        MetaError::Transpiler(err)
    }
}

impl From<SimulatorError> for MetaError {
    fn from(err: SimulatorError) -> Self {
        MetaError::Simulator(err)
    }
}

impl From<LayoutError> for MetaError {
    fn from(err: LayoutError) -> Self {
        MetaError::Layout(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MetaError = CircuitError::DuplicateQubit { qubit: 2 }.into();
        assert!(e.to_string().contains("circuit error"));
        assert!(MetaError::UnknownDevice("d".into())
            .to_string()
            .contains('d'));
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<MetaError>();
    }
}
