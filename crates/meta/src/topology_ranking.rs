//! The Topology Ranking strategy (paper §3.4.2).
//!
//! The user draws the interaction topology they want (one edge per desired
//! qubit–qubit interaction); the visualizer converts it into a *topology
//! circuit* with one CNOT per edge. The meta server then scores each candidate
//! device with a Mapomatic-style search: find the device subgraph that best
//! hosts the requested topology and report its error-aware cost. Devices that
//! cannot host the topology at all fall back to a routed placement, whose
//! extra SWAP gates naturally inflate the score.

use qrio_backend::Backend;
use qrio_circuit::{library, Circuit};
use qrio_layout::{evaluate_device, score_layout_percent, LayoutError};
use qrio_transpiler::{deflate, transpile};

use crate::error::MetaError;

/// The result of evaluating one device for a topology-ranked job.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyEvaluation {
    /// Device that was evaluated.
    pub device: String,
    /// Score returned to the scheduler (lower is better).
    pub score: f64,
    /// Whether the requested topology embeds exactly in the device.
    pub exact_embedding: bool,
    /// The best layout found (physical qubit per requested qubit) when an
    /// exact embedding exists.
    pub layout: Option<Vec<usize>>,
}

/// Build the topology circuit for a user-drawn edge list (§3.2): a circuit of
/// `num_qubits` qubits with one CNOT per requested interaction.
///
/// # Errors
///
/// Returns an error if an edge is out of range or a self-loop.
pub fn topology_circuit(num_qubits: usize, edges: &[(usize, usize)]) -> Result<Circuit, MetaError> {
    Ok(library::topology_circuit(num_qubits, edges)?)
}

/// Score `backend` for a topology request expressed as a topology circuit.
///
/// When the requested interaction graph embeds in the device, the score is the
/// Mapomatic cost (×100) of the best embedding. Otherwise the topology circuit
/// is routed onto the device and the routed placement is scored — the inserted
/// SWAPs raise the error estimate, so non-matching devices rank strictly worse
/// than matching ones with comparable calibration.
///
/// # Errors
///
/// Returns an error if the device is smaller than the request or scoring
/// fails.
pub fn evaluate_topology(
    topology_circuit: &Circuit,
    backend: &Backend,
) -> Result<TopologyEvaluation, MetaError> {
    match evaluate_device(topology_circuit, backend) {
        Ok(evaluation) => Ok(TopologyEvaluation {
            device: backend.name().to_string(),
            score: evaluation.best.score * 100.0,
            exact_embedding: true,
            layout: Some(evaluation.best.layout),
        }),
        Err(LayoutError::NoEmbedding { .. }) => {
            // Fall back to routing: the added SWAPs penalise the mismatch.
            let transpiled = transpile(topology_circuit, backend)?;
            let deflated = deflate(&transpiled.circuit, backend)?;
            let identity: Vec<usize> = (0..deflated.circuit.num_qubits()).collect();
            let score = score_layout_percent(&deflated.circuit, &deflated.backend, &identity)?;
            Ok(TopologyEvaluation {
                device: backend.name().to_string(),
                score,
                exact_embedding: false,
                layout: None,
            })
        }
        Err(other) => Err(other.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::{topology, DefaultTopology};

    #[test]
    fn matching_topology_beats_non_matching_with_equal_errors() {
        // Fig. 9 scenario: tree-shaped request, tree/ring/line 10-qubit devices
        // with identical calibration — the tree device must win.
        let tree_edges = topology::binary_tree(10).edges();
        let request = topology_circuit(10, &tree_edges).unwrap();
        let devices = [
            Backend::uniform("device-ring", topology::ring(10), 0.01, 0.05),
            Backend::uniform("device-tree", topology::binary_tree(10), 0.01, 0.05),
            Backend::uniform("device-line", topology::line(10), 0.01, 0.05),
        ];
        let mut scored: Vec<(String, f64, bool)> = devices
            .iter()
            .map(|b| {
                let e = evaluate_topology(&request, b).unwrap();
                (e.device, e.score, e.exact_embedding)
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert_eq!(scored[0].0, "device-tree");
        assert!(scored[0].2, "tree device should embed exactly");
        assert!(!scored[1].2 && !scored[2].2);
    }

    #[test]
    fn fully_connected_requests_only_fit_dense_devices() {
        let request = topology_circuit(4, &topology::fully_connected(4).edges()).unwrap();
        let dense = Backend::uniform("dense", topology::fully_connected(6), 0.01, 0.05);
        let sparse = Backend::uniform("sparse", topology::line(6), 0.01, 0.05);
        let dense_eval = evaluate_topology(&request, &dense).unwrap();
        let sparse_eval = evaluate_topology(&request, &sparse).unwrap();
        assert!(dense_eval.exact_embedding);
        assert!(!sparse_eval.exact_embedding);
        assert!(dense_eval.score < sparse_eval.score);
    }

    #[test]
    fn default_topologies_score_on_paper_style_devices() {
        let device = Backend::uniform("grid-device", topology::grid(3, 4), 0.02, 0.08);
        for default in DefaultTopology::ALL {
            let request = topology_circuit(default.num_qubits(), &default.edges()).unwrap();
            let eval = evaluate_topology(&request, &device).unwrap();
            assert!(eval.score >= 0.0);
            assert_eq!(eval.device, "grid-device");
        }
    }

    #[test]
    fn lower_error_device_wins_when_both_embed() {
        let request = topology_circuit(3, &[(0, 1), (1, 2)]).unwrap();
        let quiet = Backend::uniform("quiet", topology::line(5), 0.001, 0.01);
        let noisy = Backend::uniform("noisy", topology::line(5), 0.02, 0.3);
        let q = evaluate_topology(&request, &quiet).unwrap();
        let n = evaluate_topology(&request, &noisy).unwrap();
        assert!(q.score < n.score);
        assert!(q.layout.is_some());
    }

    #[test]
    fn request_larger_than_device_is_an_error() {
        let request = topology_circuit(8, &[(0, 1)]).unwrap();
        let device = Backend::uniform("tiny", topology::line(3), 0.0, 0.0);
        assert!(evaluate_topology(&request, &device).is_err());
    }

    #[test]
    fn invalid_edges_are_rejected() {
        assert!(topology_circuit(3, &[(0, 5)]).is_err());
        assert!(topology_circuit(3, &[(1, 1)]).is_err());
    }
}
