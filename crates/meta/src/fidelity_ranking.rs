//! The Fidelity Ranking strategy (paper §3.4.1).
//!
//! The user supplies a target fidelity for their circuit. Because the
//! noise-free output of a general circuit cannot be computed classically, the
//! meta server builds a *Clifford canary* — the user's circuit with every
//! non-Clifford gate snapped to its nearest Clifford — which (a) is
//! classically simulable at any size thanks to Gottesman–Knill and (b)
//! retains the two-qubit gate structure that dominates NISQ error. The canary
//! is executed both noise-free and under the candidate device's noise model;
//! the Hellinger fidelity between the two distributions estimates how well
//! the device would serve the original circuit, and the score returned to the
//! scheduler penalises the shortfall against the user's target.

use qrio_backend::Backend;
use qrio_circuit::Circuit;
use qrio_sim::{executor, NoiseModel};
use qrio_transpiler::{deflate, transpile};

use crate::error::MetaError;

/// Tunable parameters of the canary evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityRankingConfig {
    /// Shots per (circuit, device) evaluation.
    pub shots: u64,
    /// RNG seed (device-independent part; the device name is hashed in).
    pub seed: u64,
    /// Extra penalty weight applied to the shortfall below the target.
    pub shortfall_weight: f64,
}

impl Default for FidelityRankingConfig {
    fn default() -> Self {
        FidelityRankingConfig {
            shots: 256,
            seed: 0x0C0FFEE,
            shortfall_weight: 100.0,
        }
    }
}

/// The result of evaluating one device for a fidelity-ranked job.
#[derive(Debug, Clone, PartialEq)]
pub struct FidelityEvaluation {
    /// Device that was evaluated.
    pub device: String,
    /// Estimated (canary) fidelity on the device, in `[0, 1]`.
    pub canary_fidelity: f64,
    /// Score returned to the scheduler (lower is better).
    pub score: f64,
    /// Number of SWAPs routing added on this device (context for the score).
    pub swaps_inserted: usize,
}

/// Evaluate how well `backend` can serve `circuit` given a `target_fidelity`.
///
/// The score is `100·(1 − F_canary)` plus `shortfall_weight·(target − F)` when
/// the canary falls short of the target, so devices that meet the requirement
/// compete on raw fidelity and devices that miss it are pushed down the
/// ranking proportionally to how badly they miss.
///
/// # Errors
///
/// Returns an error if the circuit cannot be transpiled to the device or the
/// canary cannot be simulated.
pub fn evaluate_fidelity(
    circuit: &Circuit,
    target_fidelity: f64,
    backend: &Backend,
    config: &FidelityRankingConfig,
) -> Result<FidelityEvaluation, MetaError> {
    if !(0.0..=1.0).contains(&target_fidelity) {
        return Err(MetaError::InvalidMetadata(format!(
            "target fidelity {target_fidelity} is outside [0, 1]"
        )));
    }
    let canary_fidelity = canary_fidelity_on_backend(circuit, backend, config)?;
    let mut score = 100.0 * (1.0 - canary_fidelity);
    if canary_fidelity < target_fidelity {
        score += config.shortfall_weight * (target_fidelity - canary_fidelity);
    }
    Ok(FidelityEvaluation {
        device: backend.name().to_string(),
        canary_fidelity,
        score,
        swaps_inserted: transpile(&ensure_measured(circuit), backend)
            .map(|r| r.swaps_inserted)
            .unwrap_or(0),
    })
}

/// Estimate the Clifford-canary fidelity of `circuit` on `backend`:
/// cliffordize, transpile, deflate to the active qubits, then compare the
/// noise-free and noisy output distributions with Hellinger fidelity.
///
/// # Errors
///
/// Returns an error if transpilation or simulation fails.
pub fn canary_fidelity_on_backend(
    circuit: &Circuit,
    backend: &Backend,
    config: &FidelityRankingConfig,
) -> Result<f64, MetaError> {
    let prepared = ensure_measured(circuit);
    let canary = prepared.to_clifford();
    let transpiled = transpile(&canary, backend)?;
    // Re-snap: basis translation / 1q fusion keeps Clifford circuits Clifford,
    // but floating-point angle extraction can drift by ~1e-15; snapping makes
    // the stabilizer engine's Clifford check robust.
    let physical_canary = transpiled.circuit.to_clifford();
    let deflated = deflate(&physical_canary, backend)?;

    let seed = config.seed ^ stable_hash(backend.name());
    let ideal = executor::run_ideal(&deflated.circuit, config.shots, seed)?;
    let noise = NoiseModel::from_backend(&deflated.backend);
    // Offset by a full seed stride so the ideal and noisy sharded executions
    // never share an RNG stream.
    let noisy = executor::run_with_noise(
        &deflated.circuit,
        &noise,
        config.shots,
        seed.wrapping_add(qrio_sim::SEED_STREAM_STRIDE),
    )?;
    Ok(ideal.hellinger_fidelity(&noisy))
}

/// Add terminal measurements when the user circuit has none, so that there is
/// a distribution to compare.
fn ensure_measured(circuit: &Circuit) -> Circuit {
    if circuit.measurement_count() > 0 {
        circuit.clone()
    } else {
        let mut measured = circuit.clone();
        let _ = measured.measure_all();
        measured
    }
}

/// A small deterministic string hash (FNV-1a) so per-device seeds differ.
pub(crate) fn stable_hash(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;
    use qrio_circuit::library;

    fn config() -> FidelityRankingConfig {
        FidelityRankingConfig {
            shots: 128,
            seed: 7,
            shortfall_weight: 100.0,
        }
    }

    #[test]
    fn clean_devices_score_better_than_noisy_ones() {
        let circuit = library::bernstein_vazirani(6, 0b101101).unwrap();
        let clean = Backend::uniform("clean", topology::line(8), 0.0, 0.0);
        let noisy = Backend::uniform("noisy", topology::line(8), 0.05, 0.25);
        let clean_eval = evaluate_fidelity(&circuit, 1.0, &clean, &config()).unwrap();
        let noisy_eval = evaluate_fidelity(&circuit, 1.0, &noisy, &config()).unwrap();
        assert!(clean_eval.canary_fidelity > 0.95);
        assert!(clean_eval.canary_fidelity > noisy_eval.canary_fidelity);
        assert!(clean_eval.score < noisy_eval.score);
    }

    #[test]
    fn canary_fidelity_for_non_clifford_circuits() {
        // "Circ"-style random circuit: non-Clifford, so the canary path must
        // cliffordize before simulating.
        let circuit = library::random_circuit(5, 4, 11).unwrap();
        assert!(!circuit.is_clifford());
        let backend = Backend::uniform("mid", topology::ring(10), 0.01, 0.05);
        let f = canary_fidelity_on_backend(&circuit, &backend, &config()).unwrap();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn shortfall_penalty_applies() {
        let circuit = library::ghz(4).unwrap();
        let noisy = Backend::uniform("noisy", topology::line(6), 0.05, 0.3);
        let strict = evaluate_fidelity(&circuit, 1.0, &noisy, &config()).unwrap();
        let lax = evaluate_fidelity(&circuit, 0.0, &noisy, &config()).unwrap();
        assert!(
            strict.score > lax.score,
            "higher targets must penalise shortfalls harder"
        );
        assert!((strict.canary_fidelity - lax.canary_fidelity).abs() < 1e-9);
    }

    #[test]
    fn invalid_target_is_rejected() {
        let circuit = library::ghz(2).unwrap();
        let backend = Backend::uniform("dev", topology::line(2), 0.0, 0.0);
        assert!(evaluate_fidelity(&circuit, 1.5, &backend, &config()).is_err());
        assert!(evaluate_fidelity(&circuit, -0.1, &backend, &config()).is_err());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let circuit = library::hidden_subgroup(4).unwrap();
        let backend = Backend::uniform("dev", topology::ring(8), 0.02, 0.1);
        let a = evaluate_fidelity(&circuit, 0.9, &backend, &config()).unwrap();
        let b = evaluate_fidelity(&circuit, 0.9, &backend, &config()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn circuits_too_large_for_device_error_out() {
        let circuit = library::ghz(12).unwrap();
        let backend = Backend::uniform("small", topology::line(4), 0.0, 0.0);
        assert!(matches!(
            evaluate_fidelity(&circuit, 0.9, &backend, &config()),
            Err(MetaError::Transpiler(_))
        ));
    }

    #[test]
    fn unmeasured_circuits_are_handled() {
        let circuit = library::topology_circuit(3, &[(0, 1), (1, 2)]).unwrap();
        let backend = Backend::uniform("dev", topology::line(5), 0.01, 0.05);
        let f = canary_fidelity_on_backend(&circuit, &backend, &config()).unwrap();
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn stable_hash_differs_per_device() {
        assert_ne!(stable_hash("a"), stable_hash("b"));
        assert_eq!(stable_hash("dev"), stable_hash("dev"));
    }
}
