//! # qrio-proto
//!
//! Versioned, dependency-free wire format for QRIO control-plane traffic
//! (reproduction of *Empowering the Quantum Cloud User with QRIO*, IISWC
//! 2024). The orchestrator and every node agent speak exclusively through
//! these messages: [`NodeCommand`]s flow down (bind, run, cancel,
//! recalibrate, cordon, probe), [`NodeReport`]s flow up (job phase
//! transitions, telemetry, calibration revisions, status), and both travel
//! inside a checksummed [`Envelope`] frame.
//!
//! The build environment has no crates.io access, so the codec is
//! hand-rolled in the `qrio-journal` record idiom: magic/version/length/
//! CRC-32 framing, little-endian integers, `u64`-length-prefixed strings,
//! one-byte enum tags. Decoding never panics — every malformed input maps to
//! a typed [`ProtoError`].
//!
//! ```
//! use qrio_proto::{Envelope, NodeCommand, Payload};
//!
//! let env = Envelope {
//!     seq: 0,
//!     node_id: "ibmq-lima".into(),
//!     virtual_ts: 7,
//!     payload: Payload::Command(NodeCommand::Probe),
//! };
//! let bytes = env.encode();
//! let (decoded, consumed) = Envelope::decode(&bytes).unwrap();
//! assert_eq!(consumed, bytes.len());
//! assert_eq!(decoded, env);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod wire;

pub use codec::{crc32, ByteReader, ByteWriter, CodecError};
pub use wire::{
    decode_stream, Envelope, FaultSpec, FrameHeader, NodeCommand, NodeReport, Payload, ProtoError,
    RunPayload, RunVerdict, TelemetryFrame, WireFaultKind, FRAME_CRC_LEN, FRAME_PREFIX_LEN,
    PROTO_MAGIC, PROTO_VERSION,
};
