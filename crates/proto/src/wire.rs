//! Control-plane message types and the envelope framing that carries them.
//!
//! Every message travels inside an [`Envelope`] frame laid out in the
//! `qrio-journal` record idiom:
//!
//! ```text
//! +--------------+---------+---------+------------------+-----------+
//! | magic (8)    | ver u16 | len u32 | payload (len)    | crc32 u32 |
//! | "QRIOPROT"   |         |         |                  |           |
//! +--------------+---------+---------+------------------+-----------+
//! ```
//!
//! The CRC covers everything before it (magic, version, length and payload),
//! so a flipped bit anywhere in the frame is detected. Frames are
//! self-delimiting and may be concatenated into a trace stream; see
//! [`decode_stream`].
//!
//! Decoding never panics: every malformed input maps to a typed
//! [`ProtoError`].

use std::fmt;

use crate::codec::{crc32, ByteReader, ByteWriter, CodecError};

/// Magic bytes opening every envelope frame.
pub const PROTO_MAGIC: [u8; 8] = *b"QRIOPROT";

/// Version of the wire format emitted by this crate.
pub const PROTO_VERSION: u16 = 1;

/// Bytes before the payload: magic (8) + version (2) + length (4).
pub const FRAME_PREFIX_LEN: usize = 14;

/// Trailing checksum width.
pub const FRAME_CRC_LEN: usize = 4;

/// Errors surfaced while decoding envelope frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The buffer is shorter than a complete frame.
    Truncated {
        /// Bytes the frame needed.
        needed: usize,
        /// Bytes that were actually available.
        available: usize,
    },
    /// The frame does not open with [`PROTO_MAGIC`].
    BadMagic,
    /// The frame's version is not [`PROTO_VERSION`].
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u16,
        /// Version this crate speaks.
        supported: u16,
    },
    /// The trailing checksum does not match the frame contents.
    CorruptFrame {
        /// Checksum stored in the frame.
        stored: u32,
        /// Checksum computed over the frame bytes.
        computed: u32,
    },
    /// The payload bytes failed structured decoding.
    Payload(CodecError),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated frame: needed {needed} bytes, {available} available"
                )
            }
            ProtoError::BadMagic => write!(f, "frame does not start with the QRIOPROT magic"),
            ProtoError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "frame version {found} unsupported (speaking {supported})"
                )
            }
            ProtoError::CorruptFrame { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            ProtoError::Payload(err) => write!(f, "malformed payload: {err}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<CodecError> for ProtoError {
    fn from(err: CodecError) -> Self {
        ProtoError::Payload(err)
    }
}

/// Fault kinds as they travel on the wire, mirroring the cluster's
/// `FaultKind` without depending on it (`qrio-proto` is a leaf crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFaultKind {
    /// A one-off execution failure that succeeds on retry.
    Transient,
    /// The device's calibration drifted; a recalibration fixes it.
    Calibration,
    /// The job ran but blew its latency budget.
    Slow,
    /// The device dropped out mid-run.
    Flap,
}

impl WireFaultKind {
    /// Every kind, in wire-tag order.
    pub const ALL: [WireFaultKind; 4] = [
        WireFaultKind::Transient,
        WireFaultKind::Calibration,
        WireFaultKind::Slow,
        WireFaultKind::Flap,
    ];

    /// Stable lower-case name, identical to the cluster-side `FaultKind`.
    pub fn name(self) -> &'static str {
        match self {
            WireFaultKind::Transient => "transient",
            WireFaultKind::Calibration => "calibration",
            WireFaultKind::Slow => "slow",
            WireFaultKind::Flap => "flap",
        }
    }

    fn tag(self) -> u8 {
        match self {
            WireFaultKind::Transient => 0,
            WireFaultKind::Calibration => 1,
            WireFaultKind::Slow => 2,
            WireFaultKind::Flap => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(WireFaultKind::Transient),
            1 => Ok(WireFaultKind::Calibration),
            2 => Ok(WireFaultKind::Slow),
            3 => Ok(WireFaultKind::Flap),
            other => Err(CodecError::InvalidTag {
                what: "WireFaultKind",
                tag: u64::from(other),
            }),
        }
    }
}

/// Fault-injection parameters shipped to an agent in a `Bind` command, so the
/// agent reaches the same pure fault decision the orchestrator would.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability of a transient execution fault.
    pub transient_rate: f64,
    /// Probability of a calibration glitch.
    pub calibration_rate: f64,
    /// Probability of a slow-job fault.
    pub slow_rate: f64,
    /// Probability of a device flap.
    pub flap_rate: f64,
}

/// Everything an agent needs to execute one attempt of one job: the circuit,
/// the image files and the shot budget. Self-contained by design — the agent
/// never reaches back into orchestrator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPayload {
    /// Job name.
    pub job: String,
    /// Zero-based attempt number (drives the fault decision).
    pub attempt: u32,
    /// Name of the image bundle the files came from.
    pub image_name: String,
    /// The image's files (`path -> contents`), sorted by path.
    pub image_files: Vec<(String, String)>,
    /// The job's circuit as OpenQASM text.
    pub qasm: String,
    /// Number of qubits the job requested.
    pub num_qubits: u64,
    /// Number of shots to execute.
    pub shots: u64,
    /// Worker threads for shot execution (`0` = auto-detect).
    pub threads: u64,
}

/// Orchestrator → agent instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeCommand {
    /// Attach (or refresh) the device owned by the agent: backend calibration
    /// as `qrio-backend` spec text, plus the current fault-injection plan.
    Bind {
        /// Backend spec text (`qrio_backend::spec` format).
        backend_spec: String,
        /// Fault-injection parameters; `None` disables injection.
        injector: Option<FaultSpec>,
    },
    /// Execute one attempt of a job.
    Run {
        /// The self-contained work order.
        payload: RunPayload,
    },
    /// Best-effort cancel: drop the named job if it has not started.
    Cancel {
        /// Job name.
        job: String,
        /// Human-readable reason, echoed into agent logs.
        reason: String,
    },
    /// Replace the device calibration with a new backend spec.
    Recalibrate {
        /// Backend spec text (`qrio_backend::spec` format).
        backend_spec: String,
    },
    /// Stop accepting new runs.
    Cordon,
    /// Resume accepting runs.
    Uncordon,
    /// Health probe; the agent answers with [`NodeReport::Status`].
    Probe,
}

impl NodeCommand {
    /// Stable lower-case name of the command variant.
    pub fn name(&self) -> &'static str {
        match self {
            NodeCommand::Bind { .. } => "bind",
            NodeCommand::Run { .. } => "run",
            NodeCommand::Cancel { .. } => "cancel",
            NodeCommand::Recalibrate { .. } => "recalibrate",
            NodeCommand::Cordon => "cordon",
            NodeCommand::Uncordon => "uncordon",
            NodeCommand::Probe => "probe",
        }
    }
}

/// Outcome of one `Run` command, reported by the agent.
#[derive(Debug, Clone, PartialEq)]
pub enum RunVerdict {
    /// The runner completed; histogram, fidelity and logs attached.
    Succeeded {
        /// Measurement histogram (`bitstring -> count`).
        counts: Vec<(String, u64)>,
        /// Fidelity against the noise-free reference, when computed.
        fidelity: Option<f64>,
        /// Runner log lines.
        logs: Vec<String>,
    },
    /// The runner failed with a human-readable reason.
    Failed {
        /// Failure reason.
        reason: String,
    },
    /// The fault injector fired before the runner started.
    Faulted {
        /// Which fault fired.
        kind: WireFaultKind,
    },
    /// The agent refused the run (unbound device, cancelled job, ...).
    Rejected {
        /// Refusal reason.
        reason: String,
    },
}

/// One telemetry sample from an agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryFrame {
    /// Jobs queued on the device.
    pub queue_depth: u64,
    /// Utilization in `[0, 1]`.
    pub utilization: f64,
    /// Health penalty applied by the meta server's ranking.
    pub health_penalty: f64,
}

/// Agent → orchestrator reports.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeReport {
    /// A job attempt reached a terminal phase on this device.
    Phase {
        /// Job name.
        job: String,
        /// Attempt number the verdict is for.
        attempt: u32,
        /// What happened.
        verdict: RunVerdict,
    },
    /// Periodic telemetry sample.
    Telemetry {
        /// The sample.
        frame: TelemetryFrame,
    },
    /// Acknowledges a `Bind`/`Recalibrate`: the agent's calibration revision
    /// (bumped every time the backend spec is replaced).
    Calibration {
        /// Monotonic revision counter.
        revision: u64,
    },
    /// Answers a `Probe` (and acknowledges `Cordon`/`Uncordon`/`Cancel`).
    Status {
        /// Whether the agent is refusing new runs.
        cordoned: bool,
        /// Run commands executed so far.
        executed: u64,
        /// Current calibration revision.
        calibration_revision: u64,
    },
}

impl NodeReport {
    /// Stable lower-case name of the report variant.
    pub fn name(&self) -> &'static str {
        match self {
            NodeReport::Phase { .. } => "phase",
            NodeReport::Telemetry { .. } => "telemetry",
            NodeReport::Calibration { .. } => "calibration",
            NodeReport::Status { .. } => "status",
        }
    }
}

/// Direction-tagged payload of an envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Orchestrator → agent.
    Command(NodeCommand),
    /// Agent → orchestrator.
    Report(NodeReport),
}

/// One framed control-plane message.
///
/// `seq` is per-node *and* per-direction: the orchestrator numbers the
/// commands it sends each node `0, 1, 2, ...` and each agent independently
/// numbers its reports. A gap in either stream means a message was lost
/// (lint QL0600).
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Position in the per-node, per-direction stream.
    pub seq: u64,
    /// Device the message is to (command) or from (report).
    pub node_id: String,
    /// Virtual clock of the sender when the message was emitted.
    pub virtual_ts: u64,
    /// The message itself.
    pub payload: Payload,
}

fn put_fault_spec(writer: &mut ByteWriter, spec: &FaultSpec) {
    writer.put_u64(spec.seed);
    writer.put_f64(spec.transient_rate);
    writer.put_f64(spec.calibration_rate);
    writer.put_f64(spec.slow_rate);
    writer.put_f64(spec.flap_rate);
}

fn take_fault_spec(reader: &mut ByteReader<'_>) -> Result<FaultSpec, CodecError> {
    Ok(FaultSpec {
        seed: reader.take_u64()?,
        transient_rate: reader.take_f64()?,
        calibration_rate: reader.take_f64()?,
        slow_rate: reader.take_f64()?,
        flap_rate: reader.take_f64()?,
    })
}

fn put_run_payload(writer: &mut ByteWriter, payload: &RunPayload) {
    writer.put_str(&payload.job);
    writer.put_u32(payload.attempt);
    writer.put_str(&payload.image_name);
    writer.put_usize(payload.image_files.len());
    for (path, contents) in &payload.image_files {
        writer.put_str(path);
        writer.put_str(contents);
    }
    writer.put_str(&payload.qasm);
    writer.put_u64(payload.num_qubits);
    writer.put_u64(payload.shots);
    writer.put_u64(payload.threads);
}

fn take_run_payload(reader: &mut ByteReader<'_>) -> Result<RunPayload, CodecError> {
    let job = reader.take_str()?;
    let attempt = reader.take_u32()?;
    let image_name = reader.take_str()?;
    let file_count = reader.take_usize()?;
    let mut image_files = Vec::new();
    for _ in 0..file_count {
        let path = reader.take_str()?;
        let contents = reader.take_str()?;
        image_files.push((path, contents));
    }
    Ok(RunPayload {
        job,
        attempt,
        image_name,
        image_files,
        qasm: reader.take_str()?,
        num_qubits: reader.take_u64()?,
        shots: reader.take_u64()?,
        threads: reader.take_u64()?,
    })
}

fn put_command(writer: &mut ByteWriter, command: &NodeCommand) {
    match command {
        NodeCommand::Bind {
            backend_spec,
            injector,
        } => {
            writer.put_u8(0);
            writer.put_str(backend_spec);
            match injector {
                None => writer.put_u8(0),
                Some(spec) => {
                    writer.put_u8(1);
                    put_fault_spec(writer, spec);
                }
            }
        }
        NodeCommand::Run { payload } => {
            writer.put_u8(1);
            put_run_payload(writer, payload);
        }
        NodeCommand::Cancel { job, reason } => {
            writer.put_u8(2);
            writer.put_str(job);
            writer.put_str(reason);
        }
        NodeCommand::Recalibrate { backend_spec } => {
            writer.put_u8(3);
            writer.put_str(backend_spec);
        }
        NodeCommand::Cordon => writer.put_u8(4),
        NodeCommand::Uncordon => writer.put_u8(5),
        NodeCommand::Probe => writer.put_u8(6),
    }
}

fn take_command(reader: &mut ByteReader<'_>) -> Result<NodeCommand, CodecError> {
    match reader.take_u8()? {
        0 => {
            let backend_spec = reader.take_str()?;
            let injector = match reader.take_u8()? {
                0 => None,
                1 => Some(take_fault_spec(reader)?),
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "Option<FaultSpec>",
                        tag: u64::from(tag),
                    })
                }
            };
            Ok(NodeCommand::Bind {
                backend_spec,
                injector,
            })
        }
        1 => Ok(NodeCommand::Run {
            payload: take_run_payload(reader)?,
        }),
        2 => Ok(NodeCommand::Cancel {
            job: reader.take_str()?,
            reason: reader.take_str()?,
        }),
        3 => Ok(NodeCommand::Recalibrate {
            backend_spec: reader.take_str()?,
        }),
        4 => Ok(NodeCommand::Cordon),
        5 => Ok(NodeCommand::Uncordon),
        6 => Ok(NodeCommand::Probe),
        tag => Err(CodecError::InvalidTag {
            what: "NodeCommand",
            tag: u64::from(tag),
        }),
    }
}

fn put_verdict(writer: &mut ByteWriter, verdict: &RunVerdict) {
    match verdict {
        RunVerdict::Succeeded {
            counts,
            fidelity,
            logs,
        } => {
            writer.put_u8(0);
            writer.put_usize(counts.len());
            for (bitstring, count) in counts {
                writer.put_str(bitstring);
                writer.put_u64(*count);
            }
            match fidelity {
                None => writer.put_u8(0),
                Some(value) => {
                    writer.put_u8(1);
                    writer.put_f64(*value);
                }
            }
            writer.put_usize(logs.len());
            for line in logs {
                writer.put_str(line);
            }
        }
        RunVerdict::Failed { reason } => {
            writer.put_u8(1);
            writer.put_str(reason);
        }
        RunVerdict::Faulted { kind } => {
            writer.put_u8(2);
            writer.put_u8(kind.tag());
        }
        RunVerdict::Rejected { reason } => {
            writer.put_u8(3);
            writer.put_str(reason);
        }
    }
}

fn take_verdict(reader: &mut ByteReader<'_>) -> Result<RunVerdict, CodecError> {
    match reader.take_u8()? {
        0 => {
            let count_len = reader.take_usize()?;
            let mut counts = Vec::new();
            for _ in 0..count_len {
                let bitstring = reader.take_str()?;
                let count = reader.take_u64()?;
                counts.push((bitstring, count));
            }
            let fidelity = match reader.take_u8()? {
                0 => None,
                1 => Some(reader.take_f64()?),
                tag => {
                    return Err(CodecError::InvalidTag {
                        what: "Option<f64>",
                        tag: u64::from(tag),
                    })
                }
            };
            let log_len = reader.take_usize()?;
            let mut logs = Vec::new();
            for _ in 0..log_len {
                logs.push(reader.take_str()?);
            }
            Ok(RunVerdict::Succeeded {
                counts,
                fidelity,
                logs,
            })
        }
        1 => Ok(RunVerdict::Failed {
            reason: reader.take_str()?,
        }),
        2 => Ok(RunVerdict::Faulted {
            kind: WireFaultKind::from_tag(reader.take_u8()?)?,
        }),
        3 => Ok(RunVerdict::Rejected {
            reason: reader.take_str()?,
        }),
        tag => Err(CodecError::InvalidTag {
            what: "RunVerdict",
            tag: u64::from(tag),
        }),
    }
}

fn put_report(writer: &mut ByteWriter, report: &NodeReport) {
    match report {
        NodeReport::Phase {
            job,
            attempt,
            verdict,
        } => {
            writer.put_u8(0);
            writer.put_str(job);
            writer.put_u32(*attempt);
            put_verdict(writer, verdict);
        }
        NodeReport::Telemetry { frame } => {
            writer.put_u8(1);
            writer.put_u64(frame.queue_depth);
            writer.put_f64(frame.utilization);
            writer.put_f64(frame.health_penalty);
        }
        NodeReport::Calibration { revision } => {
            writer.put_u8(2);
            writer.put_u64(*revision);
        }
        NodeReport::Status {
            cordoned,
            executed,
            calibration_revision,
        } => {
            writer.put_u8(3);
            writer.put_bool(*cordoned);
            writer.put_u64(*executed);
            writer.put_u64(*calibration_revision);
        }
    }
}

fn take_report(reader: &mut ByteReader<'_>) -> Result<NodeReport, CodecError> {
    match reader.take_u8()? {
        0 => Ok(NodeReport::Phase {
            job: reader.take_str()?,
            attempt: reader.take_u32()?,
            verdict: take_verdict(reader)?,
        }),
        1 => Ok(NodeReport::Telemetry {
            frame: TelemetryFrame {
                queue_depth: reader.take_u64()?,
                utilization: reader.take_f64()?,
                health_penalty: reader.take_f64()?,
            },
        }),
        2 => Ok(NodeReport::Calibration {
            revision: reader.take_u64()?,
        }),
        3 => Ok(NodeReport::Status {
            cordoned: reader.take_bool()?,
            executed: reader.take_u64()?,
            calibration_revision: reader.take_u64()?,
        }),
        tag => Err(CodecError::InvalidTag {
            what: "NodeReport",
            tag: u64::from(tag),
        }),
    }
}

impl Envelope {
    /// Encode this envelope as one self-delimiting frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = ByteWriter::new();
        payload.put_u64(self.seq);
        payload.put_str(&self.node_id);
        payload.put_u64(self.virtual_ts);
        match &self.payload {
            Payload::Command(command) => {
                payload.put_u8(0);
                put_command(&mut payload, command);
            }
            Payload::Report(report) => {
                payload.put_u8(1);
                put_report(&mut payload, report);
            }
        }
        let payload = payload.into_bytes();
        let len = u32::try_from(payload.len()).expect("envelope payload exceeds u32::MAX bytes");

        let mut frame = ByteWriter::new();
        frame.put_raw(&PROTO_MAGIC);
        frame.put_u16(PROTO_VERSION);
        frame.put_u32(len);
        frame.put_raw(&payload);
        let crc = crc32(&frame.clone().into_bytes());
        frame.put_u32(crc);
        frame.into_bytes()
    }

    /// Decode one envelope from the front of `bytes`.
    ///
    /// Returns the envelope and the number of bytes consumed, so frames can
    /// be peeled off a concatenated stream one at a time.
    ///
    /// # Errors
    ///
    /// Every malformed input maps to a typed [`ProtoError`]; this never
    /// panics.
    pub fn decode(bytes: &[u8]) -> Result<(Envelope, usize), ProtoError> {
        let header = FrameHeader::peek(bytes)?;
        if header.version != PROTO_VERSION {
            return Err(ProtoError::UnsupportedVersion {
                found: header.version,
                supported: PROTO_VERSION,
            });
        }
        let frame = &bytes[..header.frame_len];
        let body = &frame[..header.frame_len - FRAME_CRC_LEN];
        let stored = {
            let mut reader = ByteReader::new(&frame[header.frame_len - FRAME_CRC_LEN..]);
            reader.take_u32().map_err(ProtoError::Payload)?
        };
        let computed = crc32(body);
        if stored != computed {
            return Err(ProtoError::CorruptFrame { stored, computed });
        }

        let mut reader = ByteReader::new(&body[FRAME_PREFIX_LEN..]);
        let seq = reader.take_u64()?;
        let node_id = reader.take_str()?;
        let virtual_ts = reader.take_u64()?;
        let payload = match reader.take_u8()? {
            0 => Payload::Command(take_command(&mut reader)?),
            1 => Payload::Report(take_report(&mut reader)?),
            tag => {
                return Err(ProtoError::Payload(CodecError::InvalidTag {
                    what: "Payload",
                    tag: u64::from(tag),
                }))
            }
        };
        reader.finish().map_err(ProtoError::Payload)?;
        Ok((
            Envelope {
                seq,
                node_id,
                virtual_ts,
                payload,
            },
            header.frame_len,
        ))
    }
}

/// The fixed-size frame header, readable without decoding the payload.
///
/// Used by stream scanners (and the analyzer's QL06xx lints) to skip over
/// frames whose version they do not speak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Wire-format version stored in the frame.
    pub version: u16,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// Total frame length (prefix + payload + CRC).
    pub frame_len: usize,
}

impl FrameHeader {
    /// Inspect the frame at the front of `bytes` without validating its
    /// version or checksum.
    ///
    /// # Errors
    ///
    /// [`ProtoError::BadMagic`] when the magic is wrong,
    /// [`ProtoError::Truncated`] when fewer bytes are available than the
    /// header (or the declared frame length) requires.
    pub fn peek(bytes: &[u8]) -> Result<FrameHeader, ProtoError> {
        if bytes.len() < FRAME_PREFIX_LEN {
            return Err(ProtoError::Truncated {
                needed: FRAME_PREFIX_LEN,
                available: bytes.len(),
            });
        }
        if bytes[..PROTO_MAGIC.len()] != PROTO_MAGIC {
            return Err(ProtoError::BadMagic);
        }
        let mut reader = ByteReader::new(&bytes[PROTO_MAGIC.len()..FRAME_PREFIX_LEN]);
        let version = reader.take_u16().map_err(ProtoError::Payload)?;
        let payload_len = reader.take_u32().map_err(ProtoError::Payload)? as usize;
        let frame_len = FRAME_PREFIX_LEN + payload_len + FRAME_CRC_LEN;
        if bytes.len() < frame_len {
            return Err(ProtoError::Truncated {
                needed: frame_len,
                available: bytes.len(),
            });
        }
        Ok(FrameHeader {
            version,
            payload_len,
            frame_len,
        })
    }
}

/// Decode a stream of concatenated envelope frames.
///
/// # Errors
///
/// Fails on the first malformed frame with its typed [`ProtoError`].
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<Envelope>, ProtoError> {
    let mut envelopes = Vec::new();
    let mut cursor = 0;
    while cursor < bytes.len() {
        let (envelope, consumed) = Envelope::decode(&bytes[cursor..])?;
        envelopes.push(envelope);
        cursor += consumed;
    }
    Ok(envelopes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_envelope() -> Envelope {
        Envelope {
            seq: 3,
            node_id: "ibmq-αλμα".into(),
            virtual_ts: 42,
            payload: Payload::Command(NodeCommand::Probe),
        }
    }

    #[test]
    fn frame_layout_is_magic_version_len_payload_crc() {
        let bytes = sample_envelope().encode();
        assert_eq!(&bytes[..8], b"QRIOPROT");
        assert_eq!(u16::from_le_bytes([bytes[8], bytes[9]]), PROTO_VERSION);
        let len = u32::from_le_bytes([bytes[10], bytes[11], bytes[12], bytes[13]]) as usize;
        assert_eq!(bytes.len(), FRAME_PREFIX_LEN + len + FRAME_CRC_LEN);
    }

    #[test]
    fn concatenated_frames_decode_as_a_stream() {
        let mut stream = Vec::new();
        for seq in 0..4u64 {
            let mut env = sample_envelope();
            env.seq = seq;
            stream.extend_from_slice(&env.encode());
        }
        let decoded = decode_stream(&stream).unwrap();
        assert_eq!(decoded.len(), 4);
        assert_eq!(decoded[3].seq, 3);
    }

    #[test]
    fn version_mismatch_is_detected_before_crc() {
        let mut bytes = sample_envelope().encode();
        bytes[8] = 9;
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(ProtoError::UnsupportedVersion {
                found: 9,
                supported: PROTO_VERSION
            })
        ));
        // The header peek still works, so scanners can skip the frame.
        let header = FrameHeader::peek(&bytes).unwrap();
        assert_eq!(header.version, 9);
    }

    #[test]
    fn flipped_bits_anywhere_are_typed_errors_never_panics() {
        let bytes = sample_envelope().encode();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            assert!(Envelope::decode(&corrupt).is_err(), "flip at {i}");
        }
    }
}
