//! Byte-level encoding primitives for the control-plane wire format.
//!
//! `qrio-proto` is a *leaf* crate: it must not depend on anything, including
//! `qrio-journal`, so the byte conventions are restated here verbatim rather
//! than imported. They are deliberately identical to the journal's record
//! codec so that anyone who can read one format can read the other:
//!
//! * all integers are little-endian,
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`/`from_bits`), so
//!   every NaN payload and signed zero survives round-trips,
//! * strings and byte blobs are length-prefixed with a `u64`,
//! * `Option` and enums are prefixed with a one-byte tag.
//!
//! [`ByteWriter`] never fails; [`ByteReader`] fails with a typed
//! [`CodecError`] and never panics on malformed input.

use std::fmt;

/// Errors surfaced while decoding wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The reader ran out of bytes mid-value.
    UnexpectedEof {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were actually left.
        remaining: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// A tag byte (enum discriminant, `Option` marker, ...) had no mapping.
    InvalidTag {
        /// What was being decoded when the tag appeared.
        what: &'static str,
        /// The unrecognised tag value.
        tag: u64,
    },
    /// A declared length does not fit in memory-addressable space.
    LengthOverflow {
        /// The declared length.
        declared: u64,
    },
    /// Bytes were left over after a value claimed to be fully decoded.
    TrailingBytes {
        /// How many bytes were left unread.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of input: needed {needed} bytes, {remaining} left"
                )
            }
            CodecError::InvalidUtf8 => write!(f, "length-prefixed string is not valid UTF-8"),
            CodecError::InvalidTag { what, tag } => {
                write!(f, "invalid tag {tag} while decoding {what}")
            }
            CodecError::LengthOverflow { declared } => {
                write!(f, "declared length {declared} overflows the address space")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only buffer with typed `put_*` helpers.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Start an empty buffer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer and return the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a single byte.
    pub fn put_u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, value: u16) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Append a `usize` widened to a little-endian `u64`.
    pub fn put_usize(&mut self, value: usize) {
        self.put_u64(value as u64);
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }

    /// Append a boolean as one byte (`0` or `1`).
    pub fn put_bool(&mut self, value: bool) {
        self.put_u8(u8::from(value));
    }

    /// Append a `u64`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, value: &str) {
        self.put_bytes(value.as_bytes());
    }

    /// Append a `u64`-length-prefixed byte blob.
    pub fn put_bytes(&mut self, value: &[u8]) {
        self.put_usize(value.len());
        self.buf.extend_from_slice(value);
    }

    /// Append raw bytes with no length prefix (for the framing layer, which
    /// carries the length in its own header).
    pub fn put_raw(&mut self, value: &[u8]) {
        self.buf.extend_from_slice(value);
    }
}

/// A cursor over a byte slice with typed `take_*` helpers.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        let bytes = self.take(2)?;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let bytes = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(u64::from_le_bytes(raw))
    }

    /// Read a `u64` and narrow it to `usize`, rejecting overflow.
    pub fn take_usize(&mut self) -> Result<usize, CodecError> {
        let wide = self.take_u64()?;
        usize::try_from(wide).map_err(|_| CodecError::LengthOverflow { declared: wide })
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Read a boolean; any byte other than `0` or `1` is a typed error.
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::InvalidTag {
                what: "bool",
                tag: u64::from(tag),
            }),
        }
    }

    /// Read a `u64`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, CodecError> {
        let bytes = self.take_blob()?;
        String::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Read a `u64`-length-prefixed byte blob.
    pub fn take_blob(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.take_usize()?;
        Ok(self.take(len)?.to_vec())
    }

    /// Assert that every byte was consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE 802.3 polynomial) over `bytes`, as used by every envelope's
/// trailing checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &byte in bytes {
        c = CRC_TABLE[((c ^ u32::from(byte)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn scalar_round_trips() {
        let mut writer = ByteWriter::new();
        writer.put_u8(7);
        writer.put_u16(0xBEEF);
        writer.put_u32(0xDEAD_BEEF);
        writer.put_u64(u64::MAX - 1);
        writer.put_f64(-0.0);
        writer.put_f64(f64::NAN);
        writer.put_bool(true);
        writer.put_str("ion-trap-α");
        writer.put_bytes(&[0, 255, 3]);
        let bytes = writer.into_bytes();

        let mut reader = ByteReader::new(&bytes);
        assert_eq!(reader.take_u8().unwrap(), 7);
        assert_eq!(reader.take_u16().unwrap(), 0xBEEF);
        assert_eq!(reader.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(reader.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(reader.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(reader.take_f64().unwrap().is_nan());
        assert!(reader.take_bool().unwrap());
        assert_eq!(reader.take_str().unwrap(), "ion-trap-α");
        assert_eq!(reader.take_blob().unwrap(), vec![0, 255, 3]);
        reader.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_a_typed_error() {
        let mut writer = ByteWriter::new();
        writer.put_str("four");
        let bytes = writer.into_bytes();
        for cut in 0..bytes.len() {
            let mut reader = ByteReader::new(&bytes[..cut]);
            assert!(reader.take_str().is_err(), "cut at {cut} must not decode");
        }
    }
}
