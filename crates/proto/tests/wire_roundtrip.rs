//! Wire-layer round-trip properties: every `NodeCommand`/`NodeReport`
//! variant must survive encode→decode bit-exactly (including unicode device
//! names and max-width telemetry), and corrupted envelopes must fail with
//! typed errors, never panics.

use proptest::prelude::*;

use qrio_proto::{
    decode_stream, Envelope, FaultSpec, NodeCommand, NodeReport, Payload, ProtoError, RunPayload,
    RunVerdict, TelemetryFrame, WireFaultKind, PROTO_VERSION,
};

fn lossy_string(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// One command of each variant, parameterized on fuzzed inputs.
fn all_commands(name: &str, seed: u64, rate_bits: u64, text: &str) -> Vec<NodeCommand> {
    vec![
        NodeCommand::Bind {
            backend_spec: text.to_string(),
            injector: Some(FaultSpec {
                seed,
                transient_rate: f64::from_bits(rate_bits),
                calibration_rate: 0.25,
                slow_rate: -0.0,
                flap_rate: f64::NAN,
            }),
        },
        NodeCommand::Bind {
            backend_spec: String::new(),
            injector: None,
        },
        NodeCommand::Run {
            payload: RunPayload {
                job: name.to_string(),
                attempt: (seed & 0xFFFF_FFFF) as u32,
                image_name: text.to_string(),
                image_files: vec![
                    ("circuit.qasm".to_string(), text.to_string()),
                    (name.to_string(), String::new()),
                ],
                qasm: text.to_string(),
                num_qubits: seed,
                shots: u64::MAX,
                threads: 0,
            },
        },
        NodeCommand::Cancel {
            job: name.to_string(),
            reason: text.to_string(),
        },
        NodeCommand::Recalibrate {
            backend_spec: text.to_string(),
        },
        NodeCommand::Cordon,
        NodeCommand::Uncordon,
        NodeCommand::Probe,
    ]
}

/// One report of each variant, parameterized on fuzzed inputs.
fn all_reports(name: &str, seed: u64, rate_bits: u64, text: &str) -> Vec<NodeReport> {
    let mut reports = vec![
        NodeReport::Phase {
            job: name.to_string(),
            attempt: (seed & 0xFFFF) as u32,
            verdict: RunVerdict::Succeeded {
                counts: vec![("0101".to_string(), u64::MAX), (text.to_string(), 0)],
                fidelity: Some(f64::from_bits(rate_bits)),
                logs: vec![text.to_string(), String::new()],
            },
        },
        NodeReport::Phase {
            job: name.to_string(),
            attempt: 0,
            verdict: RunVerdict::Succeeded {
                counts: vec![],
                fidelity: None,
                logs: vec![],
            },
        },
        NodeReport::Phase {
            job: name.to_string(),
            attempt: u32::MAX,
            verdict: RunVerdict::Failed {
                reason: text.to_string(),
            },
        },
        NodeReport::Phase {
            job: name.to_string(),
            attempt: 1,
            verdict: RunVerdict::Rejected {
                reason: text.to_string(),
            },
        },
        // Max-width telemetry: every field at the edge of its range.
        NodeReport::Telemetry {
            frame: TelemetryFrame {
                queue_depth: u64::MAX,
                utilization: f64::from_bits(rate_bits),
                health_penalty: f64::MAX,
            },
        },
        NodeReport::Calibration { revision: u64::MAX },
        NodeReport::Status {
            cordoned: seed % 2 == 0,
            executed: seed,
            calibration_revision: seed.wrapping_mul(3),
        },
    ];
    for kind in WireFaultKind::ALL {
        reports.push(NodeReport::Phase {
            job: name.to_string(),
            attempt: 2,
            verdict: RunVerdict::Faulted { kind },
        });
    }
    reports
}

fn assert_round_trip(envelope: &Envelope) {
    let bytes = envelope.encode();
    let (decoded, consumed) = Envelope::decode(&bytes).expect("well-formed frame must decode");
    assert_eq!(consumed, bytes.len());
    // Fixed point: re-encoding the decoded envelope is byte-identical. This
    // is deliberately a *byte* comparison, not `PartialEq` — floats travel as
    // bit patterns, so NaN payloads round-trip even though `NaN != NaN`.
    assert_eq!(decoded.encode(), bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_variant_round_trips_with_fuzzed_payloads(
        seq in 0u64..=u64::MAX,
        virtual_ts in 0u64..=u64::MAX,
        seed in 0u64..=u64::MAX,
        rate_bits in 0u64..=u64::MAX,
        node_bytes in proptest::collection::vec(0u8..=255, 0..48),
        text_bytes in proptest::collection::vec(0u8..=255, 0..96),
    ) {
        // Lossy UTF-8 exercises multi-byte sequences, replacement chars and
        // embedded NULs — the "unicode device names" requirement.
        let node_id = lossy_string(&node_bytes);
        let text = lossy_string(&text_bytes);

        for command in all_commands(&node_id, seed, rate_bits, &text) {
            assert_round_trip(&Envelope {
                seq,
                node_id: node_id.clone(),
                virtual_ts,
                payload: Payload::Command(command),
            });
        }
        for report in all_reports(&node_id, seed, rate_bits, &text) {
            assert_round_trip(&Envelope {
                seq,
                node_id: node_id.clone(),
                virtual_ts,
                payload: Payload::Report(report),
            });
        }
    }

    #[test]
    fn corrupted_envelopes_give_typed_errors_never_panics(
        flip_byte in 0usize..=4096,
        flip_bit in 0u32..8,
        truncate_at in 0usize..=4096,
    ) {
        let envelope = Envelope {
            seq: 7,
            node_id: "осциллятор-7".into(),
            virtual_ts: 99,
            payload: Payload::Report(NodeReport::Phase {
                job: "shor-2048".into(),
                attempt: 3,
                verdict: RunVerdict::Faulted { kind: WireFaultKind::Flap },
            }),
        };
        let bytes = envelope.encode();

        // Single-bit corruption anywhere in the frame must be detected.
        let mut corrupt = bytes.clone();
        let at = flip_byte % corrupt.len();
        corrupt[at] ^= 1 << flip_bit;
        prop_assert!(Envelope::decode(&corrupt).is_err());

        // Truncation at any point must be a typed error.
        let cut = truncate_at % bytes.len();
        match Envelope::decode(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "truncated frame decoded at cut {}", cut),
        }
    }
}

#[test]
fn unicode_device_names_survive_verbatim() {
    for name in ["ibmq-kawasaki-川崎", "δοκιμή", "🧲-trap", "n\u{0}ul"] {
        let envelope = Envelope {
            seq: 0,
            node_id: name.into(),
            virtual_ts: 0,
            payload: Payload::Command(NodeCommand::Cordon),
        };
        assert_round_trip(&envelope);
        let (decoded, _) = Envelope::decode(&envelope.encode()).unwrap();
        assert_eq!(decoded, envelope);
    }
}

#[test]
fn streams_decode_in_order_and_reject_mid_stream_corruption() {
    let mut stream = Vec::new();
    for seq in 0..5u64 {
        stream.extend_from_slice(
            &Envelope {
                seq,
                node_id: "node-a".into(),
                virtual_ts: seq,
                payload: Payload::Command(NodeCommand::Probe),
            }
            .encode(),
        );
    }
    let decoded = decode_stream(&stream).unwrap();
    assert_eq!(
        decoded.iter().map(|e| e.seq).collect::<Vec<_>>(),
        vec![0, 1, 2, 3, 4]
    );

    // Corrupt a byte inside the third frame: the stream decoder must surface
    // a typed error rather than silently skipping.
    let frame_len = stream.len() / 5;
    stream[2 * frame_len + frame_len / 2] ^= 0xFF;
    assert!(decode_stream(&stream).is_err());
}

#[test]
fn version_mismatch_is_a_typed_error() {
    let mut bytes = Envelope {
        seq: 0,
        node_id: "node-a".into(),
        virtual_ts: 0,
        payload: Payload::Command(NodeCommand::Probe),
    }
    .encode();
    bytes[8] = PROTO_VERSION as u8 + 1;
    bytes[9] = 0;
    assert!(matches!(
        Envelope::decode(&bytes),
        Err(ProtoError::UnsupportedVersion { .. })
    ));
}
