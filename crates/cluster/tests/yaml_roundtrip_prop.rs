//! Property test: `JobSpec` → YAML → `JobSpec` round-trips losslessly for
//! arbitrary specs — thread counts, every `ParamValue` shape, and
//! requirements at their boundaries included.
//!
//! The QASM payload intentionally does *not* travel in the YAML document (it
//! ships in the container image), so the expected parse result is the
//! original spec with an empty `qasm`.

use proptest::prelude::*;

use qrio_cluster::yaml::{from_yaml, to_yaml};
use qrio_cluster::{
    BackoffPolicy, DeviceRequirements, JobSpec, ParamValue, Resources, RetryOn, RetryPolicy,
    StrategySpec,
};

/// A retry policy (or none) from sampled raw integers, cycling backoff shapes
/// and retry-class sets.
fn retry_from(selector: u64, attempts: u32, delay: u64) -> Option<RetryPolicy> {
    let backoff = match selector % 3 {
        0 => BackoffPolicy::Fixed { delay },
        _ => BackoffPolicy::Exponential {
            base: delay,
            max: delay.saturating_mul(1 + selector % 16),
            jitter: selector % 2 == 0,
        },
    };
    let retry_on = match selector % 4 {
        0 => RetryOn::all(),
        1 => RetryOn::faults_only(),
        2 => RetryOn {
            transient: true,
            calibration: false,
            slow: selector % 8 < 4,
            flap: false,
            execution: true,
        },
        _ => return None,
    };
    Some(RetryPolicy {
        max_attempts: attempts,
        backoff,
        retry_on,
    })
}

/// Deterministic "interesting" text for a text param: quotes, backslashes,
/// newlines, carriage returns and plain words, selected by index.
fn tricky_text(selector: u64) -> String {
    const PIECES: &[&str] = &[
        "plain",
        "with space",
        "quo\"te",
        "back\\slash",
        "line\none",
        "cr\rreturn",
        "both\\\"mixed\"\\",
        "",
        "trailing ",
        "0.5",
        "17",
        "- [0, 1]",
    ];
    let mut text = String::new();
    let mut s = selector;
    for _ in 0..1 + (selector % 3) {
        text.push_str(PIECES[(s % PIECES.len() as u64) as usize]);
        s = s.wrapping_mul(0x9E37_79B9).wrapping_add(1);
    }
    text
}

/// Build a strategy from the sampled raw integers, cycling through the four
/// built-in shapes plus a custom strategy exercising every param type.
fn strategy_from(selector: u64, float_milli: u64, int_param: u64, edge_bits: u64) -> StrategySpec {
    let float_param = float_milli as f64 / 1000.0;
    match selector % 5 {
        0 => StrategySpec::fidelity(float_param.min(1.0)),
        1 => {
            let mut edges = Vec::new();
            for bit in 0..6u64 {
                if (edge_bits >> bit) & 1 == 1 {
                    edges.push((bit as usize, (bit + 1 + (int_param % 3)) as usize));
                }
            }
            if edges.is_empty() {
                edges.push((0, 1));
            }
            StrategySpec::topology(&edges, 9 + (int_param % 4) as usize)
        }
        2 => StrategySpec::weighted(
            float_param.min(1.0),
            1.0 + float_param,
            float_milli as f64,
            0.5,
        ),
        3 => StrategySpec::min_queue(),
        _ => StrategySpec::new(format!("custom-{}", selector % 97))
            .with_float("alpha", float_param)
            .with_float("whole", (int_param % 100) as f64) // integral float: tests the `.0` rendering
            .with_param("rounds", ParamValue::Int(int_param))
            .with_param("mode", ParamValue::Text(tricky_text(selector)))
            .with_param(
                "pairs",
                ParamValue::Edges(vec![
                    ((edge_bits % 7) as usize, (edge_bits % 11) as usize + 1),
                    (0, (int_param % 5) as usize + 1),
                ]),
            ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serialize → parse preserves every field of the spec (QASM excepted by
    /// design).
    #[test]
    fn jobspec_yaml_roundtrip_is_lossless(
        qubits in 1usize..64,
        shots in 1u64..1_000_000,
        threads in 0usize..256,
        priority in 0u8..=255,
        cpu in 0u64..100_000,
        mem in 0u64..1_000_000,
        req_mask in 0u32..32,
        req_milli in 0u64..1_000_000,
        strategy_selector in 0u64..10_000,
        float_milli in 0u64..10_000,
        int_param in 0u64..1_000_000,
        edge_bits in 0u64..64,
        retry_selector in 0u64..10_000,
        retry_attempts in 0u32..10,
        retry_delay in 0u64..1_000,
        deadline_sel in 0u64..5_000,
    ) {
        let bound = req_milli as f64 / 1000.0;
        let spec = JobSpec {
            name: format!("job-{strategy_selector}-{int_param}"),
            image: format!("qrio/image-{qubits}:v{shots}"),
            qasm: "OPENQASM 2.0; // does not travel in the YAML".into(),
            num_qubits: qubits,
            resources: Resources::new(cpu, mem),
            requirements: DeviceRequirements {
                min_qubits: (req_mask & 1 != 0).then_some(qubits),
                max_two_qubit_error: (req_mask & 2 != 0).then_some(bound.min(1.0)),
                max_readout_error: (req_mask & 4 != 0).then_some(bound.min(1.0) / 2.0),
                min_t1_us: (req_mask & 8 != 0).then_some(bound * 100.0),
                min_t2_us: (req_mask & 16 != 0).then_some(bound * 50.0),
            },
            strategy: strategy_from(strategy_selector, float_milli, int_param, edge_bits),
            priority,
            shots,
            threads,
            retry: retry_from(retry_selector, retry_attempts, retry_delay),
            deadline: (deadline_sel % 2 == 0).then_some(deadline_sel),
        };

        let yaml = to_yaml(&spec);
        let parsed = from_yaml(&yaml).unwrap_or_else(|e| {
            panic!("round-trip parse failed: {e}\n--- document ---\n{yaml}")
        });

        let mut expected = spec.clone();
        expected.qasm = String::new();
        prop_assert_eq!(&parsed, &expected);

        // A second trip is a fixed point: render(parse(render(s))) ==
        // render(s).
        prop_assert_eq!(to_yaml(&parsed), yaml);
    }

    /// `StrategySpec`s with empty parameter bags render without a
    /// `strategyParams` section and still round-trip.
    #[test]
    fn parameterless_strategies_roundtrip(selector in 0u64..1_000) {
        let spec = JobSpec {
            name: "bare".into(),
            image: "qrio/bare:1".into(),
            qasm: String::new(),
            num_qubits: 3,
            resources: Resources::new(1, 1),
            requirements: DeviceRequirements::none(),
            strategy: StrategySpec::new(format!("strategy-{selector}")),
            priority: 0,
            shots: 1,
            threads: 0,
            retry: None,
            deadline: None,
        };
        let yaml = to_yaml(&spec);
        prop_assert!(!yaml.contains("strategyParams"));
        prop_assert_eq!(from_yaml(&yaml).unwrap(), spec);
    }
}

/// Non-property companion: the exact requirement boundary values used by the
/// filtering semantics round-trip bit-exactly (floats rendered via `{}`
/// preserve the shortest representation).
#[test]
fn boundary_requirements_roundtrip_bit_exact() {
    for bound in [0.0, 1.0, 0.25, 1e-9, 0.1 + 0.2, f64::MIN_POSITIVE] {
        let spec = JobSpec {
            name: "edge".into(),
            image: "qrio/edge:1".into(),
            qasm: String::new(),
            num_qubits: 2,
            resources: Resources::new(0, 0),
            requirements: DeviceRequirements {
                min_qubits: Some(0),
                max_two_qubit_error: Some(bound),
                max_readout_error: Some(bound),
                min_t1_us: Some(bound),
                min_t2_us: Some(bound),
            },
            strategy: StrategySpec::min_queue(),
            priority: 0,
            shots: 1,
            threads: 0,
            retry: None,
            deadline: None,
        };
        let parsed = from_yaml(&to_yaml(&spec)).unwrap();
        assert_eq!(parsed.requirements.max_two_qubit_error, Some(bound));
        assert_eq!(parsed.requirements.min_t1_us, Some(bound));
    }
}
