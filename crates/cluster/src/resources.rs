//! Classical resource quantities (CPU / memory) for nodes and jobs.

use std::fmt;

/// A classical resource request or capacity: CPU in millicores and memory in
/// MiB, the two quantities the QRIO visualizer asks the user for (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Resources {
    /// CPU in millicores (1000 = one core).
    pub cpu_millis: u64,
    /// Memory in MiB.
    pub memory_mib: u64,
}

impl Resources {
    /// Construct a resource quantity.
    pub fn new(cpu_millis: u64, memory_mib: u64) -> Self {
        Resources {
            cpu_millis,
            memory_mib,
        }
    }

    /// Whether this capacity can satisfy `request`.
    pub fn can_fit(&self, request: &Resources) -> bool {
        self.cpu_millis >= request.cpu_millis && self.memory_mib >= request.memory_mib
    }

    /// Capacity remaining after subtracting `used` (saturating).
    pub fn remaining(&self, used: &Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis.saturating_sub(used.cpu_millis),
            memory_mib: self.memory_mib.saturating_sub(used.memory_mib),
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &Resources) -> Resources {
        Resources {
            cpu_millis: self.cpu_millis + other.cpu_millis,
            memory_mib: self.memory_mib + other.memory_mib,
        }
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}m CPU / {} MiB", self.cpu_millis, self.memory_mib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_remaining() {
        let capacity = Resources::new(4000, 8192);
        let request = Resources::new(1000, 2048);
        assert!(capacity.can_fit(&request));
        assert!(!request.can_fit(&capacity));
        let left = capacity.remaining(&request);
        assert_eq!(left, Resources::new(3000, 6144));
        assert_eq!(request.plus(&request), Resources::new(2000, 4096));
        // Saturating subtraction never underflows.
        assert_eq!(request.remaining(&capacity), Resources::new(0, 0));
    }

    #[test]
    fn display() {
        assert_eq!(Resources::new(500, 256).to_string(), "500m CPU / 256 MiB");
    }
}
