//! Cluster nodes: one quantum device plus classical capacity per node.

use std::collections::BTreeMap;
use std::fmt;

use qrio_backend::{Backend, NodeLabels};

use crate::resources::Resources;

/// Health of a cluster node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeStatus {
    /// The node is accepting jobs.
    #[default]
    Ready,
    /// The node is down; QRIO (like Kubernetes) will restart it.
    NotReady,
    /// The node has been cordoned by the vendor and accepts no new jobs.
    Cordoned,
}

/// The full persistable state of a [`Node`], used by durability snapshots.
///
/// Unlike [`Node::from_backend`], restoring from a `NodeState` preserves the
/// label map verbatim (including custom labels), the live allocations, the
/// health status and the restart counter.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeState {
    /// The quantum device hosted by the node.
    pub backend: Backend,
    /// The full label map, custom labels included.
    pub labels: BTreeMap<String, String>,
    /// Total classical capacity.
    pub capacity: Resources,
    /// Classical resources allocated to bound jobs.
    pub allocated: Resources,
    /// Health status.
    pub status: NodeStatus,
    /// Lifetime restart counter.
    pub restart_count: u64,
}

/// A QRIO worker node: a quantum device, its vendor-provided backend spec, the
/// Kubernetes-style labels derived from it, and classical capacity (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    name: String,
    backend: Backend,
    labels: BTreeMap<String, String>,
    capacity: Resources,
    allocated: Resources,
    status: NodeStatus,
    restart_count: u64,
}

impl Node {
    /// Create a node from a backend with the given classical capacity.
    ///
    /// The node name is the backend name, and the QRIO labels of §3.1 are
    /// attached automatically.
    pub fn from_backend(backend: Backend, capacity: Resources) -> Self {
        let labels = NodeLabels::from_backend(&backend, capacity.cpu_millis, capacity.memory_mib)
            .to_string_map();
        Node {
            name: backend.name().to_string(),
            backend,
            labels,
            capacity,
            allocated: Resources::default(),
            status: NodeStatus::Ready,
            restart_count: 0,
        }
    }

    /// Rebuild a node from a previously exported [`NodeState`], byte-for-byte:
    /// no labels are rederived and no counters are reset.
    pub fn from_state(state: NodeState) -> Self {
        Node {
            name: state.backend.name().to_string(),
            backend: state.backend,
            labels: state.labels,
            capacity: state.capacity,
            allocated: state.allocated,
            status: state.status,
            restart_count: state.restart_count,
        }
    }

    /// Export the node's full persistable state for a durability snapshot.
    pub fn export_state(&self) -> NodeState {
        NodeState {
            backend: self.backend.clone(),
            labels: self.labels.clone(),
            capacity: self.capacity,
            allocated: self.allocated,
            status: self.status,
            restart_count: self.restart_count,
        }
    }

    /// The node name (equals the device name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The quantum device hosted by this node.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Kubernetes-style string labels.
    pub fn labels(&self) -> &BTreeMap<String, String> {
        &self.labels
    }

    /// Structured view of the QRIO labels.
    pub fn node_labels(&self) -> NodeLabels {
        NodeLabels::from_string_map(&self.labels)
    }

    /// Attach or overwrite a label.
    pub fn set_label(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.labels.insert(key.into(), value.into());
    }

    /// Total classical capacity.
    pub fn capacity(&self) -> Resources {
        self.capacity
    }

    /// Classical resources currently allocated to running jobs.
    pub fn allocated(&self) -> Resources {
        self.allocated
    }

    /// Classical resources still available.
    pub fn available(&self) -> Resources {
        self.capacity.remaining(&self.allocated)
    }

    /// Current health status.
    pub fn status(&self) -> NodeStatus {
        self.status
    }

    /// Whether the node can accept a job with the given resource request.
    pub fn can_accept(&self, request: &Resources) -> bool {
        self.status == NodeStatus::Ready && self.available().can_fit(request)
    }

    /// Reserve resources for a job. Returns `false` (and reserves nothing) if
    /// the node cannot accept the request.
    pub fn allocate(&mut self, request: &Resources) -> bool {
        if !self.can_accept(request) {
            return false;
        }
        self.allocated = self.allocated.plus(request);
        true
    }

    /// Release resources when a job finishes.
    pub fn release(&mut self, request: &Resources) {
        self.allocated = self.allocated.remaining(request);
    }

    /// Replace the node's backend after a calibration refresh (or drift
    /// event), recomputing the derived QRIO labels. Custom labels attached
    /// with [`Node::set_label`] are preserved; the `qrio.io/*` labels are
    /// overwritten from the new calibration.
    pub fn set_backend(&mut self, backend: Backend) {
        let labels =
            NodeLabels::from_backend(&backend, self.capacity.cpu_millis, self.capacity.memory_mib)
                .to_string_map();
        for (key, value) in labels {
            self.labels.insert(key, value);
        }
        self.backend = backend;
    }

    /// Mark the node as failed (self-healing will restart it).
    pub fn mark_not_ready(&mut self) {
        self.status = NodeStatus::NotReady;
    }

    /// Restart the node: clears allocations and returns it to `Ready`,
    /// incrementing the restart counter — the self-healing behaviour the paper
    /// gets from Kubernetes (§3.1).
    pub fn restart(&mut self) {
        self.allocated = Resources::default();
        self.status = NodeStatus::Ready;
        self.restart_count += 1;
    }

    /// Cordon the node so no new jobs are scheduled on it.
    pub fn cordon(&mut self) {
        self.status = NodeStatus::Cordoned;
    }

    /// Uncordon the node.
    pub fn uncordon(&mut self) {
        if self.status == NodeStatus::Cordoned {
            self.status = NodeStatus::Ready;
        }
    }

    /// How many times the node has been restarted.
    pub fn restart_count(&self) -> u64 {
        self.restart_count
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Node '{}' [{:?}]: {} qubits, {} available",
            self.name,
            self.status,
            self.backend.num_qubits(),
            self.available()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;

    fn node() -> Node {
        let backend = Backend::uniform("dev-a", topology::line(5), 0.01, 0.05);
        Node::from_backend(backend, Resources::new(4000, 8192))
    }

    #[test]
    fn labels_are_attached() {
        let n = node();
        assert_eq!(n.name(), "dev-a");
        assert_eq!(
            n.labels().get("qrio.io/qubits").map(String::as_str),
            Some("5")
        );
        assert_eq!(n.node_labels().num_qubits, 5);
        assert_eq!(n.node_labels().cpu_millis, 4000);
    }

    #[test]
    fn allocation_lifecycle() {
        let mut n = node();
        let req = Resources::new(2000, 4096);
        assert!(n.can_accept(&req));
        assert!(n.allocate(&req));
        assert_eq!(n.available(), Resources::new(2000, 4096));
        // A second identical job fits exactly; a third does not.
        assert!(n.allocate(&req));
        assert!(!n.allocate(&req));
        n.release(&req);
        assert!(n.can_accept(&req));
    }

    #[test]
    fn failure_and_restart() {
        let mut n = node();
        n.allocate(&Resources::new(1000, 1024));
        n.mark_not_ready();
        assert_eq!(n.status(), NodeStatus::NotReady);
        assert!(!n.can_accept(&Resources::new(1, 1)));
        n.restart();
        assert_eq!(n.status(), NodeStatus::Ready);
        assert_eq!(n.allocated(), Resources::default());
        assert_eq!(n.restart_count(), 1);
    }

    #[test]
    fn cordon_blocks_scheduling() {
        let mut n = node();
        n.cordon();
        assert!(!n.can_accept(&Resources::new(1, 1)));
        n.uncordon();
        assert!(n.can_accept(&Resources::new(1, 1)));
    }

    #[test]
    fn custom_labels() {
        let mut n = node();
        n.set_label("vendor", "umich");
        assert_eq!(n.labels().get("vendor").map(String::as_str), Some("umich"));
        assert!(n.to_string().contains("dev-a"));
    }
}
