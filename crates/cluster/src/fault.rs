//! Typed fault injection and retry policies.
//!
//! Real quantum clouds fail constantly: transient execution errors, stale
//! calibrations, jobs that hang past their window, devices that flap on and
//! off ("Three Months in the Life of Cloud Quantum Computing"). This module
//! makes those failure modes first-class in the cluster substrate:
//!
//! * [`FaultKind`] — the typed catalogue of injectable faults.
//! * [`FaultInjector`] — a deterministic, seeded injector consulted by
//!   `Cluster::run_job_attempt` before each execution. Decisions are a *pure
//!   function* of `(seed, job, node, attempt)` — no mutable RNG stream — so
//!   snapshot-based crash recovery replays the exact same fault schedule no
//!   matter where the snapshot cut the history.
//! * [`RetryPolicy`] / [`BackoffPolicy`] / [`RetryOn`] — the per-job policy
//!   that decides whether a failure is retried, how long to back off
//!   (fixed or exponential, with seed-derived deterministic jitter), and
//!   which failure classes qualify.

use std::fmt;

use crate::error::ClusterError;

/// FNV-1a over a string — used to fold job/node names into fault decisions.
fn fnv(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// SplitMix64 finalizer — turns a folded key into well-mixed bits.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` from mixed bits.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// The typed catalogue of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transient execution error: the shot run aborted mid-flight and an
    /// immediate retry is likely to succeed.
    TransientExecution,
    /// A calibration glitch: the device executed against stale calibration
    /// data and produced garbage.
    CalibrationGlitch,
    /// A hung / slow job: execution exceeded its window and was reaped.
    SlowJob,
    /// A device flap: the node dropped out mid-execution and needs a restart.
    DeviceFlap,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::TransientExecution,
        FaultKind::CalibrationGlitch,
        FaultKind::SlowJob,
        FaultKind::DeviceFlap,
    ];

    /// Stable machine-readable name (used in YAML and report keys).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransientExecution => "transient",
            FaultKind::CalibrationGlitch => "calibration",
            FaultKind::SlowJob => "slow",
            FaultKind::DeviceFlap => "flap",
        }
    }

    /// Human-readable failure reason recorded on the failed job.
    pub fn reason(self) -> &'static str {
        match self {
            FaultKind::TransientExecution => "injected fault: transient execution error",
            FaultKind::CalibrationGlitch => "injected fault: calibration glitch",
            FaultKind::SlowJob => "injected fault: job hung past its execution window",
            FaultKind::DeviceFlap => "injected fault: device flapped mid-execution",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic, seeded fault injector.
///
/// Rates are independent per-kind probabilities in `[0, 1)`; the decision for
/// one `(job, node, attempt)` triple draws a single uniform variate and walks
/// the cumulative rate ladder, so at most one fault fires per execution
/// attempt. Because the decision is stateless, crash recovery that replays
/// only part of the history still reproduces every fault byte-identically.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultInjector {
    /// Seed folded into every decision (and into backoff jitter).
    pub seed: u64,
    /// Probability of a transient execution error per attempt.
    pub transient_rate: f64,
    /// Probability of a calibration glitch per attempt.
    pub calibration_rate: f64,
    /// Probability of a hung/slow job per attempt.
    pub slow_rate: f64,
    /// Probability of a device flap per attempt.
    pub flap_rate: f64,
}

impl FaultInjector {
    /// An injector with the given seed and all rates zero (injects nothing
    /// until rates are raised).
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            seed,
            ..FaultInjector::default()
        }
    }

    /// The summed per-attempt fault probability.
    pub fn total_rate(&self) -> f64 {
        self.transient_rate + self.calibration_rate + self.slow_rate + self.flap_rate
    }

    /// Decide whether execution attempt `attempt` of `job` on `node` faults,
    /// and with which [`FaultKind`]. Pure function of the inputs and the
    /// seed: the same triple always yields the same verdict.
    pub fn decide(&self, job: &str, node: &str, attempt: u32) -> Option<FaultKind> {
        if self.total_rate() <= 0.0 {
            return None;
        }
        let key = self
            .seed
            .wrapping_add(fnv(job))
            .wrapping_add(fnv(node).rotate_left(17))
            .wrapping_add(u64::from(attempt).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let draw = unit(mix(key));
        let mut ladder = 0.0;
        for kind in FaultKind::ALL {
            ladder += match kind {
                FaultKind::TransientExecution => self.transient_rate,
                FaultKind::CalibrationGlitch => self.calibration_rate,
                FaultKind::SlowJob => self.slow_rate,
                FaultKind::DeviceFlap => self.flap_rate,
            };
            if draw < ladder {
                return Some(kind);
            }
        }
        None
    }
}

/// How long to wait before retry attempt `n` (1-based: the wait *before* the
/// second execution is `delay(seed, job, 1)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackoffPolicy {
    /// The same delay before every retry.
    Fixed {
        /// Delay in virtual time units (service ticks or milliseconds,
        /// depending on the driver).
        delay: u64,
    },
    /// Doubling delay: `base * 2^(attempt-1)`, capped at `max`, plus an
    /// optional deterministic jitter of up to half the raw delay derived
    /// from the seed and job name.
    Exponential {
        /// Delay before the first retry.
        base: u64,
        /// Upper bound on the delay (jitter included).
        max: u64,
        /// Whether to add seed-derived jitter (never exceeds `max`).
        jitter: bool,
    },
}

impl BackoffPolicy {
    /// The backoff delay before retry `attempt` (1-based). Deterministic:
    /// the same `(seed, job, attempt)` always yields the same delay.
    pub fn delay(&self, seed: u64, job: &str, attempt: u32) -> u64 {
        match *self {
            BackoffPolicy::Fixed { delay } => delay,
            BackoffPolicy::Exponential { base, max, jitter } => {
                let exp = attempt.saturating_sub(1).min(32);
                let raw = base.saturating_mul(1u64 << exp).min(max);
                if jitter {
                    let bits = mix(seed
                        .wrapping_add(fnv(job))
                        .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9)));
                    raw.saturating_add(bits % (raw / 2 + 1)).min(max)
                } else {
                    raw
                }
            }
        }
    }

    /// The largest delay this policy can ever produce for one retry.
    pub fn max_delay(&self) -> u64 {
        match *self {
            BackoffPolicy::Fixed { delay } => delay,
            BackoffPolicy::Exponential { max, .. } => max,
        }
    }
}

/// Which failure classes a [`RetryPolicy`] retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryOn {
    /// Retry injected transient execution errors.
    pub transient: bool,
    /// Retry injected calibration glitches.
    pub calibration: bool,
    /// Retry injected hung/slow-job faults.
    pub slow: bool,
    /// Retry injected device flaps.
    pub flap: bool,
    /// Retry real (non-injected) execution failures.
    pub execution: bool,
}

impl RetryOn {
    /// Retry every failure class.
    pub fn all() -> Self {
        RetryOn {
            transient: true,
            calibration: true,
            slow: true,
            flap: true,
            execution: true,
        }
    }

    /// Retry injected faults only (real execution failures stay terminal).
    pub fn faults_only() -> Self {
        RetryOn {
            execution: false,
            ..RetryOn::all()
        }
    }

    /// Whether `err` belongs to a class this policy retries. Scheduling and
    /// bookkeeping errors are never retryable.
    pub fn matches(&self, err: &ClusterError) -> bool {
        match err {
            ClusterError::InjectedFault { kind, .. } => match kind {
                FaultKind::TransientExecution => self.transient,
                FaultKind::CalibrationGlitch => self.calibration,
                FaultKind::SlowJob => self.slow,
                FaultKind::DeviceFlap => self.flap,
            },
            ClusterError::ExecutionFailed { .. } => self.execution,
            _ => false,
        }
    }
}

/// The per-job retry policy carried on a [`crate::JobSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total execution attempts allowed, the first included. A job whose
    /// `max_attempts`-th attempt fails is exhausted and dead-letters.
    pub max_attempts: u32,
    /// The delay schedule between attempts.
    pub backoff: BackoffPolicy,
    /// Which failure classes are retried at all.
    pub retry_on: RetryOn,
}

impl RetryPolicy {
    /// A fixed-delay policy retrying every failure class.
    pub fn fixed(max_attempts: u32, delay: u64) -> Self {
        RetryPolicy {
            max_attempts,
            backoff: BackoffPolicy::Fixed { delay },
            retry_on: RetryOn::all(),
        }
    }

    /// An exponential policy with seed-jitter, retrying every failure class.
    pub fn exponential(max_attempts: u32, base: u64, max: u64) -> Self {
        RetryPolicy {
            max_attempts,
            backoff: BackoffPolicy::Exponential {
                base,
                max,
                jitter: true,
            },
            retry_on: RetryOn::all(),
        }
    }

    /// The worst-case total time a job can spend backing off across all its
    /// retries (`None`-free: saturates instead of overflowing).
    pub fn worst_case_backoff(&self) -> u64 {
        let retries = u64::from(self.max_attempts.saturating_sub(1));
        self.backoff.max_delay().saturating_mul(retries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_their_inputs() {
        let injector = FaultInjector {
            seed: 42,
            transient_rate: 0.2,
            calibration_rate: 0.1,
            slow_rate: 0.05,
            flap_rate: 0.05,
        };
        for attempt in 0..50 {
            let a = injector.decide("job-a", "dev-1", attempt);
            let b = injector.decide("job-a", "dev-1", attempt);
            assert_eq!(a, b, "attempt {attempt} must be deterministic");
        }
        // Different seeds decide differently somewhere in the range.
        let other = FaultInjector {
            seed: 43,
            ..injector
        };
        assert!(
            (0..200).any(|n| injector.decide("j", "d", n) != other.decide("j", "d", n)),
            "seeds must matter"
        );
    }

    #[test]
    fn rates_control_fault_frequency() {
        let off = FaultInjector::new(7);
        assert_eq!(off.decide("j", "d", 0), None);

        let always = FaultInjector {
            seed: 7,
            transient_rate: 1.0,
            ..FaultInjector::default()
        };
        for attempt in 0..20 {
            assert_eq!(
                always.decide("j", "d", attempt),
                Some(FaultKind::TransientExecution)
            );
        }

        let mixed = FaultInjector {
            seed: 7,
            transient_rate: 0.25,
            calibration_rate: 0.25,
            slow_rate: 0.25,
            flap_rate: 0.25,
        };
        let mut seen = std::collections::BTreeSet::new();
        for attempt in 0..200 {
            if let Some(kind) = mixed.decide("j", "d", attempt) {
                seen.insert(kind.name());
            }
        }
        assert_eq!(seen.len(), 4, "every kind fires under uniform rates");
    }

    #[test]
    fn backoff_schedules_are_deterministic_and_capped() {
        let fixed = BackoffPolicy::Fixed { delay: 5 };
        assert_eq!(fixed.delay(1, "j", 1), 5);
        assert_eq!(fixed.delay(99, "j", 7), 5);
        assert_eq!(fixed.max_delay(), 5);

        let expo = BackoffPolicy::Exponential {
            base: 2,
            max: 40,
            jitter: false,
        };
        assert_eq!(expo.delay(0, "j", 1), 2);
        assert_eq!(expo.delay(0, "j", 2), 4);
        assert_eq!(expo.delay(0, "j", 3), 8);
        assert_eq!(expo.delay(0, "j", 63), 40, "capped at max");

        let jittered = BackoffPolicy::Exponential {
            base: 2,
            max: 40,
            jitter: true,
        };
        for attempt in 1..10 {
            let a = jittered.delay(11, "job", attempt);
            assert_eq!(a, jittered.delay(11, "job", attempt), "jitter is seeded");
            assert!(a <= 40, "jitter never exceeds max");
            assert!(a >= expo.delay(11, "job", attempt).min(40));
        }
        // Jitter actually moves some delay.
        assert!((1..20).any(|n| jittered.delay(11, "job", n) != expo.delay(11, "job", n)));
    }

    #[test]
    fn retry_on_classifies_failures() {
        let all = RetryOn::all();
        let faults = RetryOn::faults_only();
        let injected = ClusterError::InjectedFault {
            job: "j".into(),
            node: "n".into(),
            kind: FaultKind::DeviceFlap,
            attempt: 0,
        };
        let real = ClusterError::ExecutionFailed {
            job: "j".into(),
            reason: "boom".into(),
        };
        let unrelated = ClusterError::UnknownJob("j".into());
        assert!(all.matches(&injected));
        assert!(all.matches(&real));
        assert!(!all.matches(&unrelated));
        assert!(faults.matches(&injected));
        assert!(!faults.matches(&real));
    }

    #[test]
    fn worst_case_backoff_saturates() {
        let policy = RetryPolicy::fixed(4, 10);
        assert_eq!(policy.worst_case_backoff(), 30);
        let huge = RetryPolicy::fixed(u32::MAX, u64::MAX);
        assert_eq!(huge.worst_case_backoff(), u64::MAX);
        assert_eq!(RetryPolicy::exponential(3, 2, 16).worst_case_backoff(), 32);
    }
}
