//! A simulated container-image registry (the paper's Docker Hub).
//!
//! The QRIO master server containerizes each job — the user's QASM file, a
//! generated runner script, a requirements file and a Dockerfile — and pushes
//! the image to a registry that cluster nodes later pull from (§3.3). This
//! in-memory registry reproduces that flow without a container runtime.

use std::collections::BTreeMap;

use crate::error::ClusterError;

/// A container image: a named bundle of text files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageBundle {
    name: String,
    files: BTreeMap<String, String>,
}

impl ImageBundle {
    /// Create an empty image with the given name (e.g. `qrio/bv-job:latest`).
    pub fn new(name: impl Into<String>) -> Self {
        ImageBundle {
            name: name.into(),
            files: BTreeMap::new(),
        }
    }

    /// The image name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add (or replace) a file in the image.
    pub fn add_file(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        self.files.insert(path.into(), contents.into());
    }

    /// Read a file from the image.
    pub fn file(&self, path: &str) -> Option<&str> {
        self.files.get(path).map(String::as_str)
    }

    /// All file paths in the image.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.keys().map(String::as_str).collect()
    }

    /// Iterate over `(path, contents)` pairs in path order.
    pub fn files(&self) -> impl Iterator<Item = (&str, &str)> {
        self.files.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the image has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// The full persistable state of an [`ImageRegistry`], used by durability
/// snapshots. Carries the operation counters explicitly, since
/// [`ImageRegistry::push`] and [`ImageRegistry::pull`] bump them as a side
/// effect.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryState {
    /// Every stored image, in name order.
    pub images: Vec<ImageBundle>,
    /// Lifetime push-operation counter.
    pub push_count: u64,
    /// Lifetime pull-operation counter.
    pub pull_count: u64,
}

/// An in-memory image registry.
#[derive(Debug, Clone, Default)]
pub struct ImageRegistry {
    images: BTreeMap<String, ImageBundle>,
    push_count: u64,
    pull_count: u64,
}

impl ImageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ImageRegistry::default()
    }

    /// Rebuild a registry from a previously exported [`RegistryState`],
    /// counters included.
    pub fn from_state(state: RegistryState) -> Self {
        ImageRegistry {
            images: state
                .images
                .into_iter()
                .map(|image| (image.name().to_string(), image))
                .collect(),
            push_count: state.push_count,
            pull_count: state.pull_count,
        }
    }

    /// Export the registry's full persistable state for a durability snapshot.
    pub fn export_state(&self) -> RegistryState {
        RegistryState {
            images: self.images.values().cloned().collect(),
            push_count: self.push_count,
            pull_count: self.pull_count,
        }
    }

    /// Push an image, replacing any previous image with the same name.
    pub fn push(&mut self, image: ImageBundle) {
        self.push_count += 1;
        self.images.insert(image.name().to_string(), image);
    }

    /// Pull an image by name.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::ImageNotFound`] when no such image exists.
    pub fn pull(&mut self, name: &str) -> Result<ImageBundle, ClusterError> {
        self.pull_count += 1;
        self.images
            .get(name)
            .cloned()
            .ok_or_else(|| ClusterError::ImageNotFound(name.to_string()))
    }

    /// Remove an image by name, returning it when it existed. Used to
    /// garbage-collect the containers of jobs that reached a terminal failure
    /// and will never be pulled.
    pub fn remove(&mut self, name: &str) -> Option<ImageBundle> {
        self.images.remove(name)
    }

    /// Whether an image exists.
    pub fn contains(&self, name: &str) -> bool {
        self.images.contains_key(name)
    }

    /// Names of all stored images.
    pub fn image_names(&self) -> Vec<&str> {
        self.images.keys().map(String::as_str).collect()
    }

    /// Number of push operations performed.
    pub fn push_count(&self) -> u64 {
        self.push_count
    }

    /// Number of pull operations performed.
    pub fn pull_count(&self) -> u64 {
        self.pull_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_pull() {
        let mut registry = ImageRegistry::new();
        let mut image = ImageBundle::new("qrio/job:1");
        image.add_file("circuit.qasm", "OPENQASM 2.0;");
        image.add_file("run.py", "print('hi')");
        registry.push(image);
        assert!(registry.contains("qrio/job:1"));
        let pulled = registry.pull("qrio/job:1").unwrap();
        assert_eq!(pulled.file("circuit.qasm"), Some("OPENQASM 2.0;"));
        assert_eq!(pulled.len(), 2);
        assert_eq!(registry.push_count(), 1);
        assert_eq!(registry.pull_count(), 1);
    }

    #[test]
    fn missing_image_is_an_error() {
        let mut registry = ImageRegistry::new();
        assert!(matches!(
            registry.pull("nope"),
            Err(ClusterError::ImageNotFound(_))
        ));
    }

    #[test]
    fn remove_deletes_and_returns_the_image() {
        let mut registry = ImageRegistry::new();
        registry.push(ImageBundle::new("img"));
        assert_eq!(registry.remove("img").unwrap().name(), "img");
        assert!(!registry.contains("img"));
        assert!(registry.remove("img").is_none());
    }

    #[test]
    fn pushing_same_name_replaces() {
        let mut registry = ImageRegistry::new();
        let mut v1 = ImageBundle::new("img");
        v1.add_file("a", "1");
        registry.push(v1);
        let mut v2 = ImageBundle::new("img");
        v2.add_file("a", "2");
        registry.push(v2);
        assert_eq!(registry.pull("img").unwrap().file("a"), Some("2"));
        assert_eq!(registry.image_names(), vec!["img"]);
    }

    #[test]
    fn bundle_helpers() {
        let mut image = ImageBundle::new("x");
        assert!(image.is_empty());
        image.add_file("Dockerfile", "FROM python:3.11");
        assert!(!image.is_empty());
        assert_eq!(image.file_names(), vec!["Dockerfile"]);
        assert_eq!(image.file("missing"), None);
    }
}
