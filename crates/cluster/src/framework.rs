//! The scheduling framework: filter and score plugin traits plus the built-in
//! plugins, mirroring the Kubernetes scheduler-framework structure the paper
//! builds its custom ranking plugin on (§3.5).

use crate::job::JobSpec;
use crate::node::Node;

/// A filter plugin decides whether a node is *feasible* for a job.
///
/// Returning `Err(reason)` removes the node from consideration — the
/// "Filtering" stage of §3.5.
pub trait FilterPlugin {
    /// Plugin name used in events and error messages.
    fn name(&self) -> &str;

    /// Check whether `node` can host `spec`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the node is rejected.
    fn filter(&self, spec: &JobSpec, node: &Node) -> Result<(), String>;
}

/// A score plugin ranks feasible nodes; the node with the **lowest** score
/// wins, matching the paper's convention ("it is always better to get a lower
/// score", §4.2).
pub trait ScorePlugin {
    /// Plugin name used in events and error messages.
    fn name(&self) -> &str;

    /// Score `node` for `spec` (lower is better).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the node cannot be scored; such
    /// nodes are skipped.
    fn score(&self, spec: &JobSpec, node: &Node) -> Result<f64, String>;
}

/// Built-in filter: the node must have enough free CPU and memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceFitFilter;

impl FilterPlugin for ResourceFitFilter {
    fn name(&self) -> &str {
        "ResourceFit"
    }

    fn filter(&self, spec: &JobSpec, node: &Node) -> Result<(), String> {
        if node.can_accept(&spec.resources) {
            Ok(())
        } else {
            Err(format!(
                "insufficient classical resources: need {}, available {}",
                spec.resources,
                node.available()
            ))
        }
    }
}

/// Built-in filter: the device must have at least as many qubits as the job.
#[derive(Debug, Clone, Copy, Default)]
pub struct QubitCountFilter;

impl FilterPlugin for QubitCountFilter {
    fn name(&self) -> &str {
        "QubitCount"
    }

    fn filter(&self, spec: &JobSpec, node: &Node) -> Result<(), String> {
        let available = node.backend().num_qubits();
        if available >= spec.num_qubits {
            Ok(())
        } else {
            Err(format!(
                "device has {available} qubits, job needs {}",
                spec.num_qubits
            ))
        }
    }
}

/// Built-in filter: the node labels must satisfy the user's device-
/// characteristic bounds (max two-qubit error, T1/T2, readout error...).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceRequirementsFilter;

impl FilterPlugin for DeviceRequirementsFilter {
    fn name(&self) -> &str {
        "DeviceRequirements"
    }

    fn filter(&self, spec: &JobSpec, node: &Node) -> Result<(), String> {
        let labels = node.node_labels();
        if spec.requirements.is_satisfied_by(&labels) {
            Ok(())
        } else {
            Err(format!(
                "node labels ({labels}) do not satisfy the requested device bounds"
            ))
        }
    }
}

/// Built-in score plugin: rank nodes by their average two-qubit error. This is
/// the fallback when no meta-server-backed ranking plugin is configured.
#[derive(Debug, Clone, Copy, Default)]
pub struct AverageErrorScore;

impl ScorePlugin for AverageErrorScore {
    fn name(&self) -> &str {
        "AverageError"
    }

    fn score(&self, _spec: &JobSpec, node: &Node) -> Result<f64, String> {
        Ok(node.backend().avg_two_qubit_error() * 100.0)
    }
}

/// The default filter chain used by the QRIO scheduler: resource fit, qubit
/// count and the user's device-characteristic bounds.
pub fn default_filters() -> Vec<Box<dyn FilterPlugin>> {
    vec![
        Box::new(ResourceFitFilter),
        Box::new(QubitCountFilter),
        Box::new(DeviceRequirementsFilter),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{DeviceRequirements, StrategySpec};
    use crate::resources::Resources;
    use qrio_backend::{topology, Backend};

    fn node(name: &str, qubits: usize, two_q_err: f64) -> Node {
        let backend = Backend::uniform(name, topology::line(qubits), 0.01, two_q_err);
        Node::from_backend(backend, Resources::new(4000, 8192))
    }

    fn spec(qubits: usize) -> JobSpec {
        JobSpec {
            name: "test".into(),
            image: "img".into(),
            qasm: String::new(),
            num_qubits: qubits,
            resources: Resources::new(1000, 1024),
            requirements: DeviceRequirements {
                max_two_qubit_error: Some(0.1),
                ..DeviceRequirements::default()
            },
            strategy: StrategySpec::fidelity(0.9),
            priority: 0,
            shots: 128,
            threads: 0,
            retry: None,
            deadline: None,
        }
    }

    #[test]
    fn resource_fit_filter() {
        let mut n = node("a", 5, 0.05);
        let s = spec(3);
        assert!(ResourceFitFilter.filter(&s, &n).is_ok());
        n.allocate(&Resources::new(4000, 8192));
        assert!(ResourceFitFilter.filter(&s, &n).is_err());
    }

    #[test]
    fn qubit_count_filter() {
        let n = node("a", 5, 0.05);
        assert!(QubitCountFilter.filter(&spec(5), &n).is_ok());
        assert!(QubitCountFilter.filter(&spec(6), &n).is_err());
    }

    #[test]
    fn device_requirements_filter() {
        let good = node("good", 5, 0.05);
        let bad = node("bad", 5, 0.5);
        let s = spec(3);
        assert!(DeviceRequirementsFilter.filter(&s, &good).is_ok());
        assert!(DeviceRequirementsFilter.filter(&s, &bad).is_err());
    }

    #[test]
    fn average_error_score_orders_devices() {
        let quiet = node("quiet", 5, 0.02);
        let noisy = node("noisy", 5, 0.3);
        let s = spec(3);
        let sq = AverageErrorScore.score(&s, &quiet).unwrap();
        let sn = AverageErrorScore.score(&s, &noisy).unwrap();
        assert!(sq < sn);
    }

    #[test]
    fn default_filter_chain_has_three_stages() {
        let filters = default_filters();
        assert_eq!(filters.len(), 3);
        let names: Vec<&str> = filters.iter().map(|f| f.name()).collect();
        assert!(names.contains(&"ResourceFit"));
        assert!(names.contains(&"QubitCount"));
        assert!(names.contains(&"DeviceRequirements"));
    }
}
