//! Rendering and parsing of job specifications as YAML-like documents.
//!
//! The QRIO master server "constructs the Job Yaml file with the properties
//! passed to it" (§3.3). This module produces an equivalent human-readable
//! document for each [`JobSpec`] and can parse it back, so specs can be
//! inspected, stored, or shipped between components as plain text. The QASM
//! payload itself travels in the container image, not the spec, mirroring the
//! paper's design.

use std::fmt::Write as _;

use crate::error::ClusterError;
use crate::job::{DeviceRequirements, JobSpec, SelectionStrategy};
use crate::resources::Resources;

/// Render a job spec as a YAML-like document.
pub fn to_yaml(spec: &JobSpec) -> String {
    let mut out = String::new();
    out.push_str("apiVersion: qrio/v1\n");
    out.push_str("kind: QuantumJob\n");
    out.push_str("metadata:\n");
    let _ = writeln!(out, "  name: {}", spec.name);
    out.push_str("spec:\n");
    let _ = writeln!(out, "  image: {}", spec.image);
    let _ = writeln!(out, "  qubits: {}", spec.num_qubits);
    let _ = writeln!(out, "  shots: {}", spec.shots);
    out.push_str("  resources:\n");
    let _ = writeln!(out, "    cpuMillis: {}", spec.resources.cpu_millis);
    let _ = writeln!(out, "    memoryMib: {}", spec.resources.memory_mib);
    out.push_str("  requirements:\n");
    let write_opt_f = |out: &mut String, key: &str, value: Option<f64>| {
        if let Some(v) = value {
            let _ = writeln!(out, "    {key}: {v}");
        }
    };
    if let Some(q) = spec.requirements.min_qubits {
        let _ = writeln!(out, "    minQubits: {q}");
    }
    write_opt_f(
        &mut out,
        "maxTwoQubitError",
        spec.requirements.max_two_qubit_error,
    );
    write_opt_f(
        &mut out,
        "maxReadoutError",
        spec.requirements.max_readout_error,
    );
    write_opt_f(&mut out, "minT1Us", spec.requirements.min_t1_us);
    write_opt_f(&mut out, "minT2Us", spec.requirements.min_t2_us);
    match &spec.strategy {
        SelectionStrategy::Fidelity(target) => {
            out.push_str("  strategy: fidelity\n");
            let _ = writeln!(out, "  fidelityTarget: {target}");
        }
        SelectionStrategy::Topology(edges) => {
            out.push_str("  strategy: topology\n");
            out.push_str("  topologyEdges:\n");
            for (a, b) in edges {
                let _ = writeln!(out, "    - [{a}, {b}]");
            }
        }
    }
    out
}

/// Parse a YAML-like job document produced by [`to_yaml`].
///
/// The parser is intentionally narrow: it understands the structure this crate
/// emits (plus arbitrary indentation and blank lines), not arbitrary YAML.
/// The `qasm` field of the returned spec is empty — the circuit travels in the
/// container image.
///
/// # Errors
///
/// Returns [`ClusterError::SpecParse`] on malformed documents.
pub fn from_yaml(text: &str) -> Result<JobSpec, ClusterError> {
    let mut name = None;
    let mut image = None;
    let mut qubits = None;
    let mut shots = 1024u64;
    let mut cpu = 0u64;
    let mut mem = 0u64;
    let mut requirements = DeviceRequirements::default();
    let mut strategy_kind: Option<String> = None;
    let mut fidelity_target = None;
    let mut edges: Vec<(usize, usize)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.ends_with(':') && !line.contains(": ") {
            continue;
        }
        let err = |message: String| ClusterError::SpecParse {
            line: idx + 1,
            message,
        };
        if let Some(rest) = line.strip_prefix("- [") {
            let body = rest.trim_end_matches(']');
            let parts: Vec<&str> = body.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(err(format!("bad edge '{line}'")));
            }
            let a = parts[0]
                .parse()
                .map_err(|_| err(format!("bad edge endpoint '{}'", parts[0])))?;
            let b = parts[1]
                .parse()
                .map_err(|_| err(format!("bad edge endpoint '{}'", parts[1])))?;
            edges.push((a, b));
            continue;
        }
        let Some((key, value)) = line.split_once(':') else {
            return Err(err(format!("unrecognised line '{line}'")));
        };
        let key = key.trim();
        let value = value.trim();
        if value.is_empty() {
            continue;
        }
        let parse_f64 = |v: &str| {
            v.parse::<f64>()
                .map_err(|_| err(format!("bad number '{v}'")))
        };
        let parse_u64 = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| err(format!("bad integer '{v}'")))
        };
        match key {
            "apiVersion" | "kind" => {}
            "name" => name = Some(value.to_string()),
            "image" => image = Some(value.to_string()),
            "qubits" => qubits = Some(parse_u64(value)? as usize),
            "shots" => shots = parse_u64(value)?,
            "cpuMillis" => cpu = parse_u64(value)?,
            "memoryMib" => mem = parse_u64(value)?,
            "minQubits" => requirements.min_qubits = Some(parse_u64(value)? as usize),
            "maxTwoQubitError" => requirements.max_two_qubit_error = Some(parse_f64(value)?),
            "maxReadoutError" => requirements.max_readout_error = Some(parse_f64(value)?),
            "minT1Us" => requirements.min_t1_us = Some(parse_f64(value)?),
            "minT2Us" => requirements.min_t2_us = Some(parse_f64(value)?),
            "strategy" => strategy_kind = Some(value.to_string()),
            "fidelityTarget" => fidelity_target = Some(parse_f64(value)?),
            other => return Err(err(format!("unknown field '{other}'"))),
        }
    }

    let name = name.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing job name".into(),
    })?;
    let image = image.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing image".into(),
    })?;
    let num_qubits = qubits.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing qubit count".into(),
    })?;
    let strategy = match strategy_kind.as_deref() {
        Some("fidelity") => SelectionStrategy::Fidelity(fidelity_target.unwrap_or(1.0)),
        Some("topology") => SelectionStrategy::Topology(edges),
        other => {
            return Err(ClusterError::SpecParse {
                line: 0,
                message: format!("missing or unknown strategy {other:?}"),
            })
        }
    };
    Ok(JobSpec {
        name,
        image,
        qasm: String::new(),
        num_qubits,
        resources: Resources::new(cpu, mem),
        requirements,
        strategy,
        shots,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            name: "grover-job".into(),
            image: "qrio/grover:1".into(),
            qasm: "OPENQASM 2.0;".into(),
            num_qubits: 3,
            resources: Resources::new(1500, 2048),
            requirements: DeviceRequirements {
                min_qubits: Some(3),
                max_two_qubit_error: Some(0.25),
                max_readout_error: None,
                min_t1_us: Some(50_000.0),
                min_t2_us: None,
            },
            strategy: SelectionStrategy::Fidelity(0.85),
            shots: 2048,
        }
    }

    #[test]
    fn yaml_roundtrip_fidelity() {
        let spec = sample_spec();
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("kind: QuantumJob"));
        assert!(yaml.contains("strategy: fidelity"));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.name, spec.name);
        assert_eq!(parsed.num_qubits, 3);
        assert_eq!(parsed.resources, spec.resources);
        assert_eq!(parsed.requirements.min_qubits, Some(3));
        assert_eq!(parsed.requirements.max_two_qubit_error, Some(0.25));
        assert_eq!(parsed.shots, 2048);
        assert!(
            matches!(parsed.strategy, SelectionStrategy::Fidelity(f) if (f - 0.85).abs() < 1e-12)
        );
    }

    #[test]
    fn yaml_roundtrip_topology() {
        let mut spec = sample_spec();
        spec.strategy = SelectionStrategy::Topology(vec![(0, 1), (1, 2)]);
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("strategy: topology"));
        let parsed = from_yaml(&yaml).unwrap();
        match parsed.strategy {
            SelectionStrategy::Topology(edges) => assert_eq!(edges, vec![(0, 1), (1, 2)]),
            other => panic!("unexpected strategy {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(from_yaml("kind: QuantumJob\n").is_err());
        assert!(from_yaml("name: x\nimage: y\nqubits: abc\nstrategy: fidelity\n").is_err());
        assert!(from_yaml("name: x\nimage: y\nqubits: 2\nstrategy: warp\n").is_err());
        assert!(from_yaml("name: x\nimage: y\nqubits: 2\nstrategy: topology\n  - [0]\n").is_err());
        assert!(from_yaml("what even is this").is_err());
    }
}
