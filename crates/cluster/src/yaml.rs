//! Rendering and parsing of job specifications as YAML-like documents.
//!
//! The QRIO master server "constructs the Job Yaml file with the properties
//! passed to it" (§3.3). This module produces an equivalent human-readable
//! document for each [`JobSpec`] and can parse it back, so specs can be
//! inspected, stored, or shipped between components as plain text. The QASM
//! payload itself travels in the container image, not the spec, mirroring the
//! paper's design.
//!
//! The strategy section is open: any registry name round-trips, and the typed
//! [`StrategyParams`] are rendered under `strategyParams:` (floats keep a
//! decimal point, text is quoted, edge lists nest one `- [a, b]` item per
//! edge), so user-defined strategies serialize without touching this module.

use std::fmt::Write as _;

use crate::error::ClusterError;
use crate::job::{DeviceRequirements, JobSpec, ParamValue, StrategyParams, StrategySpec};
use crate::resources::Resources;

/// Render a job spec as a YAML-like document.
pub fn to_yaml(spec: &JobSpec) -> String {
    let mut out = String::new();
    out.push_str("apiVersion: qrio/v1\n");
    out.push_str("kind: QuantumJob\n");
    out.push_str("metadata:\n");
    let _ = writeln!(out, "  name: {}", spec.name);
    out.push_str("spec:\n");
    let _ = writeln!(out, "  image: {}", spec.image);
    let _ = writeln!(out, "  qubits: {}", spec.num_qubits);
    let _ = writeln!(out, "  shots: {}", spec.shots);
    if spec.threads != 0 {
        let _ = writeln!(out, "  threads: {}", spec.threads);
    }
    out.push_str("  resources:\n");
    let _ = writeln!(out, "    cpuMillis: {}", spec.resources.cpu_millis);
    let _ = writeln!(out, "    memoryMib: {}", spec.resources.memory_mib);
    out.push_str("  requirements:\n");
    let write_opt_f = |out: &mut String, key: &str, value: Option<f64>| {
        if let Some(v) = value {
            let _ = writeln!(out, "    {key}: {v}");
        }
    };
    if let Some(q) = spec.requirements.min_qubits {
        let _ = writeln!(out, "    minQubits: {q}");
    }
    write_opt_f(
        &mut out,
        "maxTwoQubitError",
        spec.requirements.max_two_qubit_error,
    );
    write_opt_f(
        &mut out,
        "maxReadoutError",
        spec.requirements.max_readout_error,
    );
    write_opt_f(&mut out, "minT1Us", spec.requirements.min_t1_us);
    write_opt_f(&mut out, "minT2Us", spec.requirements.min_t2_us);
    let _ = writeln!(out, "  strategy: {}", spec.strategy.name);
    if !spec.strategy.params.is_empty() {
        out.push_str("  strategyParams:\n");
        for (key, value) in spec.strategy.params.iter() {
            match value {
                ParamValue::Float(v) => {
                    let _ = writeln!(out, "    {key}: {}", render_float(*v));
                }
                ParamValue::Int(v) => {
                    let _ = writeln!(out, "    {key}: {v}");
                }
                ParamValue::Text(v) => {
                    let _ = writeln!(out, "    {key}: \"{}\"", escape_text(v));
                }
                ParamValue::Edges(edges) => {
                    let _ = writeln!(out, "    {key}:");
                    for (a, b) in edges {
                        let _ = writeln!(out, "      - [{a}, {b}]");
                    }
                }
            }
        }
    }
    out
}

/// Escape a text param so quotes and newlines survive the one-line rendering.
fn escape_text(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Invert [`escape_text`].
fn unescape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Render a float so that it parses back as a float: integral values keep a
/// trailing `.0` to distinguish them from `ParamValue::Int`.
fn render_float(v: f64) -> String {
    let text = format!("{v}");
    if text.contains('.') || text.contains('e') || text.contains("inf") || text.contains("NaN") {
        text
    } else {
        format!("{text}.0")
    }
}

/// Parse a YAML-like job document produced by [`to_yaml`].
///
/// The parser is intentionally narrow: it understands the structure this crate
/// emits (plus arbitrary indentation within a section and blank lines), not
/// arbitrary YAML. The `qasm` field of the returned spec is empty — the
/// circuit travels in the container image.
///
/// # Errors
///
/// Returns [`ClusterError::SpecParse`] on malformed documents.
pub fn from_yaml(text: &str) -> Result<JobSpec, ClusterError> {
    let mut name = None;
    let mut image = None;
    let mut qubits = None;
    let mut shots = 1024u64;
    let mut threads = 0usize;
    let mut cpu = 0u64;
    let mut mem = 0u64;
    let mut requirements = DeviceRequirements::default();
    let mut strategy_name: Option<String> = None;
    let mut params = StrategyParams::new();
    // Section tracking: once `strategyParams:` is seen, every line indented
    // deeper than it belongs to the params bag (param keys may otherwise
    // collide with top-level spec keys).
    let mut params_indent: Option<usize> = None;
    // While a `key:` param with no inline value is open, `- [a, b]` items
    // accumulate into its edge list.
    let mut open_edges: Option<(String, Vec<(usize, usize)>)> = None;

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let indent = raw.len() - raw.trim_start().len();
        let err = |message: String| ClusterError::SpecParse {
            line: idx + 1,
            message,
        };
        let in_params = params_indent.is_some_and(|p| indent > p);
        if !in_params {
            // Leaving the params section closes any pending edge list.
            if let Some((key, edges)) = open_edges.take() {
                params.set(key, ParamValue::Edges(edges));
            }
            params_indent = None;
        }

        if let Some(rest) = line.strip_prefix("- [") {
            let body = rest.trim_end_matches(']');
            let parts: Vec<&str> = body.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(err(format!("bad edge '{line}'")));
            }
            let a = parts[0]
                .parse()
                .map_err(|_| err(format!("bad edge endpoint '{}'", parts[0])))?;
            let b = parts[1]
                .parse()
                .map_err(|_| err(format!("bad edge endpoint '{}'", parts[1])))?;
            match open_edges.as_mut() {
                Some((_, edges)) => edges.push((a, b)),
                None => return Err(err(format!("edge '{line}' outside an edge list"))),
            }
            continue;
        }

        let Some((key, value)) = line.split_once(':') else {
            return Err(err(format!("unrecognised line '{line}'")));
        };
        let key = key.trim();
        let value = value.trim();

        if in_params {
            // A new param key closes any previously-open edge list.
            if let Some((open_key, edges)) = open_edges.take() {
                params.set(open_key, ParamValue::Edges(edges));
            }
            if value.is_empty() {
                open_edges = Some((key.to_string(), Vec::new()));
            } else {
                params.set(key, parse_param_value(value));
            }
            continue;
        }

        if key == "strategyParams" && value.is_empty() {
            params_indent = Some(indent);
            continue;
        }
        if value.is_empty() {
            // Other section headers (metadata:, spec:, resources:, ...).
            continue;
        }
        let parse_f64 = |v: &str| {
            v.parse::<f64>()
                .map_err(|_| err(format!("bad number '{v}'")))
        };
        let parse_u64 = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| err(format!("bad integer '{v}'")))
        };
        match key {
            "apiVersion" | "kind" => {}
            "name" => name = Some(value.to_string()),
            "image" => image = Some(value.to_string()),
            "qubits" => qubits = Some(parse_u64(value)? as usize),
            "shots" => shots = parse_u64(value)?,
            "threads" => threads = parse_u64(value)? as usize,
            "cpuMillis" => cpu = parse_u64(value)?,
            "memoryMib" => mem = parse_u64(value)?,
            "minQubits" => requirements.min_qubits = Some(parse_u64(value)? as usize),
            "maxTwoQubitError" => requirements.max_two_qubit_error = Some(parse_f64(value)?),
            "maxReadoutError" => requirements.max_readout_error = Some(parse_f64(value)?),
            "minT1Us" => requirements.min_t1_us = Some(parse_f64(value)?),
            "minT2Us" => requirements.min_t2_us = Some(parse_f64(value)?),
            "strategy" => strategy_name = Some(value.to_string()),
            other => return Err(err(format!("unknown field '{other}'"))),
        }
    }
    if let Some((key, edges)) = open_edges.take() {
        params.set(key, ParamValue::Edges(edges));
    }

    let name = name.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing job name".into(),
    })?;
    let image = image.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing image".into(),
    })?;
    let num_qubits = qubits.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing qubit count".into(),
    })?;
    let strategy_name = strategy_name.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing strategy name".into(),
    })?;
    Ok(JobSpec {
        name,
        image,
        qasm: String::new(),
        num_qubits,
        resources: Resources::new(cpu, mem),
        requirements,
        strategy: StrategySpec {
            name: strategy_name,
            params,
        },
        shots,
        threads,
    })
}

/// Infer the type of an inline param value: quoted -> text, integer-looking ->
/// int, float-looking -> float, anything else -> text.
fn parse_param_value(value: &str) -> ParamValue {
    if let Some(stripped) = value
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
    {
        return ParamValue::Text(unescape_text(stripped));
    }
    if let Ok(int) = value.parse::<u64>() {
        return ParamValue::Int(int);
    }
    if let Ok(float) = value.parse::<f64>() {
        return ParamValue::Float(float);
    }
    ParamValue::Text(value.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            name: "grover-job".into(),
            image: "qrio/grover:1".into(),
            qasm: "OPENQASM 2.0;".into(),
            num_qubits: 3,
            resources: Resources::new(1500, 2048),
            requirements: DeviceRequirements {
                min_qubits: Some(3),
                max_two_qubit_error: Some(0.25),
                max_readout_error: None,
                min_t1_us: Some(50_000.0),
                min_t2_us: None,
            },
            strategy: StrategySpec::fidelity(0.85),
            shots: 2048,
            threads: 0,
        }
    }

    #[test]
    fn yaml_roundtrip_fidelity() {
        let spec = sample_spec();
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("kind: QuantumJob"));
        assert!(yaml.contains("strategy: fidelity"));
        assert!(yaml.contains("target: 0.85"));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.name, spec.name);
        assert_eq!(parsed.num_qubits, 3);
        assert_eq!(parsed.resources, spec.resources);
        assert_eq!(parsed.requirements.min_qubits, Some(3));
        assert_eq!(parsed.requirements.max_two_qubit_error, Some(0.25));
        assert_eq!(parsed.shots, 2048);
        assert_eq!(parsed.strategy, spec.strategy);
    }

    #[test]
    fn threads_roundtrip_and_default() {
        // threads: 0 (auto) is the default and is omitted from the document.
        let spec = sample_spec();
        let yaml = to_yaml(&spec);
        assert!(!yaml.contains("threads:"));
        assert_eq!(from_yaml(&yaml).unwrap().threads, 0);
        // An explicit worker count round-trips.
        let mut spec = sample_spec();
        spec.threads = 4;
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("threads: 4"));
        assert_eq!(from_yaml(&yaml).unwrap().threads, 4);
    }

    #[test]
    fn yaml_roundtrip_topology() {
        let mut spec = sample_spec();
        spec.strategy = StrategySpec::topology(&[(0, 1), (1, 2)], 3);
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("strategy: topology"));
        assert!(yaml.contains("- [0, 1]"));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.strategy, spec.strategy);
        assert_eq!(
            parsed.strategy.params.get_edges("edges"),
            Some(&[(0, 1), (1, 2)][..])
        );
        assert_eq!(parsed.strategy.params.get_u64("qubits"), Some(3));
    }

    #[test]
    fn yaml_roundtrip_custom_strategy_with_every_param_type() {
        let mut spec = sample_spec();
        spec.strategy = StrategySpec::new("user-defined")
            .with_float("alpha", 1.0)
            .with_param("rounds", ParamValue::Int(7))
            .with_param("mode", ParamValue::Text("strict".into()))
            .with_param("pairs", ParamValue::Edges(vec![(2, 3)]));
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("strategy: user-defined"));
        // Integral floats keep a decimal point so the type round-trips.
        assert!(yaml.contains("alpha: 1.0"));
        assert!(yaml.contains("mode: \"strict\""));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.strategy, spec.strategy);
    }

    #[test]
    fn text_params_with_quotes_and_newlines_round_trip() {
        let mut spec = sample_spec();
        spec.strategy = StrategySpec::new("escaping").with_param(
            "tricky",
            ParamValue::Text("line one\nsays \"hi\" \\ done".into()),
        );
        let parsed = from_yaml(&to_yaml(&spec)).unwrap();
        assert_eq!(parsed.strategy, spec.strategy);
    }

    #[test]
    fn yaml_roundtrip_weighted_and_min_queue() {
        let mut spec = sample_spec();
        spec.strategy = StrategySpec::weighted(0.9, 1.0, 0.5, 0.25);
        let parsed = from_yaml(&to_yaml(&spec)).unwrap();
        assert_eq!(parsed.strategy, spec.strategy);

        spec.strategy = StrategySpec::min_queue();
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("strategy: min_queue"));
        assert!(!yaml.contains("strategyParams"));
        assert_eq!(from_yaml(&yaml).unwrap().strategy, spec.strategy);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(from_yaml("kind: QuantumJob\n").is_err());
        assert!(from_yaml("name: x\nimage: y\nqubits: abc\nstrategy: fidelity\n").is_err());
        assert!(from_yaml("name: x\nimage: y\nqubits: 2\n").is_err());
        assert!(from_yaml(
            "name: x\nimage: y\nqubits: 2\nstrategy: topology\nstrategyParams:\n    edges:\n      - [0]\n"
        )
        .is_err());
        assert!(from_yaml("what even is this").is_err());
        // An edge item with no open edge list is rejected.
        assert!(from_yaml("name: x\nimage: y\nqubits: 2\nstrategy: t\n- [0, 1]\n").is_err());
    }
}
