//! Rendering and parsing of job specifications as YAML-like documents.
//!
//! The QRIO master server "constructs the Job Yaml file with the properties
//! passed to it" (§3.3). This module produces an equivalent human-readable
//! document for each [`JobSpec`] and can parse it back, so specs can be
//! inspected, stored, or shipped between components as plain text. The QASM
//! payload itself travels in the container image, not the spec, mirroring the
//! paper's design.
//!
//! The strategy section is open: any registry name round-trips, and the typed
//! [`StrategyParams`] are rendered under `strategyParams:` (floats keep a
//! decimal point, text is quoted, edge lists nest one `- [a, b]` item per
//! edge), so user-defined strategies serialize without touching this module.

use std::fmt::Write as _;

use crate::error::ClusterError;
use crate::fault::{BackoffPolicy, RetryOn, RetryPolicy};
use crate::job::{DeviceRequirements, JobSpec, ParamValue, StrategyParams, StrategySpec};
use crate::resources::Resources;

/// Render a job spec as a YAML-like document.
pub fn to_yaml(spec: &JobSpec) -> String {
    let mut out = String::new();
    out.push_str("apiVersion: qrio/v1\n");
    out.push_str("kind: QuantumJob\n");
    out.push_str("metadata:\n");
    let _ = writeln!(out, "  name: {}", spec.name);
    out.push_str("spec:\n");
    let _ = writeln!(out, "  image: {}", spec.image);
    let _ = writeln!(out, "  qubits: {}", spec.num_qubits);
    let _ = writeln!(out, "  shots: {}", spec.shots);
    if spec.priority != 0 {
        let _ = writeln!(out, "  priority: {}", spec.priority);
    }
    if spec.threads != 0 {
        let _ = writeln!(out, "  threads: {}", spec.threads);
    }
    if let Some(deadline) = spec.deadline {
        let _ = writeln!(out, "  deadline: {deadline}");
    }
    if let Some(retry) = &spec.retry {
        let _ = writeln!(out, "  retryMaxAttempts: {}", retry.max_attempts);
        match retry.backoff {
            BackoffPolicy::Fixed { delay } => {
                out.push_str("  retryBackoff: fixed\n");
                let _ = writeln!(out, "  retryDelay: {delay}");
            }
            BackoffPolicy::Exponential { base, max, jitter } => {
                out.push_str("  retryBackoff: exponential\n");
                let _ = writeln!(out, "  retryDelay: {base}");
                let _ = writeln!(out, "  retryMaxDelay: {max}");
                let _ = writeln!(out, "  retryJitter: {jitter}");
            }
        }
        let _ = writeln!(out, "  retryOn: {}", render_retry_on(retry.retry_on));
    }
    out.push_str("  resources:\n");
    let _ = writeln!(out, "    cpuMillis: {}", spec.resources.cpu_millis);
    let _ = writeln!(out, "    memoryMib: {}", spec.resources.memory_mib);
    out.push_str("  requirements:\n");
    let write_opt_f = |out: &mut String, key: &str, value: Option<f64>| {
        if let Some(v) = value {
            let _ = writeln!(out, "    {key}: {v}");
        }
    };
    if let Some(q) = spec.requirements.min_qubits {
        let _ = writeln!(out, "    minQubits: {q}");
    }
    write_opt_f(
        &mut out,
        "maxTwoQubitError",
        spec.requirements.max_two_qubit_error,
    );
    write_opt_f(
        &mut out,
        "maxReadoutError",
        spec.requirements.max_readout_error,
    );
    write_opt_f(&mut out, "minT1Us", spec.requirements.min_t1_us);
    write_opt_f(&mut out, "minT2Us", spec.requirements.min_t2_us);
    let _ = writeln!(out, "  strategy: {}", spec.strategy.name);
    if !spec.strategy.params.is_empty() {
        out.push_str("  strategyParams:\n");
        for (key, value) in spec.strategy.params.iter() {
            match value {
                ParamValue::Float(v) => {
                    let _ = writeln!(out, "    {key}: {}", render_float(*v));
                }
                ParamValue::Int(v) => {
                    let _ = writeln!(out, "    {key}: {v}");
                }
                ParamValue::Text(v) => {
                    let _ = writeln!(out, "    {key}: \"{}\"", escape_text(v));
                }
                ParamValue::Edges(edges) => {
                    let _ = writeln!(out, "    {key}:");
                    for (a, b) in edges {
                        let _ = writeln!(out, "      - [{a}, {b}]");
                    }
                }
            }
        }
    }
    out
}

/// Escape a text param so quotes and newlines survive the one-line rendering.
fn escape_text(text: &str) -> String {
    text.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Invert [`escape_text`].
fn unescape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// Render a float so that it parses back as a float: integral values keep a
/// trailing `.0` to distinguish them from `ParamValue::Int`.
fn render_float(v: f64) -> String {
    let text = format!("{v}");
    if text.contains('.') || text.contains('e') || text.contains("inf") || text.contains("NaN") {
        text
    } else {
        format!("{text}.0")
    }
}

/// The scalar (single-value) fields of the document: each needs a value and
/// may appear at most once.
const SCALAR_FIELDS: &[&str] = &[
    "name",
    "image",
    "qubits",
    "shots",
    "priority",
    "threads",
    "deadline",
    "retryMaxAttempts",
    "retryBackoff",
    "retryDelay",
    "retryMaxDelay",
    "retryJitter",
    "retryOn",
    "cpuMillis",
    "memoryMib",
    "minQubits",
    "maxTwoQubitError",
    "maxReadoutError",
    "minT1Us",
    "minT2Us",
    "strategy",
];

/// Render a [`RetryOn`] class set: the `all` / `faults` / `none` presets when
/// one matches, else a comma-joined class list.
fn render_retry_on(on: RetryOn) -> String {
    if on == RetryOn::all() {
        return "all".into();
    }
    if on == RetryOn::faults_only() {
        return "faults".into();
    }
    let classes: Vec<&str> = [
        (on.transient, "transient"),
        (on.calibration, "calibration"),
        (on.slow, "slow"),
        (on.flap, "flap"),
        (on.execution, "execution"),
    ]
    .into_iter()
    .filter_map(|(enabled, name)| enabled.then_some(name))
    .collect();
    if classes.is_empty() {
        "none".into()
    } else {
        classes.join(",")
    }
}

/// Invert [`render_retry_on`].
fn parse_retry_on(text: &str) -> Result<RetryOn, String> {
    match text {
        "all" => return Ok(RetryOn::all()),
        "faults" => return Ok(RetryOn::faults_only()),
        "none" => {
            return Ok(RetryOn {
                transient: false,
                calibration: false,
                slow: false,
                flap: false,
                execution: false,
            })
        }
        _ => {}
    }
    let mut on = RetryOn {
        transient: false,
        calibration: false,
        slow: false,
        flap: false,
        execution: false,
    };
    for class in text.split(',').map(str::trim) {
        match class {
            "transient" => on.transient = true,
            "calibration" => on.calibration = true,
            "slow" => on.slow = true,
            "flap" => on.flap = true,
            "execution" => on.execution = true,
            other => return Err(format!("unknown retry class '{other}'")),
        }
    }
    Ok(on)
}

/// Parse a YAML-like job document produced by [`to_yaml`].
///
/// The parser is intentionally narrow: it understands the structure this crate
/// emits (plus arbitrary indentation within a section and blank lines), not
/// arbitrary YAML. The `qasm` field of the returned spec is empty — the
/// circuit travels in the container image. Scalar fields may appear at most
/// once; a duplicate is a parse error rather than silently last-wins.
///
/// # Errors
///
/// Returns [`ClusterError::SpecParse`] on malformed documents.
pub fn from_yaml(text: &str) -> Result<JobSpec, ClusterError> {
    let mut name = None;
    let mut image = None;
    let mut qubits = None;
    let mut shots = 1024u64;
    let mut priority = 0u8;
    let mut threads = 0usize;
    let mut deadline: Option<u64> = None;
    let mut retry_max_attempts: Option<u32> = None;
    let mut retry_backoff: Option<String> = None;
    let mut retry_delay: Option<u64> = None;
    let mut retry_max_delay: Option<u64> = None;
    let mut retry_jitter: Option<bool> = None;
    let mut retry_on: Option<RetryOn> = None;
    let mut cpu = 0u64;
    let mut mem = 0u64;
    let mut requirements = DeviceRequirements::default();
    let mut strategy_name: Option<String> = None;
    let mut params = StrategyParams::new();
    // Section tracking: once `strategyParams:` is seen, every line indented
    // deeper than it belongs to the params bag (param keys may otherwise
    // collide with top-level spec keys).
    let mut params_indent: Option<usize> = None;
    // While a `key:` param with no inline value is open, `- [a, b]` items
    // accumulate into its edge list.
    let mut open_edges: Option<(String, Vec<(usize, usize)>)> = None;
    // Scalar fields already assigned: a repeat is rejected rather than
    // silently last-wins (a duplicated requirement bound would otherwise
    // loosen the spec without a trace).
    let mut seen_scalars: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();

    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let indent = raw.len() - raw.trim_start().len();
        let err = |message: String| ClusterError::SpecParse {
            line: idx + 1,
            message,
        };
        let in_params = params_indent.is_some_and(|p| indent > p);
        if !in_params {
            // Leaving the params section closes any pending edge list.
            if let Some((key, edges)) = open_edges.take() {
                params.set(key, ParamValue::Edges(edges));
            }
            params_indent = None;
        }

        if let Some(rest) = line.strip_prefix("- [") {
            let Some(body) = rest.strip_suffix(']') else {
                return Err(err(format!("edge item '{line}' is not closed with ']'")));
            };
            let parts: Vec<&str> = body.split(',').map(str::trim).collect();
            if parts.len() != 2 {
                return Err(err(format!(
                    "edge item '{line}' must have exactly two endpoints"
                )));
            }
            let a = parts[0]
                .parse()
                .map_err(|_| err(format!("bad edge endpoint '{}'", parts[0])))?;
            let b = parts[1]
                .parse()
                .map_err(|_| err(format!("bad edge endpoint '{}'", parts[1])))?;
            match open_edges.as_mut() {
                Some((_, edges)) => edges.push((a, b)),
                None => return Err(err(format!("edge '{line}' outside an edge list"))),
            }
            continue;
        }

        let Some((key, value)) = line.split_once(':') else {
            return Err(err(format!("unrecognised line '{line}'")));
        };
        let key = key.trim();
        let value = value.trim();

        if in_params {
            // A new param key closes any previously-open edge list.
            if let Some((open_key, edges)) = open_edges.take() {
                params.set(open_key, ParamValue::Edges(edges));
            }
            // A repeated param key would silently last-wins, just like a
            // repeated scalar field — reject it the same way.
            if params.get(key).is_some() {
                return Err(err(format!("duplicate strategy param '{key}'")));
            }
            if value.is_empty() {
                open_edges = Some((key.to_string(), Vec::new()));
            } else {
                let parsed = parse_param_value(value)
                    .map_err(|message| err(format!("strategy param '{key}': {message}")))?;
                params.set(key, parsed);
            }
            continue;
        }

        if key == "strategyParams" && value.is_empty() {
            if !seen_scalars.insert("strategyParams") {
                return Err(err("duplicate section 'strategyParams'".into()));
            }
            params_indent = Some(indent);
            continue;
        }
        if value.is_empty() {
            // Scalar fields need a value; anything else with no value is a
            // section header (metadata:, spec:, resources:, ...).
            if SCALAR_FIELDS.contains(&key) {
                return Err(err(format!("field '{key}': missing value")));
            }
            continue;
        }
        if let Some(&field) = SCALAR_FIELDS.iter().find(|&&f| f == key) {
            if !seen_scalars.insert(field) {
                return Err(err(format!("duplicate field '{field}'")));
            }
        }
        let parse_f64 = |field: &str, v: &str| {
            v.parse::<f64>()
                .map_err(|_| err(format!("field '{field}': bad number '{v}'")))
        };
        let parse_u64 = |field: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| err(format!("field '{field}': bad non-negative integer '{v}'")))
        };
        match key {
            "apiVersion" | "kind" => {}
            "name" => name = Some(value.to_string()),
            "image" => image = Some(value.to_string()),
            "qubits" => qubits = Some(parse_u64(key, value)? as usize),
            "shots" => shots = parse_u64(key, value)?,
            "priority" => {
                priority = u8::try_from(parse_u64(key, value)?)
                    .map_err(|_| err(format!("field 'priority': '{value}' exceeds 255")))?
            }
            "threads" => threads = parse_u64(key, value)? as usize,
            "deadline" => deadline = Some(parse_u64(key, value)?),
            "retryMaxAttempts" => {
                retry_max_attempts =
                    Some(u32::try_from(parse_u64(key, value)?).map_err(|_| {
                        err(format!("field 'retryMaxAttempts': '{value}' exceeds u32"))
                    })?)
            }
            "retryBackoff" => {
                if value != "fixed" && value != "exponential" {
                    return Err(err(format!(
                        "field 'retryBackoff': '{value}' is neither 'fixed' nor 'exponential'"
                    )));
                }
                retry_backoff = Some(value.to_string());
            }
            "retryDelay" => retry_delay = Some(parse_u64(key, value)?),
            "retryMaxDelay" => retry_max_delay = Some(parse_u64(key, value)?),
            "retryJitter" => {
                retry_jitter =
                    Some(value.parse::<bool>().map_err(|_| {
                        err(format!("field 'retryJitter': '{value}' is not a boolean"))
                    })?)
            }
            "retryOn" => {
                retry_on = Some(
                    parse_retry_on(value)
                        .map_err(|message| err(format!("field 'retryOn': {message}")))?,
                )
            }
            "cpuMillis" => cpu = parse_u64(key, value)?,
            "memoryMib" => mem = parse_u64(key, value)?,
            "minQubits" => requirements.min_qubits = Some(parse_u64(key, value)? as usize),
            "maxTwoQubitError" => requirements.max_two_qubit_error = Some(parse_f64(key, value)?),
            "maxReadoutError" => requirements.max_readout_error = Some(parse_f64(key, value)?),
            "minT1Us" => requirements.min_t1_us = Some(parse_f64(key, value)?),
            "minT2Us" => requirements.min_t2_us = Some(parse_f64(key, value)?),
            "strategy" => strategy_name = Some(value.to_string()),
            other => return Err(err(format!("unknown field '{other}'"))),
        }
    }
    if let Some((key, edges)) = open_edges.take() {
        params.set(key, ParamValue::Edges(edges));
    }

    let name = name.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing job name".into(),
    })?;
    let image = image.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing image".into(),
    })?;
    let num_qubits = qubits.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing qubit count".into(),
    })?;
    let strategy_name = strategy_name.ok_or(ClusterError::SpecParse {
        line: 0,
        message: "missing strategy name".into(),
    })?;
    let retry = match retry_max_attempts {
        None => {
            // Retry tuning without a retryMaxAttempts anchor would silently
            // configure nothing — reject instead.
            if retry_backoff.is_some()
                || retry_delay.is_some()
                || retry_max_delay.is_some()
                || retry_jitter.is_some()
                || retry_on.is_some()
            {
                return Err(ClusterError::SpecParse {
                    line: 0,
                    message: "retry fields present but 'retryMaxAttempts' is missing".into(),
                });
            }
            None
        }
        Some(max_attempts) => {
            let delay = retry_delay.unwrap_or(1);
            let backoff = match retry_backoff.as_deref().unwrap_or("fixed") {
                "exponential" => BackoffPolicy::Exponential {
                    base: delay,
                    max: retry_max_delay.unwrap_or_else(|| delay.saturating_mul(32)),
                    jitter: retry_jitter.unwrap_or(false),
                },
                _ => BackoffPolicy::Fixed { delay },
            };
            Some(RetryPolicy {
                max_attempts,
                backoff,
                retry_on: retry_on.unwrap_or_else(RetryOn::all),
            })
        }
    };
    Ok(JobSpec {
        name,
        image,
        qasm: String::new(),
        num_qubits,
        resources: Resources::new(cpu, mem),
        requirements,
        strategy: StrategySpec {
            name: strategy_name,
            params,
        },
        priority,
        shots,
        threads,
        retry,
        deadline,
    })
}

/// Infer the type of an inline param value: quoted -> text, integer-looking ->
/// int, float-looking -> float, anything else -> text.
///
/// # Errors
///
/// Returns a message when a value opens a quote without closing it (or vice
/// versa) — silently treating it as bare text would corrupt the payload on
/// the round trip.
fn parse_param_value(value: &str) -> Result<ParamValue, String> {
    if let Some(rest) = value.strip_prefix('"') {
        return match rest.strip_suffix('"') {
            Some(stripped) => Ok(ParamValue::Text(unescape_text(stripped))),
            None => Err(format!("unterminated quoted value {value}")),
        };
    }
    if value.ends_with('"') {
        return Err(format!("quoted value {value} has no opening quote"));
    }
    if let Ok(int) = value.parse::<u64>() {
        return Ok(ParamValue::Int(int));
    }
    if let Ok(float) = value.parse::<f64>() {
        return Ok(ParamValue::Float(float));
    }
    Ok(ParamValue::Text(value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> JobSpec {
        JobSpec {
            name: "grover-job".into(),
            image: "qrio/grover:1".into(),
            qasm: "OPENQASM 2.0;".into(),
            num_qubits: 3,
            resources: Resources::new(1500, 2048),
            requirements: DeviceRequirements {
                min_qubits: Some(3),
                max_two_qubit_error: Some(0.25),
                max_readout_error: None,
                min_t1_us: Some(50_000.0),
                min_t2_us: None,
            },
            strategy: StrategySpec::fidelity(0.85),
            priority: 0,
            shots: 2048,
            threads: 0,
            retry: None,
            deadline: None,
        }
    }

    #[test]
    fn retry_and_deadline_roundtrip_and_default() {
        // No retry policy / deadline: the fields are omitted entirely.
        let spec = sample_spec();
        let yaml = to_yaml(&spec);
        assert!(!yaml.contains("retry"));
        assert!(!yaml.contains("deadline"));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.retry, None);
        assert_eq!(parsed.deadline, None);

        // Fixed backoff round-trips.
        let mut spec = sample_spec();
        spec.deadline = Some(500);
        spec.retry = Some(RetryPolicy {
            max_attempts: 3,
            backoff: BackoffPolicy::Fixed { delay: 7 },
            retry_on: RetryOn::faults_only(),
        });
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("deadline: 500"));
        assert!(yaml.contains("retryMaxAttempts: 3"));
        assert!(yaml.contains("retryBackoff: fixed"));
        assert!(yaml.contains("retryOn: faults"));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.retry, spec.retry);
        assert_eq!(parsed.deadline, Some(500));

        // Exponential backoff with jitter and a custom class set round-trips.
        spec.retry = Some(RetryPolicy {
            max_attempts: 5,
            backoff: BackoffPolicy::Exponential {
                base: 2,
                max: 64,
                jitter: true,
            },
            retry_on: RetryOn {
                transient: true,
                calibration: false,
                slow: true,
                flap: false,
                execution: false,
            },
        });
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("retryBackoff: exponential"));
        assert!(yaml.contains("retryJitter: true"));
        assert!(yaml.contains("retryOn: transient,slow"));
        assert_eq!(from_yaml(&yaml).unwrap().retry, spec.retry);
    }

    #[test]
    fn malformed_retry_fields_are_typed_errors() {
        let base = "name: x\nimage: y\nqubits: 2\nstrategy: fidelity\n";
        for (line, needle) in [
            ("retryMaxAttempts: -1\n", "retryMaxAttempts"),
            ("retryBackoff: quadratic\n", "retryBackoff"),
            ("retryMaxAttempts: 2\nretryJitter: maybe\n", "retryJitter"),
            ("retryMaxAttempts: 2\nretryOn: gamma-rays\n", "retryOn"),
            ("retryDelay: 5\n", "retryMaxAttempts"),
            ("deadline: soon\n", "deadline"),
        ] {
            let doc = format!("{base}{line}");
            match from_yaml(&doc) {
                Err(ClusterError::SpecParse { message, .. }) => assert!(
                    message.contains(needle),
                    "'{line}' error should mention '{needle}', got: {message}"
                ),
                other => panic!("'{line}' must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn yaml_roundtrip_fidelity() {
        let spec = sample_spec();
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("kind: QuantumJob"));
        assert!(yaml.contains("strategy: fidelity"));
        assert!(yaml.contains("target: 0.85"));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.name, spec.name);
        assert_eq!(parsed.num_qubits, 3);
        assert_eq!(parsed.resources, spec.resources);
        assert_eq!(parsed.requirements.min_qubits, Some(3));
        assert_eq!(parsed.requirements.max_two_qubit_error, Some(0.25));
        assert_eq!(parsed.shots, 2048);
        assert_eq!(parsed.strategy, spec.strategy);
    }

    #[test]
    fn threads_roundtrip_and_default() {
        // threads: 0 (auto) is the default and is omitted from the document.
        let spec = sample_spec();
        let yaml = to_yaml(&spec);
        assert!(!yaml.contains("threads:"));
        assert_eq!(from_yaml(&yaml).unwrap().threads, 0);
        // An explicit worker count round-trips.
        let mut spec = sample_spec();
        spec.threads = 4;
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("threads: 4"));
        assert_eq!(from_yaml(&yaml).unwrap().threads, 4);
    }

    #[test]
    fn priority_roundtrip_and_default() {
        // priority: 0 (the default) is omitted from the document.
        let spec = sample_spec();
        let yaml = to_yaml(&spec);
        assert!(!yaml.contains("priority:"));
        assert_eq!(from_yaml(&yaml).unwrap().priority, 0);
        // A non-default priority round-trips.
        let mut spec = sample_spec();
        spec.priority = 9;
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("priority: 9"));
        assert_eq!(from_yaml(&yaml).unwrap().priority, 9);
        // Out-of-range and malformed priorities are typed errors.
        let base = "name: x\nimage: y\nqubits: 2\nstrategy: fidelity\n";
        for bad in ["256", "-1", "2.5", "max"] {
            let doc = format!("{base}priority: {bad}\n");
            match from_yaml(&doc) {
                Err(ClusterError::SpecParse { line, message }) => {
                    assert_eq!(line, 5, "priority line number for '{bad}'");
                    assert!(
                        message.contains("priority"),
                        "error for '{bad}' names the field: {message}"
                    );
                }
                other => panic!("priority value '{bad}' must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn yaml_roundtrip_topology() {
        let mut spec = sample_spec();
        spec.strategy = StrategySpec::topology(&[(0, 1), (1, 2)], 3);
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("strategy: topology"));
        assert!(yaml.contains("- [0, 1]"));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.strategy, spec.strategy);
        assert_eq!(
            parsed.strategy.params.get_edges("edges"),
            Some(&[(0, 1), (1, 2)][..])
        );
        assert_eq!(parsed.strategy.params.get_u64("qubits"), Some(3));
    }

    #[test]
    fn yaml_roundtrip_custom_strategy_with_every_param_type() {
        let mut spec = sample_spec();
        spec.strategy = StrategySpec::new("user-defined")
            .with_float("alpha", 1.0)
            .with_param("rounds", ParamValue::Int(7))
            .with_param("mode", ParamValue::Text("strict".into()))
            .with_param("pairs", ParamValue::Edges(vec![(2, 3)]));
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("strategy: user-defined"));
        // Integral floats keep a decimal point so the type round-trips.
        assert!(yaml.contains("alpha: 1.0"));
        assert!(yaml.contains("mode: \"strict\""));
        let parsed = from_yaml(&yaml).unwrap();
        assert_eq!(parsed.strategy, spec.strategy);
    }

    #[test]
    fn text_params_with_quotes_and_newlines_round_trip() {
        let mut spec = sample_spec();
        spec.strategy = StrategySpec::new("escaping").with_param(
            "tricky",
            ParamValue::Text("line one\nsays \"hi\" \\ done".into()),
        );
        let parsed = from_yaml(&to_yaml(&spec)).unwrap();
        assert_eq!(parsed.strategy, spec.strategy);
    }

    #[test]
    fn yaml_roundtrip_weighted_and_min_queue() {
        let mut spec = sample_spec();
        spec.strategy = StrategySpec::weighted(0.9, 1.0, 0.5, 0.25);
        let parsed = from_yaml(&to_yaml(&spec)).unwrap();
        assert_eq!(parsed.strategy, spec.strategy);

        spec.strategy = StrategySpec::min_queue();
        let yaml = to_yaml(&spec);
        assert!(yaml.contains("strategy: min_queue"));
        assert!(!yaml.contains("strategyParams"));
        assert_eq!(from_yaml(&yaml).unwrap().strategy, spec.strategy);
    }

    /// Every malformed `threads:` value surfaces a typed, line-numbered
    /// [`ClusterError::SpecParse`] naming the field — never a panic.
    #[test]
    fn malformed_threads_values_are_typed_errors() {
        let base = "name: x\nimage: y\nqubits: 2\nstrategy: fidelity\n";
        for bad in ["-1", "2.5", "lots", "", "99999999999999999999999999"] {
            let doc = format!("{base}threads: {bad}\n");
            match from_yaml(&doc) {
                Err(ClusterError::SpecParse { line, message }) => {
                    assert_eq!(line, 5, "threads line number for '{bad}'");
                    assert!(
                        message.contains("threads"),
                        "error for '{bad}' names the field: {message}"
                    );
                }
                other => panic!("threads value '{bad}' must be rejected, got {other:?}"),
            }
        }
    }

    /// Malformed strategy params (bad edges, unterminated quotes) surface
    /// typed errors naming the offending construct.
    #[test]
    fn malformed_strategy_params_are_typed_errors() {
        let base = "name: x\nimage: y\nqubits: 2\nstrategy: custom\nstrategyParams:\n";
        let cases = [
            ("    edges:\n      - [0, 1\n", "closed"),
            ("    edges:\n      - [0]\n", "two endpoints"),
            ("    edges:\n      - [0, 1, 2]\n", "two endpoints"),
            ("    edges:\n      - [a, b]\n", "endpoint"),
            ("    mode: \"unterminated\n", "unterminated"),
            ("    mode: terminated\"\n", "opening quote"),
        ];
        for (body, needle) in cases {
            let doc = format!("{base}{body}");
            match from_yaml(&doc) {
                Err(ClusterError::SpecParse { message, .. }) => assert!(
                    message.contains(needle),
                    "'{body}' error should mention '{needle}', got: {message}"
                ),
                other => panic!("param body {body:?} must be rejected, got {other:?}"),
            }
        }
    }

    /// Every scalar field — including requirement bounds, whose silent
    /// last-wins duplication would loosen the spec — is rejected when it
    /// appears twice.
    #[test]
    fn duplicate_fields_are_rejected() {
        let base =
            "name: x\nimage: y\nqubits: 2\nshots: 8\npriority: 3\nthreads: 1\ncpuMillis: 10\n\
                    memoryMib: 10\nminQubits: 1\nmaxTwoQubitError: 0.1\nmaxReadoutError: 0.1\n\
                    minT1Us: 5.0\nminT2Us: 5.0\nstrategy: s\n";
        assert!(from_yaml(base).is_ok(), "each field once parses");
        for field in [
            "name: x",
            "image: y",
            "qubits: 2",
            "shots: 8",
            "priority: 7",
            "threads: 1",
            "cpuMillis: 10",
            "memoryMib: 10",
            "minQubits: 1",
            "maxTwoQubitError: 0.5",
            "maxReadoutError: 0.5",
            "minT1Us: 1.0",
            "minT2Us: 1.0",
            "strategy: s",
        ] {
            let doc = format!("{base}{field}\n");
            match from_yaml(&doc) {
                Err(ClusterError::SpecParse { message, .. }) => {
                    assert!(message.contains("duplicate"), "{field}: {message}");
                }
                other => panic!("duplicate '{field}' must be rejected, got {other:?}"),
            }
        }
    }

    /// Strategy params and the `strategyParams:` header follow the same
    /// no-silent-last-wins rule as scalar fields.
    #[test]
    fn duplicate_strategy_params_are_rejected() {
        let base = "name: x\nimage: y\nqubits: 2\nstrategy: s\nstrategyParams:\n";
        let cases = [
            "    alpha: 1.0\n    alpha: 2.0\n",
            "    edges:\n      - [0, 1]\n    edges:\n      - [1, 2]\n",
            "    alpha: 1.0\n    alpha:\n      - [0, 1]\n",
        ];
        for body in cases {
            let doc = format!("{base}{body}");
            match from_yaml(&doc) {
                Err(ClusterError::SpecParse { message, .. }) => {
                    assert!(message.contains("duplicate"), "{body:?}: {message}");
                }
                other => panic!("{body:?} must be rejected, got {other:?}"),
            }
        }
        // A repeated strategyParams: section header is rejected too.
        let doc = format!("{base}    alpha: 1.0\nstrategyParams:\n    beta: 2.0\n");
        match from_yaml(&doc) {
            Err(ClusterError::SpecParse { message, .. }) => {
                assert!(message.contains("duplicate section"), "{message}");
            }
            other => panic!("repeated strategyParams must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(from_yaml("kind: QuantumJob\n").is_err());
        assert!(from_yaml("name: x\nimage: y\nqubits: abc\nstrategy: fidelity\n").is_err());
        assert!(from_yaml("name: x\nimage: y\nqubits: 2\n").is_err());
        assert!(from_yaml(
            "name: x\nimage: y\nqubits: 2\nstrategy: topology\nstrategyParams:\n    edges:\n      - [0]\n"
        )
        .is_err());
        assert!(from_yaml("what even is this").is_err());
        // An edge item with no open edge list is rejected.
        assert!(from_yaml("name: x\nimage: y\nqubits: 2\nstrategy: t\n- [0, 1]\n").is_err());
    }
}
