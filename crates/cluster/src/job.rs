//! Quantum jobs: specifications, device requirements, status and logs.

use std::fmt;

use qrio_backend::NodeLabels;

use crate::resources::Resources;

/// User-specified bounds on device characteristics (§3.1/§3.2): the filter
/// stage of the QRIO scheduler compares these against node labels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceRequirements {
    /// Minimum number of qubits (usually the circuit width).
    pub min_qubits: Option<usize>,
    /// Maximum tolerated average two-qubit gate error.
    pub max_two_qubit_error: Option<f64>,
    /// Maximum tolerated average readout error.
    pub max_readout_error: Option<f64>,
    /// Minimum average T1 (µs).
    pub min_t1_us: Option<f64>,
    /// Minimum average T2 (µs).
    pub min_t2_us: Option<f64>,
}

impl DeviceRequirements {
    /// No constraints at all.
    pub fn none() -> Self {
        DeviceRequirements::default()
    }

    /// Whether a node with the given labels satisfies every requested bound.
    pub fn is_satisfied_by(&self, labels: &NodeLabels) -> bool {
        if let Some(min_qubits) = self.min_qubits {
            if labels.num_qubits < min_qubits {
                return false;
            }
        }
        if let Some(max_err) = self.max_two_qubit_error {
            if labels.avg_two_qubit_error > max_err {
                return false;
            }
        }
        if let Some(max_ro) = self.max_readout_error {
            if labels.avg_readout_error > max_ro {
                return false;
            }
        }
        if let Some(min_t1) = self.min_t1_us {
            if labels.avg_t1_us < min_t1 {
                return false;
            }
        }
        if let Some(min_t2) = self.min_t2_us {
            if labels.avg_t2_us < min_t2 {
                return false;
            }
        }
        true
    }
}

/// Which ranking strategy the user selected for the job (the final step of the
/// visualizer form, §3.2).
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionStrategy {
    /// Rank devices by Clifford-canary fidelity against this target fidelity.
    Fidelity(f64),
    /// Rank devices by similarity to this requested topology (edge list over
    /// the job's qubits).
    Topology(Vec<(usize, usize)>),
}

/// A job specification — the Rust equivalent of the Job YAML the master
/// server writes for the Kubernetes scheduler (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job name.
    pub name: String,
    /// Docker image name holding the job's files (simulated registry).
    pub image: String,
    /// The user's circuit as OpenQASM text.
    pub qasm: String,
    /// Number of qubits the job needs.
    pub num_qubits: usize,
    /// Classical resources requested.
    pub resources: Resources,
    /// Device-characteristic bounds for the filtering stage.
    pub requirements: DeviceRequirements,
    /// Ranking strategy (fidelity target or requested topology).
    pub strategy: SelectionStrategy,
    /// Number of shots to execute.
    pub shots: u64,
}

/// Lifecycle of a job inside the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, not yet scheduled.
    Pending,
    /// Bound to a node, awaiting execution.
    Scheduled {
        /// Node the job was bound to.
        node: String,
    },
    /// Currently executing on its node.
    Running {
        /// Node executing the job.
        node: String,
    },
    /// Finished successfully.
    Succeeded {
        /// Node that executed the job.
        node: String,
    },
    /// Failed (scheduling or execution).
    Failed {
        /// Human-readable failure reason.
        reason: String,
    },
}

impl JobPhase {
    /// The node associated with the phase, if any.
    pub fn node(&self) -> Option<&str> {
        match self {
            JobPhase::Scheduled { node }
            | JobPhase::Running { node }
            | JobPhase::Succeeded { node } => Some(node),
            _ => None,
        }
    }

    /// Whether the job has reached a terminal phase.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobPhase::Succeeded { .. } | JobPhase::Failed { .. })
    }
}

/// A job tracked by the cluster: its spec, phase, logs and result summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    spec: JobSpec,
    phase: JobPhase,
    logs: Vec<String>,
    /// Histogram of measurement outcomes (`bitstring -> count`) once finished.
    result_counts: Vec<(String, u64)>,
    /// Fidelity achieved against the noise-free reference, when computed.
    achieved_fidelity: Option<f64>,
}

impl Job {
    /// Wrap a spec into a pending job.
    pub fn new(spec: JobSpec) -> Self {
        Job {
            spec,
            phase: JobPhase::Pending,
            logs: Vec::new(),
            result_counts: Vec::new(),
            achieved_fidelity: None,
        }
    }

    /// The job specification.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Current phase.
    pub fn phase(&self) -> &JobPhase {
        &self.phase
    }

    /// Execution logs, in order (the logs the visualizer shows, §3.2).
    pub fn logs(&self) -> &[String] {
        &self.logs
    }

    /// Result histogram, once the job has succeeded.
    pub fn result_counts(&self) -> &[(String, u64)] {
        &self.result_counts
    }

    /// Fidelity achieved against the noise-free reference, when computed.
    pub fn achieved_fidelity(&self) -> Option<f64> {
        self.achieved_fidelity
    }

    /// Append a log line.
    pub fn log(&mut self, line: impl Into<String>) {
        self.logs.push(line.into());
    }

    /// Transition to a new phase (also logged).
    pub fn set_phase(&mut self, phase: JobPhase) {
        self.logs.push(format!("phase: {phase:?}"));
        self.phase = phase;
    }

    /// Record the execution result.
    pub fn set_result(&mut self, counts: Vec<(String, u64)>, fidelity: Option<f64>) {
        self.result_counts = counts;
        self.achieved_fidelity = fidelity;
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Job '{}' [{:?}]", self.spec.name, self.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(qubits: usize, two_q: f64, readout: f64, t1: f64) -> NodeLabels {
        NodeLabels {
            num_qubits: qubits,
            avg_two_qubit_error: two_q,
            avg_single_qubit_error: 0.01,
            avg_t1_us: t1,
            avg_t2_us: t1,
            avg_readout_error: readout,
            cpu_millis: 4000,
            memory_mib: 8192,
        }
    }

    #[test]
    fn requirements_filtering() {
        let req = DeviceRequirements {
            min_qubits: Some(10),
            max_two_qubit_error: Some(0.1),
            max_readout_error: Some(0.1),
            min_t1_us: Some(100.0),
            min_t2_us: None,
        };
        assert!(req.is_satisfied_by(&labels(20, 0.05, 0.05, 1000.0)));
        assert!(!req.is_satisfied_by(&labels(5, 0.05, 0.05, 1000.0)));
        assert!(!req.is_satisfied_by(&labels(20, 0.5, 0.05, 1000.0)));
        assert!(!req.is_satisfied_by(&labels(20, 0.05, 0.5, 1000.0)));
        assert!(!req.is_satisfied_by(&labels(20, 0.05, 0.05, 10.0)));
        assert!(DeviceRequirements::none().is_satisfied_by(&labels(1, 0.9, 0.9, 1.0)));
    }

    #[test]
    fn job_lifecycle_and_logs() {
        let spec = JobSpec {
            name: "bv-job".into(),
            image: "qrio/bv:latest".into(),
            qasm: "OPENQASM 2.0;".into(),
            num_qubits: 10,
            resources: Resources::new(500, 512),
            requirements: DeviceRequirements::none(),
            strategy: SelectionStrategy::Fidelity(0.9),
            shots: 1024,
        };
        let mut job = Job::new(spec);
        assert_eq!(job.phase(), &JobPhase::Pending);
        assert!(!job.phase().is_terminal());
        job.set_phase(JobPhase::Scheduled {
            node: "dev-a".into(),
        });
        assert_eq!(job.phase().node(), Some("dev-a"));
        job.set_phase(JobPhase::Running {
            node: "dev-a".into(),
        });
        job.log("transpiling circuit");
        job.set_result(vec![("1011".into(), 900), ("0000".into(), 124)], Some(0.88));
        job.set_phase(JobPhase::Succeeded {
            node: "dev-a".into(),
        });
        assert!(job.phase().is_terminal());
        assert_eq!(job.result_counts().len(), 2);
        assert_eq!(job.achieved_fidelity(), Some(0.88));
        assert!(job.logs().iter().any(|l| l.contains("transpiling")));
        assert!(job.to_string().contains("bv-job"));
    }

    #[test]
    fn failed_phase_has_no_node() {
        let phase = JobPhase::Failed {
            reason: "no devices matched".into(),
        };
        assert!(phase.is_terminal());
        assert_eq!(phase.node(), None);
    }
}
