//! Quantum jobs: specifications, device requirements, status and logs.

use std::collections::BTreeMap;
use std::fmt;

use qrio_backend::NodeLabels;

use crate::fault::RetryPolicy;
use crate::resources::Resources;

/// User-specified bounds on device characteristics (§3.1/§3.2): the filter
/// stage of the QRIO scheduler compares these against node labels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceRequirements {
    /// Minimum number of qubits (usually the circuit width).
    pub min_qubits: Option<usize>,
    /// Maximum tolerated average two-qubit gate error.
    pub max_two_qubit_error: Option<f64>,
    /// Maximum tolerated average readout error.
    pub max_readout_error: Option<f64>,
    /// Minimum average T1 (µs).
    pub min_t1_us: Option<f64>,
    /// Minimum average T2 (µs).
    pub min_t2_us: Option<f64>,
}

impl DeviceRequirements {
    /// No constraints at all.
    pub fn none() -> Self {
        DeviceRequirements::default()
    }

    /// Whether a node with the given labels satisfies every requested bound.
    pub fn is_satisfied_by(&self, labels: &NodeLabels) -> bool {
        if let Some(min_qubits) = self.min_qubits {
            if labels.num_qubits < min_qubits {
                return false;
            }
        }
        if let Some(max_err) = self.max_two_qubit_error {
            if labels.avg_two_qubit_error > max_err {
                return false;
            }
        }
        if let Some(max_ro) = self.max_readout_error {
            if labels.avg_readout_error > max_ro {
                return false;
            }
        }
        if let Some(min_t1) = self.min_t1_us {
            if labels.avg_t1_us < min_t1 {
                return false;
            }
        }
        if let Some(min_t2) = self.min_t2_us {
            if labels.avg_t2_us < min_t2 {
                return false;
            }
        }
        true
    }
}

/// One typed parameter value of a ranking strategy.
///
/// Strategy parameters travel with the job spec (and its YAML rendering), so
/// they are restricted to a small set of serializable shapes rather than
/// arbitrary Rust values.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A floating-point parameter (e.g. a fidelity target or a weight).
    Float(f64),
    /// An unsigned integer parameter (e.g. a qubit count).
    Int(u64),
    /// A free-form text parameter.
    Text(String),
    /// An undirected edge list over the job's qubits (e.g. a requested
    /// interaction topology).
    Edges(Vec<(usize, usize)>),
}

/// The typed parameter bag of a [`StrategySpec`]: ordered `name -> value`
/// pairs that a ranking strategy interprets. The cluster substrate attaches no
/// semantics to the keys; validation belongs to the strategy implementation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StrategyParams {
    values: BTreeMap<String, ParamValue>,
}

impl StrategyParams {
    /// An empty parameter bag.
    pub fn new() -> Self {
        StrategyParams::default()
    }

    /// Insert (or overwrite) a parameter.
    pub fn set(&mut self, key: impl Into<String>, value: ParamValue) -> &mut Self {
        self.values.insert(key.into(), value);
        self
    }

    /// Look up a raw parameter value.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.values.get(key)
    }

    /// Look up a float parameter; integers are widened to floats.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.values.get(key) {
            Some(ParamValue::Float(v)) => Some(*v),
            Some(ParamValue::Int(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// Look up an integer parameter.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.values.get(key) {
            Some(ParamValue::Int(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up a text parameter.
    pub fn get_text(&self, key: &str) -> Option<&str> {
        match self.values.get(key) {
            Some(ParamValue::Text(v)) => Some(v),
            _ => None,
        }
    }

    /// Look up an edge-list parameter.
    pub fn get_edges(&self, key: &str) -> Option<&[(usize, usize)]> {
        match self.values.get(key) {
            Some(ParamValue::Edges(v)) => Some(v),
            _ => None,
        }
    }

    /// Iterate over the parameters in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Which ranking strategy the user selected for the job (the final step of the
/// visualizer form, §3.2), referenced **by name** with typed parameters.
///
/// This replaces the old closed `SelectionStrategy` enum: the cluster only
/// transports the strategy name and its parameters; the semantics live in the
/// `RankingStrategy` implementation registered under that name in the meta
/// server's strategy registry. New policies therefore need no changes in this
/// crate.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategySpec {
    /// Registry name of the ranking strategy (e.g. `"fidelity"`).
    pub name: String,
    /// Typed parameters interpreted by the strategy.
    pub params: StrategyParams,
}

impl StrategySpec {
    /// A strategy reference with no parameters.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        StrategySpec {
            name: name.into(),
            params: StrategyParams::new(),
        }
    }

    /// Builder-style: attach a parameter.
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: ParamValue) -> Self {
        self.params.set(key, value);
        self
    }

    /// Builder-style: attach a float parameter.
    #[must_use]
    pub fn with_float(self, key: impl Into<String>, value: f64) -> Self {
        self.with_param(key, ParamValue::Float(value))
    }

    /// Convenience constructor for the built-in Clifford-canary fidelity
    /// strategy (`"fidelity"`, parameter `target`). The name is merely a
    /// well-known registry key; this crate attaches no semantics to it.
    #[must_use]
    pub fn fidelity(target: f64) -> Self {
        StrategySpec::new(strategy_names::FIDELITY).with_float(strategy_names::PARAM_TARGET, target)
    }

    /// Convenience constructor for the built-in topology-matching strategy
    /// (`"topology"`, parameters `edges` and `qubits`).
    #[must_use]
    pub fn topology(edges: &[(usize, usize)], num_qubits: usize) -> Self {
        StrategySpec::new(strategy_names::TOPOLOGY)
            .with_param(
                strategy_names::PARAM_EDGES,
                ParamValue::Edges(edges.to_vec()),
            )
            .with_param(
                strategy_names::PARAM_QUBITS,
                ParamValue::Int(num_qubits as u64),
            )
    }

    /// Convenience constructor for the built-in weighted multi-objective
    /// strategy (`"weighted"`): canary-fidelity score blended with queue depth
    /// and classical utilization.
    #[must_use]
    pub fn weighted(
        target: f64,
        fidelity_weight: f64,
        queue_weight: f64,
        utilization_weight: f64,
    ) -> Self {
        StrategySpec::new(strategy_names::WEIGHTED)
            .with_float(strategy_names::PARAM_TARGET, target)
            .with_float(strategy_names::PARAM_FIDELITY_WEIGHT, fidelity_weight)
            .with_float(strategy_names::PARAM_QUEUE_WEIGHT, queue_weight)
            .with_float(strategy_names::PARAM_UTILIZATION_WEIGHT, utilization_weight)
    }

    /// Convenience constructor for the built-in min-queue-time baseline
    /// strategy (`"min_queue"`, no parameters).
    #[must_use]
    pub fn min_queue() -> Self {
        StrategySpec::new(strategy_names::MIN_QUEUE)
    }
}

/// Well-known strategy and parameter names used by the convenience
/// constructors. The default registry in `qrio-meta` registers strategies
/// under exactly these names; user-defined strategies pick their own.
pub mod strategy_names {
    /// Clifford-canary fidelity ranking (§3.4.1).
    pub const FIDELITY: &str = "fidelity";
    /// Topology-similarity ranking (§3.4.2).
    pub const TOPOLOGY: &str = "topology";
    /// Weighted multi-objective ranking (fidelity + queue + utilization).
    pub const WEIGHTED: &str = "weighted";
    /// Min-queue-time baseline ranking.
    pub const MIN_QUEUE: &str = "min_queue";
    /// Fidelity target in `[0, 1]`.
    pub const PARAM_TARGET: &str = "target";
    /// Requested interaction edges.
    pub const PARAM_EDGES: &str = "edges";
    /// Number of qubits the requested topology spans.
    pub const PARAM_QUBITS: &str = "qubits";
    /// Weight of the fidelity component in the weighted strategy.
    pub const PARAM_FIDELITY_WEIGHT: &str = "fidelity_weight";
    /// Weight of the queue-depth component in the weighted strategy.
    pub const PARAM_QUEUE_WEIGHT: &str = "queue_weight";
    /// Weight of the utilization component in the weighted strategy.
    pub const PARAM_UTILIZATION_WEIGHT: &str = "utilization_weight";
}

/// A job specification — the Rust equivalent of the Job YAML the master
/// server writes for the Kubernetes scheduler (§3.3).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job name.
    pub name: String,
    /// Docker image name holding the job's files (simulated registry).
    pub image: String,
    /// The user's circuit as OpenQASM text.
    pub qasm: String,
    /// Number of qubits the job needs.
    pub num_qubits: usize,
    /// Classical resources requested.
    pub resources: Resources,
    /// Device-characteristic bounds for the filtering stage.
    pub requirements: DeviceRequirements,
    /// Ranking strategy reference (registry name plus typed parameters).
    pub strategy: StrategySpec,
    /// Scheduling priority: higher values are admitted first by batch
    /// service loops; jobs with equal priority drain in submission order.
    pub priority: u8,
    /// Number of shots to execute.
    pub shots: u64,
    /// Worker threads for shot execution on the node (`0` = auto-detect).
    /// Thread count never changes results — shot RNG shards are derived from
    /// the shot count alone — so this is purely a latency knob.
    pub threads: usize,
    /// Optional retry policy: how failed execution attempts are retried.
    /// `None` means every failure is terminal on the first attempt.
    pub retry: Option<RetryPolicy>,
    /// Optional virtual-time deadline (ticks after admission). A job still
    /// non-terminal when the deadline passes fails with `DeadlineExceeded`.
    pub deadline: Option<u64>,
}

/// Lifecycle of a job inside the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted, not yet scheduled.
    Pending,
    /// Bound to a node, awaiting execution.
    Scheduled {
        /// Node the job was bound to.
        node: String,
    },
    /// Currently executing on its node.
    Running {
        /// Node executing the job.
        node: String,
    },
    /// Finished successfully.
    Succeeded {
        /// Node that executed the job.
        node: String,
    },
    /// Failed (scheduling or execution).
    Failed {
        /// Human-readable failure reason.
        reason: String,
    },
    /// Cancelled by the user before it started running.
    Cancelled {
        /// Why the job was cancelled.
        reason: String,
    },
}

impl JobPhase {
    /// The bare variant name (no payload) — for user-facing messages where
    /// Debug formatting would leak reasons and result payloads.
    pub fn name(&self) -> &'static str {
        match self {
            JobPhase::Pending => "Pending",
            JobPhase::Scheduled { .. } => "Scheduled",
            JobPhase::Running { .. } => "Running",
            JobPhase::Succeeded { .. } => "Succeeded",
            JobPhase::Failed { .. } => "Failed",
            JobPhase::Cancelled { .. } => "Cancelled",
        }
    }

    /// The node associated with the phase, if any.
    pub fn node(&self) -> Option<&str> {
        match self {
            JobPhase::Scheduled { node }
            | JobPhase::Running { node }
            | JobPhase::Succeeded { node } => Some(node),
            _ => None,
        }
    }

    /// Whether the job has reached a terminal phase.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobPhase::Succeeded { .. } | JobPhase::Failed { .. } | JobPhase::Cancelled { .. }
        )
    }
}

/// The full persistable state of a [`Job`], used by durability snapshots.
///
/// Restoring through [`Job::from_state`] sets every field verbatim — in
/// particular it does **not** route through [`Job::set_phase`], which would
/// append a spurious log line.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// The job specification.
    pub spec: JobSpec,
    /// Lifecycle phase at snapshot time.
    pub phase: JobPhase,
    /// Accumulated log lines.
    pub logs: Vec<String>,
    /// Result histogram, when finished.
    pub result_counts: Vec<(String, u64)>,
    /// Achieved fidelity, when computed.
    pub achieved_fidelity: Option<f64>,
}

/// A job tracked by the cluster: its spec, phase, logs and result summary.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    spec: JobSpec,
    phase: JobPhase,
    logs: Vec<String>,
    /// Histogram of measurement outcomes (`bitstring -> count`) once finished.
    result_counts: Vec<(String, u64)>,
    /// Fidelity achieved against the noise-free reference, when computed.
    achieved_fidelity: Option<f64>,
}

impl Job {
    /// Wrap a spec into a pending job.
    pub fn new(spec: JobSpec) -> Self {
        Job {
            spec,
            phase: JobPhase::Pending,
            logs: Vec::new(),
            result_counts: Vec::new(),
            achieved_fidelity: None,
        }
    }

    /// Rebuild a job from a previously exported [`JobSnapshot`], verbatim.
    pub fn from_state(state: JobSnapshot) -> Self {
        Job {
            spec: state.spec,
            phase: state.phase,
            logs: state.logs,
            result_counts: state.result_counts,
            achieved_fidelity: state.achieved_fidelity,
        }
    }

    /// Export the job's full persistable state for a durability snapshot.
    pub fn export_state(&self) -> JobSnapshot {
        JobSnapshot {
            spec: self.spec.clone(),
            phase: self.phase.clone(),
            logs: self.logs.clone(),
            result_counts: self.result_counts.clone(),
            achieved_fidelity: self.achieved_fidelity,
        }
    }

    /// The job specification.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// The job name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Current phase.
    pub fn phase(&self) -> &JobPhase {
        &self.phase
    }

    /// Execution logs, in order (the logs the visualizer shows, §3.2).
    pub fn logs(&self) -> &[String] {
        &self.logs
    }

    /// Result histogram, once the job has succeeded.
    pub fn result_counts(&self) -> &[(String, u64)] {
        &self.result_counts
    }

    /// Fidelity achieved against the noise-free reference, when computed.
    pub fn achieved_fidelity(&self) -> Option<f64> {
        self.achieved_fidelity
    }

    /// Append a log line.
    pub fn log(&mut self, line: impl Into<String>) {
        self.logs.push(line.into());
    }

    /// Transition to a new phase (also logged).
    pub fn set_phase(&mut self, phase: JobPhase) {
        self.logs.push(format!("phase: {phase:?}"));
        self.phase = phase;
    }

    /// Record the execution result.
    pub fn set_result(&mut self, counts: Vec<(String, u64)>, fidelity: Option<f64>) {
        self.result_counts = counts;
        self.achieved_fidelity = fidelity;
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Job '{}' [{:?}]", self.spec.name, self.phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(qubits: usize, two_q: f64, readout: f64, t1: f64) -> NodeLabels {
        NodeLabels {
            num_qubits: qubits,
            avg_two_qubit_error: two_q,
            avg_single_qubit_error: 0.01,
            avg_t1_us: t1,
            avg_t2_us: t1,
            avg_readout_error: readout,
            cpu_millis: 4000,
            memory_mib: 8192,
        }
    }

    #[test]
    fn requirements_filtering() {
        let req = DeviceRequirements {
            min_qubits: Some(10),
            max_two_qubit_error: Some(0.1),
            max_readout_error: Some(0.1),
            min_t1_us: Some(100.0),
            min_t2_us: None,
        };
        assert!(req.is_satisfied_by(&labels(20, 0.05, 0.05, 1000.0)));
        assert!(!req.is_satisfied_by(&labels(5, 0.05, 0.05, 1000.0)));
        assert!(!req.is_satisfied_by(&labels(20, 0.5, 0.05, 1000.0)));
        assert!(!req.is_satisfied_by(&labels(20, 0.05, 0.5, 1000.0)));
        assert!(!req.is_satisfied_by(&labels(20, 0.05, 0.05, 10.0)));
        assert!(DeviceRequirements::none().is_satisfied_by(&labels(1, 0.9, 0.9, 1.0)));
    }

    #[test]
    fn job_lifecycle_and_logs() {
        let spec = JobSpec {
            name: "bv-job".into(),
            image: "qrio/bv:latest".into(),
            qasm: "OPENQASM 2.0;".into(),
            num_qubits: 10,
            resources: Resources::new(500, 512),
            requirements: DeviceRequirements::none(),
            strategy: StrategySpec::fidelity(0.9),
            priority: 0,
            shots: 1024,
            threads: 0,
            retry: None,
            deadline: None,
        };
        let mut job = Job::new(spec);
        assert_eq!(job.phase(), &JobPhase::Pending);
        assert!(!job.phase().is_terminal());
        job.set_phase(JobPhase::Scheduled {
            node: "dev-a".into(),
        });
        assert_eq!(job.phase().node(), Some("dev-a"));
        job.set_phase(JobPhase::Running {
            node: "dev-a".into(),
        });
        job.log("transpiling circuit");
        job.set_result(vec![("1011".into(), 900), ("0000".into(), 124)], Some(0.88));
        job.set_phase(JobPhase::Succeeded {
            node: "dev-a".into(),
        });
        assert!(job.phase().is_terminal());
        assert_eq!(job.result_counts().len(), 2);
        assert_eq!(job.achieved_fidelity(), Some(0.88));
        assert!(job.logs().iter().any(|l| l.contains("transpiling")));
        assert!(job.to_string().contains("bv-job"));
    }

    #[test]
    fn strategy_spec_params_are_typed_and_open() {
        let spec = StrategySpec::new("my-custom-policy")
            .with_float("alpha", 0.5)
            .with_param("rounds", ParamValue::Int(3))
            .with_param("mode", ParamValue::Text("strict".into()))
            .with_param("edges", ParamValue::Edges(vec![(0, 1), (1, 2)]));
        assert_eq!(spec.name, "my-custom-policy");
        assert_eq!(spec.params.len(), 4);
        assert_eq!(spec.params.get_f64("alpha"), Some(0.5));
        assert_eq!(spec.params.get_u64("rounds"), Some(3));
        // Integers widen to floats, but not the reverse.
        assert_eq!(spec.params.get_f64("rounds"), Some(3.0));
        assert_eq!(spec.params.get_u64("alpha"), None);
        assert_eq!(spec.params.get_text("mode"), Some("strict"));
        assert_eq!(spec.params.get_edges("edges"), Some(&[(0, 1), (1, 2)][..]));
        assert_eq!(spec.params.get("missing"), None);
        assert!(!spec.params.is_empty());
        assert!(StrategyParams::new().is_empty());
    }

    #[test]
    fn builtin_convenience_constructors_use_well_known_names() {
        let fidelity = StrategySpec::fidelity(0.9);
        assert_eq!(fidelity.name, strategy_names::FIDELITY);
        assert_eq!(
            fidelity.params.get_f64(strategy_names::PARAM_TARGET),
            Some(0.9)
        );

        let topology = StrategySpec::topology(&[(0, 1)], 2);
        assert_eq!(topology.name, strategy_names::TOPOLOGY);
        assert_eq!(
            topology.params.get_edges(strategy_names::PARAM_EDGES),
            Some(&[(0, 1)][..])
        );
        assert_eq!(
            topology.params.get_u64(strategy_names::PARAM_QUBITS),
            Some(2)
        );

        let weighted = StrategySpec::weighted(0.8, 1.0, 2.0, 3.0);
        assert_eq!(weighted.name, strategy_names::WEIGHTED);
        assert_eq!(
            weighted.params.get_f64(strategy_names::PARAM_QUEUE_WEIGHT),
            Some(2.0)
        );

        assert_eq!(StrategySpec::min_queue().name, strategy_names::MIN_QUEUE);
    }

    #[test]
    fn failed_phase_has_no_node() {
        let phase = JobPhase::Failed {
            reason: "no devices matched".into(),
        };
        assert!(phase.is_terminal());
        assert_eq!(phase.node(), None);
    }

    #[test]
    fn cancelled_phase_is_terminal_and_nodeless() {
        let phase = JobPhase::Cancelled {
            reason: "user request".into(),
        };
        assert!(phase.is_terminal());
        assert_eq!(phase.node(), None);
    }
}
