//! Error types for the cluster substrate.

use std::error::Error;
use std::fmt;

use crate::fault::FaultKind;

/// Errors produced by the cluster control plane, registry and executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node with the given name already exists.
    DuplicateNode(String),
    /// No node with the given name exists.
    UnknownNode(String),
    /// A job with the given name already exists.
    DuplicateJob(String),
    /// No job with the given name exists.
    UnknownJob(String),
    /// No image with the given name exists in the registry.
    ImageNotFound(String),
    /// The job cannot be bound to the requested node.
    BindingRejected {
        /// Job name.
        job: String,
        /// Node name.
        node: String,
        /// Why the binding was rejected.
        reason: String,
    },
    /// No node passed the scheduling filters.
    Unschedulable {
        /// Job name.
        job: String,
        /// Why the job could not be scheduled.
        reason: String,
    },
    /// A job spec document could not be parsed.
    SpecParse {
        /// 1-based line number.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// The node executor failed to run a job.
    ExecutionFailed {
        /// Job name.
        job: String,
        /// Failure description.
        reason: String,
    },
    /// A lifecycle action (cancel, rebind, run...) is not legal in the job's
    /// current phase.
    PhaseConflict {
        /// Job name.
        job: String,
        /// The action that was attempted.
        action: String,
        /// The phase the job was actually in, rendered for diagnostics.
        phase: String,
    },
    /// The fault injector fired during an execution attempt.
    InjectedFault {
        /// Job name.
        job: String,
        /// Node the attempt ran on.
        node: String,
        /// Which typed fault fired.
        kind: FaultKind,
        /// The (0-based) execution attempt that faulted.
        attempt: u32,
    },
    /// The job blew its virtual-time deadline before reaching a terminal
    /// state.
    DeadlineExceeded {
        /// Job name.
        job: String,
        /// The absolute virtual time the deadline expired at.
        deadline: u64,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::DuplicateNode(name) => write!(f, "node '{name}' already exists"),
            ClusterError::UnknownNode(name) => write!(f, "unknown node '{name}'"),
            ClusterError::DuplicateJob(name) => write!(f, "job '{name}' already exists"),
            ClusterError::UnknownJob(name) => write!(f, "unknown job '{name}'"),
            ClusterError::ImageNotFound(name) => write!(f, "image '{name}' not found in registry"),
            ClusterError::BindingRejected { job, node, reason } => {
                write!(f, "cannot bind job '{job}' to node '{node}': {reason}")
            }
            ClusterError::Unschedulable { job, reason } => {
                write!(f, "job '{job}' is unschedulable: {reason}")
            }
            ClusterError::SpecParse { line, message } => {
                write!(f, "job spec parse error at line {line}: {message}")
            }
            ClusterError::ExecutionFailed { job, reason } => {
                write!(f, "execution of job '{job}' failed: {reason}")
            }
            ClusterError::PhaseConflict { job, action, phase } => {
                write!(f, "cannot {action} job '{job}' in phase {phase}")
            }
            ClusterError::InjectedFault {
                job,
                node,
                kind,
                attempt,
            } => {
                write!(
                    f,
                    "attempt {attempt} of job '{job}' on node '{node}' hit {}",
                    kind.reason()
                )
            }
            ClusterError::DeadlineExceeded { job, deadline } => {
                write!(f, "job '{job}' exceeded its deadline at t={deadline}")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ClusterError::UnknownNode("n1".into())
            .to_string()
            .contains("n1"));
        let e = ClusterError::BindingRejected {
            job: "j".into(),
            node: "n".into(),
            reason: "full".into(),
        };
        assert!(e.to_string().contains("full"));
        let e = ClusterError::PhaseConflict {
            job: "j".into(),
            action: "cancel".into(),
            phase: "Running".into(),
        };
        assert!(e.to_string().contains("cancel"));
        assert!(e.to_string().contains("Running"));
        let e = ClusterError::InjectedFault {
            job: "j".into(),
            node: "n".into(),
            kind: FaultKind::CalibrationGlitch,
            attempt: 2,
        };
        assert!(e.to_string().contains("attempt 2"));
        assert!(e.to_string().contains("calibration glitch"));
        let e = ClusterError::DeadlineExceeded {
            job: "late".into(),
            deadline: 40,
        };
        assert!(e.to_string().contains("late"));
        assert!(e.to_string().contains("t=40"));
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<ClusterError>();
    }
}
