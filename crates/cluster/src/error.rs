//! Error types for the cluster substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the cluster control plane, registry and executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A node with the given name already exists.
    DuplicateNode(String),
    /// No node with the given name exists.
    UnknownNode(String),
    /// A job with the given name already exists.
    DuplicateJob(String),
    /// No job with the given name exists.
    UnknownJob(String),
    /// No image with the given name exists in the registry.
    ImageNotFound(String),
    /// The job cannot be bound to the requested node.
    BindingRejected {
        /// Job name.
        job: String,
        /// Node name.
        node: String,
        /// Why the binding was rejected.
        reason: String,
    },
    /// No node passed the scheduling filters.
    Unschedulable {
        /// Job name.
        job: String,
        /// Why the job could not be scheduled.
        reason: String,
    },
    /// A job spec document could not be parsed.
    SpecParse {
        /// 1-based line number.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// The node executor failed to run a job.
    ExecutionFailed {
        /// Job name.
        job: String,
        /// Failure description.
        reason: String,
    },
    /// A lifecycle action (cancel, rebind, run...) is not legal in the job's
    /// current phase.
    PhaseConflict {
        /// Job name.
        job: String,
        /// The action that was attempted.
        action: String,
        /// The phase the job was actually in, rendered for diagnostics.
        phase: String,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::DuplicateNode(name) => write!(f, "node '{name}' already exists"),
            ClusterError::UnknownNode(name) => write!(f, "unknown node '{name}'"),
            ClusterError::DuplicateJob(name) => write!(f, "job '{name}' already exists"),
            ClusterError::UnknownJob(name) => write!(f, "unknown job '{name}'"),
            ClusterError::ImageNotFound(name) => write!(f, "image '{name}' not found in registry"),
            ClusterError::BindingRejected { job, node, reason } => {
                write!(f, "cannot bind job '{job}' to node '{node}': {reason}")
            }
            ClusterError::Unschedulable { job, reason } => {
                write!(f, "job '{job}' is unschedulable: {reason}")
            }
            ClusterError::SpecParse { line, message } => {
                write!(f, "job spec parse error at line {line}: {message}")
            }
            ClusterError::ExecutionFailed { job, reason } => {
                write!(f, "execution of job '{job}' failed: {reason}")
            }
            ClusterError::PhaseConflict { job, action, phase } => {
                write!(f, "cannot {action} job '{job}' in phase {phase}")
            }
        }
    }
}

impl Error for ClusterError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ClusterError::UnknownNode("n1".into())
            .to_string()
            .contains("n1"));
        let e = ClusterError::BindingRejected {
            job: "j".into(),
            node: "n".into(),
            reason: "full".into(),
        };
        assert!(e.to_string().contains("full"));
        let e = ClusterError::PhaseConflict {
            job: "j".into(),
            action: "cancel".into(),
            phase: "Running".into(),
        };
        assert!(e.to_string().contains("cancel"));
        assert!(e.to_string().contains("Running"));
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<ClusterError>();
    }
}
