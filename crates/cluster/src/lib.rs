//! # qrio-cluster
//!
//! Kubernetes-like cluster substrate for the QRIO quantum-cloud orchestrator
//! (reproduction of *Empowering the Quantum Cloud User with QRIO*, IISWC 2024).
//!
//! The paper builds QRIO on Kubernetes: every quantum device is a labelled
//! worker node, jobs are containerized circuits described by a YAML spec, and
//! the scheduler is a filter → score → bind plugin pipeline. This crate
//! provides an in-process substrate with the same shape, so the scheduler code
//! the paper evaluates runs against an API equivalent to the one it targets:
//!
//! * [`Node`] — a quantum device plus classical capacity, labelled with the
//!   §3.1 properties, with cordon / failure / self-healing restart support.
//! * [`JobSpec`], [`Job`], [`yaml`] — job objects with device-requirement
//!   bounds, an open [`StrategySpec`] (ranking strategy by name with typed
//!   [`StrategyParams`]), lifecycle phases and logs.
//! * [`ImageRegistry`], [`ImageBundle`] — the simulated Docker Hub the master
//!   server pushes job containers to.
//! * [`framework`] — filter/score plugin traits plus the built-in plugins
//!   (resource fit, qubit count, device-requirement bounds).
//! * [`Cluster`] — the control plane: node/job stores, the scheduling cycle,
//!   the kubelet-style [`JobRunner`] execution hook, an event log, and a FIFO
//!   queue for the multi-job mode the paper lists as future work.
//! * [`FaultInjector`], [`FaultKind`], [`RetryPolicy`] — deterministic typed
//!   fault injection consulted by every execution attempt, plus the per-job
//!   retry/backoff policies the orchestrator's fault-tolerant lifecycle runs.
//!
//! # Examples
//!
//! ```
//! use qrio_backend::{topology, Backend};
//! use qrio_cluster::{framework, Cluster, Node, Resources};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cluster = Cluster::new();
//! let backend = Backend::uniform("dev-a", topology::line(5), 0.01, 0.05);
//! cluster.add_node(Node::from_backend(backend, Resources::new(4000, 8192)))?;
//! assert_eq!(cluster.ready_nodes().count(), 1);
//! assert_eq!(framework::default_filters().len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod error;
mod fault;
pub mod framework;
mod job;
mod node;
mod registry;
mod resources;
pub mod yaml;

pub use cluster::{
    AttemptVerdict, Cluster, ClusterEvent, ClusterState, ExecutionOutcome, JobRunner, NodeLoad,
    ScheduleDecision, WorkOrder,
};
pub use error::ClusterError;
pub use fault::{BackoffPolicy, FaultInjector, FaultKind, RetryOn, RetryPolicy};
pub use framework::{FilterPlugin, ScorePlugin};
pub use job::{
    strategy_names, DeviceRequirements, Job, JobPhase, JobSnapshot, JobSpec, ParamValue,
    StrategyParams, StrategySpec,
};
pub use node::{Node, NodeState, NodeStatus};
pub use registry::{ImageBundle, ImageRegistry, RegistryState};
pub use resources::Resources;
