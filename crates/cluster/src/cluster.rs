//! The cluster control plane: node registry, job store, image registry,
//! scheduling cycle, job execution and the event log.
//!
//! This is the Kubernetes-shaped substrate QRIO is built on (§3.1): nodes are
//! quantum devices labelled with their properties, jobs are containerized
//! quantum circuits, the scheduler runs a filter → score → bind cycle, and a
//! kubelet-style executor runs bound jobs against the node's backend.

use std::collections::BTreeMap;

use qrio_backend::Backend;

use crate::error::ClusterError;
use crate::fault::{FaultInjector, FaultKind};
use crate::framework::{FilterPlugin, ScorePlugin};
use crate::job::{Job, JobPhase, JobSnapshot, JobSpec};
use crate::node::{Node, NodeState, NodeStatus};
use crate::registry::{ImageBundle, ImageRegistry, RegistryState};
use crate::resources::Resources;

/// One entry in the cluster's event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEvent {
    /// Event kind, e.g. `NodeAdded`, `JobScheduled`, `FilterRejected`.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

/// The outcome of running a job on a node, produced by a [`JobRunner`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome {
    /// Histogram of measurement outcomes (`bitstring -> count`).
    pub counts: Vec<(String, u64)>,
    /// Fidelity against the noise-free reference, when the runner computes it.
    pub fidelity: Option<f64>,
    /// Runner log lines (transpilation summary, shot counts, ...).
    pub logs: Vec<String>,
}

/// A self-contained execution work order produced by [`Cluster::prepare_run`]:
/// everything the device side needs to run one attempt (the spec, the pulled
/// image, the bound node) without reaching back into cluster state. This is
/// the unit that crosses the control-plane wire to a node agent.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkOrder {
    /// Job name.
    pub job: String,
    /// Node the job is bound to.
    pub node: String,
    /// Zero-based attempt number (drives the fault decision).
    pub attempt: u32,
    /// The job's full spec.
    pub spec: JobSpec,
    /// The image pulled for this attempt.
    pub image: ImageBundle,
}

/// The device side's verdict on one prepared attempt, applied with
/// [`Cluster::settle_run`].
#[derive(Debug, Clone, PartialEq)]
pub enum AttemptVerdict {
    /// The runner completed successfully.
    Completed(ExecutionOutcome),
    /// The runner failed with a human-readable reason.
    Failed(String),
    /// The fault injector fired before the runner started.
    Faulted(FaultKind),
}

/// Executes a job's payload on a node's quantum device — the role of the
/// generated runner script inside the job container (§3.3). Implemented by the
/// QRIO orchestrator crate; the cluster substrate stays agnostic of *how*
/// circuits are simulated.
pub trait JobRunner {
    /// Run `spec` (whose files are in `image`) on `backend`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when execution fails.
    fn run(
        &self,
        spec: &JobSpec,
        image: &ImageBundle,
        backend: &Backend,
    ) -> Result<ExecutionOutcome, String>;
}

/// A point-in-time load summary for one node: how busy its queue and its
/// classical resources are. This is the raw material telemetry-aware ranking
/// strategies (queue-depth / utilization scoring) consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    /// Jobs currently bound to the node (scheduled or running).
    pub active_jobs: usize,
    /// Fraction of the node's CPU capacity currently allocated, in `[0, 1]`.
    pub cpu_utilization: f64,
    /// Fraction of the node's memory capacity currently allocated, in `[0, 1]`.
    pub memory_utilization: f64,
}

impl NodeLoad {
    /// The dominant (maximum) classical utilization across CPU and memory.
    pub fn utilization(&self) -> f64 {
        self.cpu_utilization.max(self.memory_utilization)
    }
}

/// The decision produced by one scheduling cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleDecision {
    /// Job that was scheduled.
    pub job: String,
    /// Node chosen for the job.
    pub node: String,
    /// Winning score (lower is better).
    pub score: f64,
    /// All scored candidates `(node, score)`, sorted best-first.
    pub candidates: Vec<(String, f64)>,
    /// Nodes rejected during filtering, with the rejecting plugin and reason.
    pub filtered_out: Vec<(String, String)>,
}

/// The full persistable state of a [`Cluster`], used by durability snapshots:
/// nodes, jobs, the image registry (with its counters), the event log and the
/// FIFO submission queue.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterState {
    /// Every node's state, in name order.
    pub nodes: Vec<NodeState>,
    /// Every job's state, in name order.
    pub jobs: Vec<JobSnapshot>,
    /// The image registry with its push/pull counters.
    pub registry: RegistryState,
    /// The event log, in chronological order.
    pub events: Vec<ClusterEvent>,
    /// Pending job names in submission order.
    pub queue: Vec<String>,
    /// The installed fault injector, when any.
    pub fault_injector: Option<FaultInjector>,
}

/// The QRIO cluster: nodes, jobs, images and events.
#[derive(Default)]
pub struct Cluster {
    nodes: BTreeMap<String, Node>,
    jobs: BTreeMap<String, Job>,
    registry: ImageRegistry,
    events: Vec<ClusterEvent>,
    /// Pending job names in submission order (FIFO queue).
    queue: Vec<String>,
    /// Deterministic fault injector consulted by every execution attempt.
    fault_injector: Option<FaultInjector>,
}

impl Cluster {
    /// An empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Rebuild a cluster from a previously exported [`ClusterState`],
    /// verbatim: no events are re-recorded and no counters are reset.
    pub fn from_state(state: ClusterState) -> Self {
        Cluster {
            nodes: state
                .nodes
                .into_iter()
                .map(Node::from_state)
                .map(|node| (node.name().to_string(), node))
                .collect(),
            jobs: state
                .jobs
                .into_iter()
                .map(Job::from_state)
                .map(|job| (job.name().to_string(), job))
                .collect(),
            registry: ImageRegistry::from_state(state.registry),
            events: state.events,
            queue: state.queue,
            fault_injector: state.fault_injector,
        }
    }

    /// Export the cluster's full persistable state for a durability snapshot.
    pub fn export_state(&self) -> ClusterState {
        ClusterState {
            nodes: self.nodes.values().map(Node::export_state).collect(),
            jobs: self.jobs.values().map(Job::export_state).collect(),
            registry: self.registry.export_state(),
            events: self.events.clone(),
            queue: self.queue.clone(),
            fault_injector: self.fault_injector,
        }
    }

    /// Install (or, with `None`, remove) the deterministic fault injector.
    /// Every subsequent execution attempt consults it; see
    /// [`Cluster::run_job_attempt`].
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.fault_injector = injector;
    }

    /// The installed fault injector, when any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.fault_injector.as_ref()
    }

    fn record(&mut self, kind: &str, message: impl Into<String>) {
        self.events.push(ClusterEvent {
            kind: kind.to_string(),
            message: message.into(),
        });
    }

    // --- Nodes ---------------------------------------------------------------------------

    /// Register a node.
    ///
    /// # Errors
    ///
    /// Returns an error if a node with the same name already exists.
    pub fn add_node(&mut self, node: Node) -> Result<(), ClusterError> {
        if self.nodes.contains_key(node.name()) {
            return Err(ClusterError::DuplicateNode(node.name().to_string()));
        }
        self.record(
            "NodeAdded",
            format!("node '{}' joined the cluster", node.name()),
        );
        self.nodes.insert(node.name().to_string(), node);
        Ok(())
    }

    /// Remove a node.
    ///
    /// # Errors
    ///
    /// Returns an error if the node does not exist.
    pub fn remove_node(&mut self, name: &str) -> Result<Node, ClusterError> {
        let node = self
            .nodes
            .remove(name)
            .ok_or_else(|| ClusterError::UnknownNode(name.to_string()))?;
        self.record("NodeRemoved", format!("node '{name}' left the cluster"));
        Ok(node)
    }

    /// Look up a node by name.
    pub fn node(&self, name: &str) -> Option<&Node> {
        self.nodes.get(name)
    }

    /// Mutable access to a node (vendor operations: cordon, restart, labels).
    pub fn node_mut(&mut self, name: &str) -> Option<&mut Node> {
        self.nodes.get_mut(name)
    }

    /// All nodes, in name order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.values()
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes currently able to accept work.
    pub fn ready_nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .values()
            .filter(|n| n.status() == NodeStatus::Ready)
    }

    /// Restart every node that is `NotReady` — the self-healing loop QRIO gets
    /// from Kubernetes. Returns the names of restarted nodes.
    pub fn heal_nodes(&mut self) -> Vec<String> {
        let mut healed = Vec::new();
        for node in self.nodes.values_mut() {
            if node.status() == NodeStatus::NotReady {
                node.restart();
                healed.push(node.name().to_string());
            }
        }
        for name in &healed {
            self.record("NodeRestarted", format!("node '{name}' was restarted"));
        }
        healed
    }

    // --- Images --------------------------------------------------------------------------

    /// The image registry (read-only).
    pub fn registry(&self) -> &ImageRegistry {
        &self.registry
    }

    /// Push an image to the cluster's registry.
    pub fn push_image(&mut self, image: ImageBundle) {
        self.record("ImagePushed", format!("image '{}' pushed", image.name()));
        self.registry.push(image);
    }

    /// Remove an image from the cluster's registry — the garbage-collection
    /// hook the orchestrator runs when a job reaches a terminal failure and
    /// its container will never be pulled. Returns the removed image, or
    /// `None` when no such image existed.
    pub fn remove_image(&mut self, name: &str) -> Option<ImageBundle> {
        let removed = self.registry.remove(name);
        if removed.is_some() {
            self.record("ImageRemoved", format!("image '{name}' removed"));
        }
        removed
    }

    // --- Jobs ----------------------------------------------------------------------------

    /// Submit a job for scheduling. The job is queued in FIFO order.
    ///
    /// # Errors
    ///
    /// Returns an error if a job with the same name already exists.
    pub fn submit_job(&mut self, spec: JobSpec) -> Result<(), ClusterError> {
        if self.jobs.contains_key(&spec.name) {
            return Err(ClusterError::DuplicateJob(spec.name.clone()));
        }
        self.record("JobSubmitted", format!("job '{}' submitted", spec.name));
        self.queue.push(spec.name.clone());
        self.jobs.insert(spec.name.clone(), Job::new(spec));
        Ok(())
    }

    /// Look up a job by name.
    pub fn job(&self, name: &str) -> Option<&Job> {
        self.jobs.get(name)
    }

    /// All jobs, in name order.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Names of jobs still waiting to be scheduled, in submission order.
    pub fn pending_jobs(&self) -> Vec<String> {
        self.queue
            .iter()
            .filter(|name| {
                self.jobs
                    .get(*name)
                    .map(|j| matches!(j.phase(), JobPhase::Pending))
                    .unwrap_or(false)
            })
            .cloned()
            .collect()
    }

    /// Logs of a job (what the visualizer's "check logs" button returns).
    ///
    /// # Errors
    ///
    /// Returns an error if the job does not exist.
    pub fn job_logs(&self, name: &str) -> Result<&[String], ClusterError> {
        self.jobs
            .get(name)
            .map(|j| j.logs())
            .ok_or_else(|| ClusterError::UnknownJob(name.to_string()))
    }

    /// The event log, in chronological order.
    pub fn events(&self) -> &[ClusterEvent] {
        &self.events
    }

    /// Point-in-time load of one node: bound jobs plus classical utilization.
    ///
    /// Returns `None` for unknown nodes.
    pub fn node_load(&self, name: &str) -> Option<NodeLoad> {
        let node = self.nodes.get(name)?;
        let active_jobs = self
            .jobs
            .values()
            .filter(|job| {
                matches!(
                    job.phase(),
                    JobPhase::Scheduled { node } | JobPhase::Running { node }
                        if node == name
                )
            })
            .count();
        Some(Self::load_of(node, active_jobs))
    }

    /// Load of every node, in name order — what the orchestrator reports to
    /// the meta server before each scheduling cycle so telemetry-aware
    /// strategies see current queue depths and utilization. One pass over the
    /// job store, so the cost stays `O(nodes + jobs)` per scheduling cycle.
    pub fn node_loads(&self) -> Vec<(String, NodeLoad)> {
        let mut bound: BTreeMap<&str, usize> = BTreeMap::new();
        for job in self.jobs.values() {
            if let JobPhase::Scheduled { node } | JobPhase::Running { node } = job.phase() {
                *bound.entry(node.as_str()).or_insert(0) += 1;
            }
        }
        self.nodes
            .iter()
            .map(|(name, node)| {
                let active = bound.get(name.as_str()).copied().unwrap_or(0);
                (name.clone(), Self::load_of(node, active))
            })
            .collect()
    }

    fn load_of(node: &Node, active_jobs: usize) -> NodeLoad {
        let capacity = node.capacity();
        let allocated = node.allocated();
        let ratio = |used: u64, total: u64| {
            if total == 0 {
                0.0
            } else {
                used as f64 / total as f64
            }
        };
        NodeLoad {
            active_jobs,
            cpu_utilization: ratio(allocated.cpu_millis, capacity.cpu_millis),
            memory_utilization: ratio(allocated.memory_mib, capacity.memory_mib),
        }
    }

    // --- Scheduling ----------------------------------------------------------------------

    /// Run one scheduling cycle for `job_name`: filter nodes, score the
    /// survivors with `scorer`, and bind the job to the lowest-scoring node.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::Unschedulable`] when no node passes filtering
    /// or scoring, and [`ClusterError::UnknownJob`] for unknown jobs. In the
    /// unschedulable case the job is marked `Failed`.
    pub fn schedule_job(
        &mut self,
        job_name: &str,
        filters: &[Box<dyn FilterPlugin>],
        scorer: &dyn ScorePlugin,
    ) -> Result<ScheduleDecision, ClusterError> {
        let spec = self
            .jobs
            .get(job_name)
            .map(|j| j.spec().clone())
            .ok_or_else(|| ClusterError::UnknownJob(job_name.to_string()))?;

        // Filtering stage.
        let mut feasible: Vec<String> = Vec::new();
        let mut filtered_out: Vec<(String, String)> = Vec::new();
        for node in self.nodes.values() {
            if node.status() != NodeStatus::Ready {
                filtered_out.push((node.name().to_string(), "node not ready".to_string()));
                continue;
            }
            let mut rejected = None;
            for filter in filters {
                if let Err(reason) = filter.filter(&spec, node) {
                    rejected = Some(format!("{}: {reason}", filter.name()));
                    break;
                }
            }
            match rejected {
                Some(reason) => filtered_out.push((node.name().to_string(), reason)),
                None => feasible.push(node.name().to_string()),
            }
        }
        for (node, reason) in &filtered_out {
            self.record(
                "FilterRejected",
                format!("job '{job_name}': node '{node}' rejected ({reason})"),
            );
        }
        if feasible.is_empty() {
            let reason = "no node passed the filtering stage".to_string();
            if let Some(job) = self.jobs.get_mut(job_name) {
                job.set_phase(JobPhase::Failed {
                    reason: reason.clone(),
                });
            }
            return Err(ClusterError::Unschedulable {
                job: job_name.to_string(),
                reason,
            });
        }

        // Scoring stage.
        let mut candidates: Vec<(String, f64)> = Vec::new();
        for name in &feasible {
            let node = &self.nodes[name];
            match scorer.score(&spec, node) {
                Ok(score) => candidates.push((name.clone(), score)),
                Err(reason) => {
                    self.record(
                        "ScoreFailed",
                        format!("job '{job_name}': node '{name}' could not be scored ({reason})"),
                    );
                }
            }
        }
        if candidates.is_empty() {
            let reason = format!(
                "no feasible node could be scored by plugin '{}'",
                scorer.name()
            );
            if let Some(job) = self.jobs.get_mut(job_name) {
                job.set_phase(JobPhase::Failed {
                    reason: reason.clone(),
                });
            }
            return Err(ClusterError::Unschedulable {
                job: job_name.to_string(),
                reason,
            });
        }
        // Deterministic ordering: ties in score break on node name, so the
        // decision never depends on store iteration order.
        candidates.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let (winner, score) = candidates[0].clone();

        // Binding stage.
        let node = self.nodes.get_mut(&winner).expect("winner exists");
        if !node.allocate(&spec.resources) {
            return Err(ClusterError::BindingRejected {
                job: job_name.to_string(),
                node: winner,
                reason: "resources were claimed by another job during scoring".into(),
            });
        }
        let job = self.jobs.get_mut(job_name).expect("job exists");
        job.set_phase(JobPhase::Scheduled {
            node: winner.clone(),
        });
        job.log(format!(
            "scheduled on '{winner}' with score {score:.4} by plugin '{}'",
            scorer.name()
        ));
        self.record(
            "JobScheduled",
            format!("job '{job_name}' bound to node '{winner}' (score {score:.4})"),
        );
        Ok(ScheduleDecision {
            job: job_name.to_string(),
            node: winner,
            score,
            candidates,
            filtered_out,
        })
    }

    /// Replace the backend of an existing node after a calibration refresh or
    /// drift event, recomputing its QRIO labels. The node keeps its name,
    /// capacity, allocations and status.
    ///
    /// # Errors
    ///
    /// Returns an error if the node does not exist or the backend's name does
    /// not match the node's.
    pub fn update_node_backend(&mut self, backend: Backend) -> Result<(), ClusterError> {
        let name = backend.name().to_string();
        let node = self
            .nodes
            .get_mut(&name)
            .ok_or_else(|| ClusterError::UnknownNode(name.clone()))?;
        node.set_backend(backend);
        self.record(
            "NodeCalibrated",
            format!("node '{name}' received new calibration data"),
        );
        Ok(())
    }

    /// Move a `Scheduled` (bound but not yet running) job to another node —
    /// the migration primitive load-aware schedulers use when calibration
    /// drift or an outage makes the original binding a bad idea. Resources
    /// are released on the old node and reserved on the new one. Rebinding a
    /// job onto the node it is already bound to is a no-op.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown jobs or nodes, jobs not in the
    /// `Scheduled` phase, or when the target node cannot accept the job's
    /// resource request; in every error case the original binding is left
    /// untouched.
    pub fn rebind_job(&mut self, job_name: &str, target: &str) -> Result<(), ClusterError> {
        let (spec, from) = {
            let job = self
                .jobs
                .get(job_name)
                .ok_or_else(|| ClusterError::UnknownJob(job_name.to_string()))?;
            let from = match job.phase() {
                JobPhase::Scheduled { node } => node.clone(),
                other => {
                    return Err(ClusterError::BindingRejected {
                        job: job_name.to_string(),
                        node: target.to_string(),
                        reason: format!("only Scheduled jobs can be rebound (currently {other:?})"),
                    })
                }
            };
            (job.spec().clone(), from)
        };
        if from == target {
            return Ok(());
        }
        if !self.nodes.contains_key(target) {
            return Err(ClusterError::UnknownNode(target.to_string()));
        }
        {
            let target_node = self.nodes.get_mut(target).expect("target checked above");
            if !target_node.allocate(&spec.resources) {
                return Err(ClusterError::BindingRejected {
                    job: job_name.to_string(),
                    node: target.to_string(),
                    reason: "target node cannot accept the job's resource request".into(),
                });
            }
        }
        if let Some(old) = self.nodes.get_mut(&from) {
            old.release(&spec.resources);
        }
        let job = self.jobs.get_mut(job_name).expect("job checked above");
        job.set_phase(JobPhase::Scheduled {
            node: target.to_string(),
        });
        job.log(format!("rebound from '{from}' to '{target}'"));
        self.record(
            "JobRebound",
            format!("job '{job_name}' moved from '{from}' to '{target}'"),
        );
        Ok(())
    }

    /// Cancel a job that has not started running: `Pending` jobs leave the
    /// submission queue, `Scheduled` jobs release their reserved node
    /// resources. The job's phase becomes [`JobPhase::Cancelled`].
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] for unknown jobs and
    /// [`ClusterError::PhaseConflict`] for jobs already running or terminal —
    /// cancellation never rewrites history.
    pub fn cancel_job(
        &mut self,
        job_name: &str,
        reason: impl Into<String>,
    ) -> Result<(), ClusterError> {
        let job = self
            .jobs
            .get(job_name)
            .ok_or_else(|| ClusterError::UnknownJob(job_name.to_string()))?;
        match job.phase().clone() {
            JobPhase::Pending => {
                self.queue.retain(|name| name != job_name);
            }
            JobPhase::Scheduled { node } => {
                let resources = job.spec().resources;
                if let Some(node) = self.nodes.get_mut(&node) {
                    node.release(&resources);
                }
            }
            other => {
                return Err(ClusterError::PhaseConflict {
                    job: job_name.to_string(),
                    action: "cancel".to_string(),
                    phase: other.name().to_string(),
                })
            }
        }
        let reason = reason.into();
        let job = self.jobs.get_mut(job_name).expect("job checked above");
        job.set_phase(JobPhase::Cancelled {
            reason: reason.clone(),
        });
        self.record(
            "JobCancelled",
            format!("job '{job_name}' cancelled: {reason}"),
        );
        Ok(())
    }

    /// Execute a previously-scheduled job on its bound node using `runner` —
    /// the first (0th) attempt of [`Cluster::run_job_attempt`].
    ///
    /// # Errors
    ///
    /// Returns an error if the job is not in the `Scheduled` phase, the image
    /// is missing, or the runner fails; in the latter cases the job is marked
    /// `Failed` and the node's resources are released.
    pub fn run_job(&mut self, job_name: &str, runner: &dyn JobRunner) -> Result<(), ClusterError> {
        self.run_job_attempt(job_name, runner, 0)
    }

    /// Execute attempt `attempt` of a previously-scheduled job. Before the
    /// runner is invoked, the installed [`FaultInjector`] (if any) decides —
    /// as a pure function of `(seed, job, node, attempt)` — whether this
    /// attempt faults; an injected fault marks the job `Failed` with the
    /// fault's typed reason and surfaces as [`ClusterError::InjectedFault`].
    /// A [`FaultKind::DeviceFlap`] additionally marks the node `NotReady`
    /// (self-healing restarts it later).
    ///
    /// # Errors
    ///
    /// As [`Cluster::run_job`], plus [`ClusterError::InjectedFault`].
    pub fn run_job_attempt(
        &mut self,
        job_name: &str,
        runner: &dyn JobRunner,
        attempt: u32,
    ) -> Result<(), ClusterError> {
        let order = self.prepare_run(job_name, attempt)?;
        // Fault injection: a stateless decision, so snapshot-based recovery
        // (and remote node agents holding an injector replica) replay the
        // exact same verdict for this (job, node, attempt).
        let verdict = if let Some(kind) = self
            .fault_injector
            .and_then(|injector| injector.decide(job_name, &order.node, attempt))
        {
            AttemptVerdict::Faulted(kind)
        } else {
            let backend = self
                .nodes
                .get(&order.node)
                .expect("prepare_run verified the node")
                .backend()
                .clone();
            match runner.run(&order.spec, &order.image, &backend) {
                Ok(result) => AttemptVerdict::Completed(result),
                Err(reason) => AttemptVerdict::Failed(reason),
            }
        };
        self.settle_run(&order, verdict)
    }

    /// The orchestrator half of starting an execution attempt: verify the job
    /// is `Scheduled`, pull its image from the registry, verify the bound
    /// node exists, move the job to `Running` and record `JobStarted`.
    ///
    /// Returns the self-contained [`WorkOrder`] describing what must now be
    /// executed. The device half — fault decision plus runner invocation —
    /// can then happen anywhere (in-process or on a remote node agent), and
    /// its verdict is applied with [`Cluster::settle_run`].
    ///
    /// # Errors
    ///
    /// Returns an error if the job is unknown or not `Scheduled`, the image
    /// is missing, or the bound node is gone; job state is untouched in every
    /// error case.
    pub fn prepare_run(&mut self, job_name: &str, attempt: u32) -> Result<WorkOrder, ClusterError> {
        let (spec, node_name) = {
            let job = self
                .jobs
                .get(job_name)
                .ok_or_else(|| ClusterError::UnknownJob(job_name.to_string()))?;
            let node = match job.phase() {
                JobPhase::Scheduled { node } => node.clone(),
                other => {
                    return Err(ClusterError::ExecutionFailed {
                        job: job_name.to_string(),
                        reason: format!("job is not in the Scheduled phase (currently {other:?})"),
                    })
                }
            };
            (job.spec().clone(), node)
        };
        let image = self.registry.pull(&spec.image)?;
        if !self.nodes.contains_key(&node_name) {
            return Err(ClusterError::UnknownNode(node_name.clone()));
        }

        if let Some(job) = self.jobs.get_mut(job_name) {
            job.set_phase(JobPhase::Running {
                node: node_name.clone(),
            });
        }
        self.record(
            "JobStarted",
            format!("job '{job_name}' running on '{node_name}'"),
        );
        Ok(WorkOrder {
            job: job_name.to_string(),
            node: node_name,
            attempt,
            spec,
            image,
        })
    }

    /// Apply the device-side verdict of a prepared attempt: release the
    /// node's classical resources and move the job to its terminal phase,
    /// recording the same events direct execution would.
    ///
    /// # Errors
    ///
    /// [`ClusterError::ExecutionFailed`] for failed runs and
    /// [`ClusterError::InjectedFault`] for faulted ones, mirroring
    /// [`Cluster::run_job_attempt`].
    pub fn settle_run(
        &mut self,
        order: &WorkOrder,
        verdict: AttemptVerdict,
    ) -> Result<(), ClusterError> {
        let job_name = &order.job;
        let node_name = &order.node;
        match verdict {
            AttemptVerdict::Faulted(kind) => Err(self.fail_with_fault(
                job_name,
                node_name,
                &order.spec.resources,
                kind,
                order.attempt,
            )),
            AttemptVerdict::Completed(result) => {
                if let Some(node) = self.nodes.get_mut(node_name) {
                    node.release(&order.spec.resources);
                }
                let job = self.jobs.get_mut(job_name).expect("job exists");
                for line in &result.logs {
                    job.log(line.clone());
                }
                job.set_result(result.counts, result.fidelity);
                job.set_phase(JobPhase::Succeeded {
                    node: node_name.clone(),
                });
                self.record(
                    "JobSucceeded",
                    format!("job '{job_name}' finished on '{node_name}'"),
                );
                Ok(())
            }
            AttemptVerdict::Failed(reason) => {
                if let Some(node) = self.nodes.get_mut(node_name) {
                    node.release(&order.spec.resources);
                }
                let job = self.jobs.get_mut(job_name).expect("job exists");
                job.set_phase(JobPhase::Failed {
                    reason: reason.clone(),
                });
                self.record(
                    "JobFailed",
                    format!("job '{job_name}' failed on '{node_name}': {reason}"),
                );
                Err(ClusterError::ExecutionFailed {
                    job: job_name.to_string(),
                    reason,
                })
            }
        }
    }

    /// Mark a `Running` job as faulted: release its node's resources, record
    /// the typed failure, and (for device flaps) take the node down.
    fn fail_with_fault(
        &mut self,
        job_name: &str,
        node_name: &str,
        resources: &Resources,
        kind: FaultKind,
        attempt: u32,
    ) -> ClusterError {
        if let Some(node) = self.nodes.get_mut(node_name) {
            node.release(resources);
            if kind == FaultKind::DeviceFlap {
                node.mark_not_ready();
            }
        }
        if kind == FaultKind::DeviceFlap {
            self.record(
                "NodeFlapped",
                format!("node '{node_name}' flapped while running job '{job_name}'"),
            );
        }
        let job = self.jobs.get_mut(job_name).expect("job exists");
        job.set_phase(JobPhase::Failed {
            reason: kind.reason().to_string(),
        });
        self.record(
            "JobFaultInjected",
            format!(
                "job '{job_name}' attempt {attempt} on '{node_name}' hit {}",
                kind.reason()
            ),
        );
        ClusterError::InjectedFault {
            job: job_name.to_string(),
            node: node_name.to_string(),
            kind,
            attempt,
        }
    }

    /// Return a `Failed` job to `Pending` and the tail of the FIFO queue —
    /// the re-admission step of a retry. The job keeps its logs and history;
    /// a fresh scheduling cycle will bind it again.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::UnknownJob`] for unknown jobs and
    /// [`ClusterError::PhaseConflict`] when the job is not `Failed`.
    pub fn requeue_job(&mut self, job_name: &str) -> Result<(), ClusterError> {
        let job = self
            .jobs
            .get_mut(job_name)
            .ok_or_else(|| ClusterError::UnknownJob(job_name.to_string()))?;
        match job.phase() {
            JobPhase::Failed { .. } => {}
            other => {
                let phase = other.name().to_string();
                return Err(ClusterError::PhaseConflict {
                    job: job_name.to_string(),
                    action: "requeue".to_string(),
                    phase,
                });
            }
        }
        job.set_phase(JobPhase::Pending);
        // The queue may still hold a stale entry from the original
        // submission (scheduling filters by phase rather than draining), so
        // only push when absent to keep `pending_jobs` duplicate-free.
        if !self.queue.iter().any(|name| name == job_name) {
            self.queue.push(job_name.to_string());
        }
        self.record("JobRequeued", format!("job '{job_name}' requeued"));
        Ok(())
    }

    /// Interrupt a `Scheduled` job whose device died under it: the job passes
    /// through `Running` straight into a [`FaultKind::DeviceFlap`] failure
    /// (resources released, node marked `NotReady`) without the runner ever
    /// being invoked. Virtual-time drivers use this when an outage lands on
    /// a device with a job mid-execution.
    ///
    /// # Errors
    ///
    /// Always errs on success: the applied interrupt surfaces as
    /// [`ClusterError::InjectedFault`] with [`FaultKind::DeviceFlap`], like
    /// any other injected fault. `UnknownJob` / `ExecutionFailed` report a
    /// missing job or one that is not `Scheduled`.
    pub fn interrupt_job(&mut self, job_name: &str, attempt: u32) -> Result<(), ClusterError> {
        let (resources, node_name) = {
            let job = self
                .jobs
                .get(job_name)
                .ok_or_else(|| ClusterError::UnknownJob(job_name.to_string()))?;
            let node = match job.phase() {
                JobPhase::Scheduled { node } => node.clone(),
                other => {
                    return Err(ClusterError::ExecutionFailed {
                        job: job_name.to_string(),
                        reason: format!("job is not in the Scheduled phase (currently {other:?})"),
                    })
                }
            };
            (job.spec().resources, node)
        };
        if let Some(job) = self.jobs.get_mut(job_name) {
            job.set_phase(JobPhase::Running {
                node: node_name.clone(),
            });
        }
        self.record(
            "JobStarted",
            format!("job '{job_name}' running on '{node_name}'"),
        );
        Err(self.fail_with_fault(
            job_name,
            &node_name,
            &resources,
            FaultKind::DeviceFlap,
            attempt,
        ))
    }

    /// Schedule and run every pending job in FIFO order (the multi-job mode
    /// the paper lists as future work, §5). Jobs that cannot be scheduled are
    /// marked failed and skipped. Returns the decisions for jobs that were
    /// scheduled.
    pub fn process_queue(
        &mut self,
        filters: &[Box<dyn FilterPlugin>],
        scorer: &dyn ScorePlugin,
        runner: &dyn JobRunner,
    ) -> Vec<ScheduleDecision> {
        let pending = self.pending_jobs();
        let mut decisions = Vec::new();
        for job_name in pending {
            match self.schedule_job(&job_name, filters, scorer) {
                Ok(decision) => {
                    let _ = self.run_job(&job_name, runner);
                    decisions.push(decision);
                }
                Err(_) => continue,
            }
        }
        decisions
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("jobs", &self.jobs.len())
            .field("events", &self.events.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{default_filters, AverageErrorScore};
    use crate::job::{DeviceRequirements, StrategySpec};
    use crate::resources::Resources;
    use qrio_backend::topology;

    struct EchoRunner;

    impl JobRunner for EchoRunner {
        fn run(
            &self,
            spec: &JobSpec,
            image: &ImageBundle,
            backend: &Backend,
        ) -> Result<ExecutionOutcome, String> {
            Ok(ExecutionOutcome {
                counts: vec![("0".repeat(spec.num_qubits), spec.shots)],
                fidelity: Some(1.0),
                logs: vec![format!(
                    "ran {} from {} on {}",
                    spec.name,
                    image.name(),
                    backend.name()
                )],
            })
        }
    }

    struct FailingRunner;

    impl JobRunner for FailingRunner {
        fn run(
            &self,
            _: &JobSpec,
            _: &ImageBundle,
            _: &Backend,
        ) -> Result<ExecutionOutcome, String> {
            Err("simulated runner crash".into())
        }
    }

    fn make_node(name: &str, qubits: usize, err: f64) -> Node {
        Node::from_backend(
            Backend::uniform(name, topology::line(qubits), 0.01, err),
            Resources::new(4000, 8192),
        )
    }

    fn make_spec(name: &str, qubits: usize) -> JobSpec {
        JobSpec {
            name: name.into(),
            image: format!("qrio/{name}:latest"),
            qasm: "OPENQASM 2.0;".into(),
            num_qubits: qubits,
            resources: Resources::new(1000, 1024),
            requirements: DeviceRequirements::none(),
            strategy: StrategySpec::fidelity(0.9),
            priority: 0,
            shots: 64,
            threads: 0,
            retry: None,
            deadline: None,
        }
    }

    fn cluster_with_nodes() -> Cluster {
        let mut cluster = Cluster::new();
        cluster.add_node(make_node("noisy", 8, 0.3)).unwrap();
        cluster.add_node(make_node("quiet", 8, 0.02)).unwrap();
        cluster.add_node(make_node("tiny", 2, 0.01)).unwrap();
        cluster
    }

    fn push_image_for(cluster: &mut Cluster, spec: &JobSpec) {
        let mut image = ImageBundle::new(spec.image.clone());
        image.add_file("circuit.qasm", spec.qasm.clone());
        cluster.push_image(image);
    }

    #[test]
    fn node_management() {
        let mut cluster = cluster_with_nodes();
        assert_eq!(cluster.node_count(), 3);
        assert!(cluster.add_node(make_node("quiet", 3, 0.1)).is_err());
        assert!(cluster.node("quiet").is_some());
        cluster.remove_node("tiny").unwrap();
        assert!(cluster.remove_node("tiny").is_err());
        assert_eq!(cluster.node_count(), 2);
        assert!(cluster.events().iter().any(|e| e.kind == "NodeAdded"));
    }

    #[test]
    fn schedule_prefers_lowest_score_and_filters_small_devices() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("job-a", 5);
        push_image_for(&mut cluster, &spec);
        cluster.submit_job(spec).unwrap();
        let decision = cluster
            .schedule_job("job-a", &default_filters(), &AverageErrorScore)
            .unwrap();
        assert_eq!(decision.node, "quiet");
        assert!(decision.filtered_out.iter().any(|(node, _)| node == "tiny"));
        assert_eq!(cluster.job("job-a").unwrap().phase().node(), Some("quiet"));
        // Resources were reserved on the chosen node.
        assert_eq!(
            cluster.node("quiet").unwrap().allocated(),
            Resources::new(1000, 1024)
        );
    }

    #[test]
    fn unschedulable_job_is_marked_failed() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("huge", 50);
        cluster.submit_job(spec).unwrap();
        let err = cluster.schedule_job("huge", &default_filters(), &AverageErrorScore);
        assert!(matches!(err, Err(ClusterError::Unschedulable { .. })));
        assert!(cluster.job("huge").unwrap().phase().is_terminal());
    }

    #[test]
    fn run_job_executes_and_records_results() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("job-run", 4);
        push_image_for(&mut cluster, &spec);
        cluster.submit_job(spec).unwrap();
        cluster
            .schedule_job("job-run", &default_filters(), &AverageErrorScore)
            .unwrap();
        cluster.run_job("job-run", &EchoRunner).unwrap();
        let job = cluster.job("job-run").unwrap();
        assert!(matches!(job.phase(), JobPhase::Succeeded { .. }));
        assert_eq!(job.result_counts()[0].1, 64);
        assert!(job.logs().iter().any(|l| l.contains("ran job-run")));
        // Resources released after completion.
        assert_eq!(
            cluster.node("quiet").unwrap().allocated(),
            Resources::default()
        );
    }

    #[test]
    fn failing_runner_marks_job_failed_and_releases_resources() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("job-fail", 4);
        push_image_for(&mut cluster, &spec);
        cluster.submit_job(spec).unwrap();
        cluster
            .schedule_job("job-fail", &default_filters(), &AverageErrorScore)
            .unwrap();
        assert!(cluster.run_job("job-fail", &FailingRunner).is_err());
        assert!(matches!(
            cluster.job("job-fail").unwrap().phase(),
            JobPhase::Failed { .. }
        ));
        assert_eq!(
            cluster.node("quiet").unwrap().allocated(),
            Resources::default()
        );
    }

    #[test]
    fn run_requires_scheduling_and_image() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("job-x", 4);
        cluster.submit_job(spec).unwrap();
        // Not scheduled yet.
        assert!(cluster.run_job("job-x", &EchoRunner).is_err());
        cluster
            .schedule_job("job-x", &default_filters(), &AverageErrorScore)
            .unwrap();
        // Image was never pushed.
        assert!(matches!(
            cluster.run_job("job-x", &EchoRunner),
            Err(ClusterError::ImageNotFound(_))
        ));
        assert!(cluster.run_job("unknown", &EchoRunner).is_err());
    }

    #[test]
    fn queue_processes_jobs_in_fifo_order() {
        let mut cluster = cluster_with_nodes();
        for name in ["q-1", "q-2", "q-3"] {
            let spec = make_spec(name, 4);
            push_image_for(&mut cluster, &spec);
            cluster.submit_job(spec).unwrap();
        }
        assert_eq!(cluster.pending_jobs(), vec!["q-1", "q-2", "q-3"]);
        let decisions = cluster.process_queue(&default_filters(), &AverageErrorScore, &EchoRunner);
        assert_eq!(decisions.len(), 3);
        assert!(cluster.pending_jobs().is_empty());
        for name in ["q-1", "q-2", "q-3"] {
            assert!(matches!(
                cluster.job(name).unwrap().phase(),
                JobPhase::Succeeded { .. }
            ));
        }
    }

    #[test]
    fn node_load_tracks_bound_jobs_and_utilization() {
        let mut cluster = cluster_with_nodes();
        assert_eq!(cluster.node_load("missing"), None);
        let idle = cluster.node_load("quiet").unwrap();
        assert_eq!(idle.active_jobs, 0);
        assert_eq!(idle.utilization(), 0.0);

        let spec = make_spec("load-job", 4);
        push_image_for(&mut cluster, &spec);
        cluster.submit_job(spec).unwrap();
        cluster
            .schedule_job("load-job", &default_filters(), &AverageErrorScore)
            .unwrap();
        let busy = cluster.node_load("quiet").unwrap();
        assert_eq!(busy.active_jobs, 1);
        assert!((busy.cpu_utilization - 0.25).abs() < 1e-12);
        assert!((busy.memory_utilization - 0.125).abs() < 1e-12);
        assert!((busy.utilization() - 0.25).abs() < 1e-12);
        // Every node is reported, in name order.
        let loads = cluster.node_loads();
        assert_eq!(loads.len(), 3);
        assert!(loads.windows(2).all(|w| w[0].0 < w[1].0));

        cluster.run_job("load-job", &EchoRunner).unwrap();
        assert_eq!(cluster.node_load("quiet").unwrap().active_jobs, 0);
    }

    #[test]
    fn self_healing_restarts_failed_nodes() {
        let mut cluster = cluster_with_nodes();
        cluster.node_mut("noisy").unwrap().mark_not_ready();
        assert_eq!(cluster.ready_nodes().count(), 2);
        let healed = cluster.heal_nodes();
        assert_eq!(healed, vec!["noisy"]);
        assert_eq!(cluster.ready_nodes().count(), 3);
        assert_eq!(cluster.node("noisy").unwrap().restart_count(), 1);
    }

    #[test]
    fn rebind_moves_scheduled_jobs_and_their_resources() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("mover", 4);
        push_image_for(&mut cluster, &spec);
        cluster.submit_job(spec).unwrap();
        cluster
            .schedule_job("mover", &default_filters(), &AverageErrorScore)
            .unwrap();
        assert_eq!(cluster.job("mover").unwrap().phase().node(), Some("quiet"));

        cluster.rebind_job("mover", "noisy").unwrap();
        assert_eq!(cluster.job("mover").unwrap().phase().node(), Some("noisy"));
        assert_eq!(
            cluster.node("quiet").unwrap().allocated(),
            Resources::default()
        );
        assert_eq!(
            cluster.node("noisy").unwrap().allocated(),
            Resources::new(1000, 1024)
        );
        assert!(cluster.events().iter().any(|e| e.kind == "JobRebound"));
        // Rebinding onto the current node is a no-op.
        cluster.rebind_job("mover", "noisy").unwrap();
        // The migrated job still runs to completion on the new node.
        cluster.run_job("mover", &EchoRunner).unwrap();
        assert_eq!(cluster.job("mover").unwrap().phase().node(), Some("noisy"));
    }

    #[test]
    fn rebind_rejects_bad_targets_and_phases() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("stuck", 4);
        push_image_for(&mut cluster, &spec);
        cluster.submit_job(spec).unwrap();
        // Pending jobs cannot be rebound.
        assert!(matches!(
            cluster.rebind_job("stuck", "noisy"),
            Err(ClusterError::BindingRejected { .. })
        ));
        cluster
            .schedule_job("stuck", &default_filters(), &AverageErrorScore)
            .unwrap();
        assert!(matches!(
            cluster.rebind_job("stuck", "missing"),
            Err(ClusterError::UnknownNode(_))
        ));
        assert!(matches!(
            cluster.rebind_job("ghost", "noisy"),
            Err(ClusterError::UnknownJob(_))
        ));
        // A full target node rejects the rebind and the old binding survives.
        let mut hog = make_spec("hog", 4);
        hog.resources = Resources::new(4000, 8192);
        push_image_for(&mut cluster, &hog);
        cluster.submit_job(hog).unwrap();
        cluster
            .schedule_job("hog", &default_filters(), &AverageErrorScore)
            .unwrap();
        let hog_node = cluster
            .job("hog")
            .unwrap()
            .phase()
            .node()
            .unwrap()
            .to_string();
        assert_ne!(hog_node, "quiet", "hog does not fit next to 'stuck'");
        let err = cluster.rebind_job("stuck", &hog_node);
        assert!(matches!(err, Err(ClusterError::BindingRejected { .. })));
        assert_eq!(cluster.job("stuck").unwrap().phase().node(), Some("quiet"));
    }

    #[test]
    fn update_node_backend_refreshes_calibration_labels() {
        let mut cluster = cluster_with_nodes();
        let before = cluster.node("quiet").unwrap().node_labels();
        assert!((before.avg_two_qubit_error - 0.02).abs() < 1e-12);
        let drifted = Backend::uniform("quiet", topology::line(8), 0.01, 0.3);
        cluster.update_node_backend(drifted).unwrap();
        let after = cluster.node("quiet").unwrap().node_labels();
        assert!((after.avg_two_qubit_error - 0.3).abs() < 1e-12);
        assert!(cluster.events().iter().any(|e| e.kind == "NodeCalibrated"));
        // Unknown nodes are rejected.
        let stranger = Backend::uniform("stranger", topology::line(4), 0.0, 0.0);
        assert!(matches!(
            cluster.update_node_backend(stranger),
            Err(ClusterError::UnknownNode(_))
        ));
    }

    #[test]
    fn cancel_dequeues_pending_and_releases_scheduled_resources() {
        let mut cluster = cluster_with_nodes();
        // Pending: cancellation removes the job from the submission queue.
        let pending = make_spec("cancel-pending", 4);
        push_image_for(&mut cluster, &pending);
        cluster.submit_job(pending).unwrap();
        assert_eq!(cluster.pending_jobs(), vec!["cancel-pending"]);
        cluster
            .cancel_job("cancel-pending", "user request")
            .unwrap();
        assert!(cluster.pending_jobs().is_empty());
        assert!(matches!(
            cluster.job("cancel-pending").unwrap().phase(),
            JobPhase::Cancelled { .. }
        ));
        assert!(cluster.events().iter().any(|e| e.kind == "JobCancelled"));

        // Scheduled: cancellation releases the node's reserved resources.
        let scheduled = make_spec("cancel-scheduled", 4);
        push_image_for(&mut cluster, &scheduled);
        cluster.submit_job(scheduled).unwrap();
        cluster
            .schedule_job("cancel-scheduled", &default_filters(), &AverageErrorScore)
            .unwrap();
        assert_eq!(
            cluster.node("quiet").unwrap().allocated(),
            Resources::new(1000, 1024)
        );
        cluster.cancel_job("cancel-scheduled", "obsolete").unwrap();
        assert_eq!(
            cluster.node("quiet").unwrap().allocated(),
            Resources::default()
        );
        // A cancelled job cannot be run or cancelled again.
        assert!(cluster.run_job("cancel-scheduled", &EchoRunner).is_err());
        assert!(matches!(
            cluster.cancel_job("cancel-scheduled", "again"),
            Err(ClusterError::PhaseConflict { .. })
        ));
        assert!(matches!(
            cluster.cancel_job("ghost", "missing"),
            Err(ClusterError::UnknownJob(_))
        ));
    }

    #[test]
    fn cancel_rejects_running_and_succeeded_jobs() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("done-job", 4);
        push_image_for(&mut cluster, &spec);
        cluster.submit_job(spec).unwrap();
        cluster
            .schedule_job("done-job", &default_filters(), &AverageErrorScore)
            .unwrap();
        cluster.run_job("done-job", &EchoRunner).unwrap();
        assert!(matches!(
            cluster.cancel_job("done-job", "too late"),
            Err(ClusterError::PhaseConflict { .. })
        ));
        assert!(matches!(
            cluster.job("done-job").unwrap().phase(),
            JobPhase::Succeeded { .. }
        ));
    }

    #[test]
    fn remove_image_garbage_collects_the_registry() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("gc-job", 4);
        push_image_for(&mut cluster, &spec);
        assert!(cluster.registry().contains(&spec.image));
        let removed = cluster.remove_image(&spec.image).unwrap();
        assert_eq!(removed.name(), spec.image);
        assert!(!cluster.registry().contains(&spec.image));
        assert!(cluster.events().iter().any(|e| e.kind == "ImageRemoved"));
        // Removing a missing image is a silent no-op (no event).
        let events_before = cluster.events().len();
        assert!(cluster.remove_image("nope").is_none());
        assert_eq!(cluster.events().len(), events_before);
    }

    #[test]
    fn export_and_restore_round_trip_exactly() {
        let mut cluster = cluster_with_nodes();
        // Mixed state: a succeeded job, a scheduled (bound) job, a pending
        // job, a cordoned node, a restarted node, a custom label and live
        // registry counters.
        let done = make_spec("done", 4);
        push_image_for(&mut cluster, &done);
        cluster.submit_job(done).unwrap();
        cluster
            .schedule_job("done", &default_filters(), &AverageErrorScore)
            .unwrap();
        cluster.run_job("done", &EchoRunner).unwrap();

        let bound = make_spec("bound", 4);
        push_image_for(&mut cluster, &bound);
        cluster.submit_job(bound).unwrap();
        cluster
            .schedule_job("bound", &default_filters(), &AverageErrorScore)
            .unwrap();

        let waiting = make_spec("waiting", 4);
        cluster.submit_job(waiting).unwrap();

        cluster.node_mut("tiny").unwrap().cordon();
        cluster.node_mut("noisy").unwrap().mark_not_ready();
        cluster.heal_nodes();
        cluster
            .node_mut("noisy")
            .unwrap()
            .set_label("vendor", "umich");

        let state = cluster.export_state();
        let restored = Cluster::from_state(state.clone());

        // The restored cluster exports byte-for-byte the same state.
        assert_eq!(restored.export_state(), state);
        // Live behaviour survives: the pending queue, bound resources and
        // counters are intact.
        assert_eq!(restored.pending_jobs(), vec!["waiting"]);
        assert_eq!(
            restored.node("quiet").unwrap().allocated(),
            Resources::new(1000, 1024)
        );
        assert_eq!(restored.node("noisy").unwrap().restart_count(), 1);
        assert_eq!(
            restored.node("tiny").unwrap().status(),
            NodeStatus::Cordoned
        );
        assert_eq!(
            restored.node("noisy").unwrap().labels().get("vendor"),
            Some(&"umich".to_string())
        );
        assert_eq!(
            restored.registry().pull_count(),
            cluster.registry().pull_count()
        );
        assert_eq!(restored.events().len(), cluster.events().len());
    }

    #[test]
    fn duplicate_jobs_rejected_and_logs_accessible() {
        let mut cluster = cluster_with_nodes();
        let spec = make_spec("dup", 3);
        cluster.submit_job(spec.clone()).unwrap();
        assert!(cluster.submit_job(spec).is_err());
        assert!(cluster.job_logs("dup").unwrap().is_empty());
        assert!(cluster.job_logs("missing").is_err());
    }

    fn submit_and_schedule(cluster: &mut Cluster, name: &str) {
        let spec = make_spec(name, 4);
        push_image_for(cluster, &spec);
        cluster.submit_job(spec).unwrap();
        cluster
            .schedule_job(name, &default_filters(), &AverageErrorScore)
            .unwrap();
    }

    #[test]
    fn injected_fault_fails_job_and_releases_resources() {
        let mut cluster = cluster_with_nodes();
        cluster.set_fault_injector(Some(FaultInjector {
            transient_rate: 1.0,
            ..FaultInjector::new(11)
        }));
        submit_and_schedule(&mut cluster, "doomed");
        let err = cluster.run_job("doomed", &EchoRunner).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InjectedFault {
                kind: FaultKind::TransientExecution,
                attempt: 0,
                ..
            }
        ));
        assert!(matches!(
            cluster.job("doomed").unwrap().phase(),
            JobPhase::Failed { .. }
        ));
        // Resources released and the injection left an audit trail.
        assert_eq!(
            cluster.node("quiet").unwrap().allocated(),
            Resources::default()
        );
        assert!(cluster
            .events()
            .iter()
            .any(|e| e.kind == "JobFaultInjected"));
    }

    #[test]
    fn fault_decisions_are_deterministic_per_attempt() {
        let injector = FaultInjector {
            transient_rate: 0.3,
            calibration_rate: 0.2,
            ..FaultInjector::new(99)
        };
        for attempt in 0..32 {
            assert_eq!(
                injector.decide("job", "node", attempt),
                injector.decide("job", "node", attempt)
            );
        }
        // Some attempt escapes the injector: a retry loop can make progress.
        assert!((0..32).any(|a| injector.decide("job", "node", a).is_none()));
    }

    #[test]
    fn device_flap_marks_node_not_ready_and_heals() {
        let mut cluster = cluster_with_nodes();
        cluster.set_fault_injector(Some(FaultInjector {
            flap_rate: 1.0,
            ..FaultInjector::new(3)
        }));
        submit_and_schedule(&mut cluster, "flappy");
        let err = cluster.run_job("flappy", &EchoRunner).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InjectedFault {
                kind: FaultKind::DeviceFlap,
                ..
            }
        ));
        assert_eq!(
            cluster.node("quiet").unwrap().status(),
            NodeStatus::NotReady
        );
        assert!(cluster.events().iter().any(|e| e.kind == "NodeFlapped"));
        cluster.heal_nodes();
        assert_eq!(cluster.node("quiet").unwrap().status(), NodeStatus::Ready);
    }

    #[test]
    fn requeue_returns_failed_job_to_pending() {
        let mut cluster = cluster_with_nodes();
        submit_and_schedule(&mut cluster, "retry-me");
        assert!(cluster.run_job("retry-me", &FailingRunner).is_err());
        // Only Failed jobs may be requeued.
        cluster.requeue_job("retry-me").unwrap();
        assert!(matches!(
            cluster.job("retry-me").unwrap().phase(),
            JobPhase::Pending
        ));
        assert_eq!(cluster.pending_jobs(), vec!["retry-me"]);
        assert!(cluster.events().iter().any(|e| e.kind == "JobRequeued"));
        // A pending job cannot be requeued again; unknown jobs error.
        assert!(matches!(
            cluster.requeue_job("retry-me"),
            Err(ClusterError::PhaseConflict { .. })
        ));
        assert!(matches!(
            cluster.requeue_job("ghost"),
            Err(ClusterError::UnknownJob { .. })
        ));
        // The requeued job schedules and runs to completion again.
        cluster
            .schedule_job("retry-me", &default_filters(), &AverageErrorScore)
            .unwrap();
        cluster.run_job("retry-me", &EchoRunner).unwrap();
    }

    #[test]
    fn interrupt_turns_scheduled_job_into_flap_fault() {
        let mut cluster = cluster_with_nodes();
        submit_and_schedule(&mut cluster, "cut-short");
        let err = cluster.interrupt_job("cut-short", 2).unwrap_err();
        assert!(matches!(
            err,
            ClusterError::InjectedFault {
                kind: FaultKind::DeviceFlap,
                attempt: 2,
                ..
            }
        ));
        assert!(matches!(
            cluster.job("cut-short").unwrap().phase(),
            JobPhase::Failed { .. }
        ));
        assert_eq!(
            cluster.node("quiet").unwrap().allocated(),
            Resources::default()
        );
        // Interrupting a non-scheduled job is an error.
        assert!(cluster.interrupt_job("cut-short", 3).is_err());
        assert!(cluster.interrupt_job("missing", 0).is_err());
    }

    #[test]
    fn fault_injector_survives_state_export() {
        let mut cluster = cluster_with_nodes();
        let injector = FaultInjector {
            transient_rate: 0.25,
            slow_rate: 0.1,
            ..FaultInjector::new(7)
        };
        cluster.set_fault_injector(Some(injector));
        let restored = Cluster::from_state(cluster.export_state());
        assert_eq!(restored.fault_injector(), Some(&injector));
    }
}
