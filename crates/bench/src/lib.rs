//! # qrio-bench
//!
//! Benchmark harness for the QRIO reproduction: one binary per table/figure of
//! the paper's evaluation (run with `cargo run -p qrio-bench --release --bin
//! <name>`) plus Criterion micro-benchmarks (`cargo bench`).
//!
//! This library crate only hosts small output helpers shared by the binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Print a two-column table with a title, matching the plain-text rendering
/// used in `EXPERIMENTS.md`.
pub fn print_table(title: &str, headers: (&str, &str), rows: &[(String, String)]) {
    println!("\n== {title} ==");
    println!("{:<36} {:>18}", headers.0, headers.1);
    println!("{}", "-".repeat(56));
    for (left, right) in rows {
        println!("{left:<36} {right:>18}");
    }
}

/// Format a float with three decimal places (the precision used throughout the
/// experiment output).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt3_rounds() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt3(0.0), "0.000");
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table("demo", ("k", "v"), &[("a".into(), "1".into())]);
    }
}
