//! `bench_cloud` — the cloud-contention workload benchmark behind
//! `BENCH_cloud.json`.
//!
//! Replays a [`qrio_loadgen`] scenario (thousands of jobs, several tenants,
//! calibration drift and outages) through the full QRIO stack in virtual
//! time, **twice**, asserts the two reports are byte-identical (the
//! determinism contract every scaling PR benchmarks against), and writes the
//! report.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrio-bench --release --bin bench_cloud [-- --smoke]
//!     [--scenario PATH] [--out PATH] [--transport in-proc|threaded]
//!     [--threads N]
//! ```
//!
//! `--smoke` switches to the embedded 30-virtual-second CI scenario;
//! `--scenario` loads a custom YAML; `--out` overrides the default
//! `BENCH_cloud.json` output path. `--transport` picks the control-plane
//! transport (default `in-proc`); `--threads` sets the worker count for
//! `--transport threaded`. Reports are byte-identical across transports and
//! thread counts — CI compares them.

use qrio::TransportMode;
use qrio_bench::print_table;
use qrio_loadgen::{run_scenario_with_transport, CloudReport, Scenario};

/// The flagship scenario (≥ 2000 jobs, 4 tenants, outage + two drifts).
const CLOUD_SCENARIO: &str = include_str!("../../../../scenarios/cloud.yaml");
/// The CI smoke scenario (30 virtual seconds, 3 tenants, outage + drift).
const SMOKE_SCENARIO: &str = include_str!("../../../../scenarios/cloud_smoke.yaml");

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cloud.json".to_string());
    let scenario_text = match args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
    {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read scenario '{path}': {e}")),
        None if smoke => SMOKE_SCENARIO.to_string(),
        None => CLOUD_SCENARIO.to_string(),
    };

    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--threads takes a number"))
        .unwrap_or(2);
    let mode = match args
        .iter()
        .position(|a| a == "--transport")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        None | Some("in-proc") => TransportMode::InProc,
        Some("threaded") => TransportMode::Threaded { threads },
        Some(other) => panic!("unknown transport '{other}' (in-proc | threaded)"),
    };

    let scenario = Scenario::from_yaml(&scenario_text).expect("scenario parses");
    println!(
        "bench_cloud: scenario '{}' (seed {}, {} devices, {} tenants, {} events, transport {})",
        scenario.name,
        scenario.seed,
        scenario.fleet.len(),
        scenario.tenants.len(),
        scenario.events.len(),
        match mode {
            TransportMode::InProc => "in-proc".to_string(),
            TransportMode::Threaded { threads } => format!("threaded x{threads}"),
        }
    );

    // Two full runs with the same seed: the reports must match byte for byte.
    let wall = std::time::Instant::now();
    let report = run_scenario_with_transport(&scenario, mode).expect("scenario runs");
    let first_secs = wall.elapsed().as_secs_f64();
    let replay = run_scenario_with_transport(&scenario, mode).expect("scenario replays");
    let json = report.to_json();
    assert_eq!(
        json,
        replay.to_json(),
        "same-seed runs must produce byte-identical reports"
    );
    println!(
        "determinism: two same-seed runs produced byte-identical reports \
         ({} bytes, first run {first_secs:.1}s wall)",
        json.len()
    );

    summarize(&report);

    std::fs::write(&out_path, &json).expect("cannot write BENCH_cloud.json");
    println!("wrote {out_path}");

    // Acceptance floors for the flagship scenario; CI smoke skips the volume
    // floor but keeps the structural ones.
    assert!(
        report.drift_events >= 1,
        "scenario must include a drift event"
    );
    assert!(
        report.tenants.len() >= 3,
        "scenario must include >= 3 tenants"
    );
    assert!(report.completed > 0, "no jobs completed");
    if !smoke {
        assert!(
            report.submitted >= 2000,
            "flagship scenario must submit >= 2000 jobs, got {}",
            report.submitted
        );
    }
    let drained = report.completed + report.rejected + report.execution_failures;
    assert_eq!(
        drained, report.submitted,
        "every submitted job must drain by the end of the run"
    );
}

fn summarize(report: &CloudReport) {
    let rows: Vec<(String, String)> = report
        .tenants
        .iter()
        .map(|(tenant, stats)| {
            (
                tenant.clone(),
                format!(
                    "{} done, p95 {} ms, F {:.3}",
                    stats.completed, stats.p95_latency_ms, stats.mean_fidelity
                ),
            )
        })
        .collect();
    print_table(
        &format!(
            "bench_cloud: {} jobs over {:.1} virtual s ({} migrations, cache hit rate {:.2})",
            report.completed,
            report.makespan_ms as f64 / 1000.0,
            report.migrations,
            report.cache_hit_rate
        ),
        ("tenant", "throughput / latency"),
        &rows,
    );
    let device_rows: Vec<(String, String)> = report
        .devices
        .iter()
        .map(|(device, stats)| {
            (
                device.clone(),
                format!(
                    "{} done, util {:.2}, peak queue {}",
                    stats.completed, stats.utilization, stats.peak_queue_depth
                ),
            )
        })
        .collect();
    print_table("devices", ("device", "load"), &device_rows);
    let curve: Vec<(String, String)> = report
        .fidelity_vs_load
        .iter()
        .map(|bucket| {
            (
                format!("queue depth {}", bucket.queue_depth),
                format!("{} jobs, F {:.3}", bucket.jobs, bucket.mean_fidelity),
            )
        })
        .collect();
    print_table("fidelity vs load", ("load", "fidelity"), &curve);
}
