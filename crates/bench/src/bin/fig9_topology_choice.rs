//! Figures 8–9: the user draws a tree-like 10-qubit topology; QRIO must select
//! the tree-shaped device out of {tree, ring, line} candidates with equalised
//! error rates, in every one of 50 repetitions.
//!
//! Run with: `cargo run -p qrio-bench --release --bin fig9_topology_choice`

use qrio::experiments::{fig9_devices, fig9_topology_choice, ExperimentConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExperimentConfig {
        shots: 256,
        seed: 0x51D0,
        repetitions: 50,
    };
    println!(
        "Fig. 9: topology-requirement based device choice ({} repetitions)",
        config.repetitions
    );
    for device in fig9_devices() {
        println!(
            "  candidate {:<16} {:>2} qubits, {:>2} edges",
            device.name(),
            device.num_qubits(),
            device.coupling_map().num_edges()
        );
    }
    let result = fig9_topology_choice(&config)?;
    let mut counts = std::collections::BTreeMap::new();
    for selection in &result.selections {
        *counts.entry(selection.clone()).or_insert(0usize) += 1;
    }
    println!("\nselections over {} repetitions:", result.selections.len());
    for (device, count) in &counts {
        println!("  {device:<18} chosen {count} times");
    }
    println!(
        "\nexpected shape: '{}' chosen in every repetition -> {}",
        result.expected,
        if result.always_selected_expected() {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    Ok(())
}
