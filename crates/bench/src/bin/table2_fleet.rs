//! Table 2: the controllable backend parameters and the generated 100-device
//! fleet.
//!
//! Run with: `cargo run -p qrio-bench --release --bin table2_fleet`

use qrio_backend::fleet::{paper_fleet, FleetConfig};
use qrio_bench::print_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = FleetConfig::paper_table2();
    let rows = vec![
        (
            "Number of qubits".to_string(),
            format!("{:?}", config.qubit_counts),
        ),
        (
            "2-qubit gate error rate".to_string(),
            format!("{:?}", config.two_qubit_error_range),
        ),
        (
            "1-qubit gate error rate".to_string(),
            format!("{:?}", config.single_qubit_error_range),
        ),
        (
            "Readout rate".to_string(),
            format!("{:?}", config.readout_errors),
        ),
        ("T1 (us)".to_string(), format!("{:?}", config.t1_values_us)),
        ("T2 (us)".to_string(), format!("{:?}", config.t2_values_us)),
        (
            "Readout length (ns)".to_string(),
            format!("{}", config.readout_length_ns),
        ),
        (
            "Edge connect probabilities".to_string(),
            format!("{:?}", config.edge_probabilities),
        ),
        ("Basis gates".to_string(), config.basis_gates.to_string()),
    ];
    print_table(
        "Table 2: controllable backend parameters",
        ("parameter", "values"),
        &rows,
    );

    let fleet = paper_fleet()?;
    println!("\ngenerated fleet: {} devices", fleet.len());
    println!(
        "{:<26} {:>7} {:>7} {:>12} {:>12} {:>12}",
        "device", "qubits", "edges", "avg 2q err", "avg ro err", "avg T1 (us)"
    );
    for backend in fleet.iter().step_by(7) {
        println!(
            "{:<26} {:>7} {:>7} {:>12.4} {:>12.4} {:>12.0}",
            backend.name(),
            backend.num_qubits(),
            backend.coupling_map().num_edges(),
            backend.avg_two_qubit_error(),
            backend.avg_readout_error(),
            backend.avg_t1_us(),
        );
    }
    println!("(one row shown per 7 devices; all 100 are generated deterministically)");
    Ok(())
}
