//! `bench_sim` — the simulation hot-path benchmark behind `BENCH_sim.json`.
//!
//! Measures the rebuilt `qrio-sim` execution engine against the seed
//! implementation (kept verbatim in [`naive`]): the Clifford-canary shot
//! loop, ideal statevector sampling, stabilizer gate throughput, the noisy
//! Monte-Carlo path, pattern-graph dedup and the VF2 embedding search. Every
//! metric records a baseline number, a current number and the speedup, so
//! this PR and every future one has before/after evidence.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrio-bench --release --bin bench_sim [-- --smoke] [--out PATH] [--canary PATH]
//! ```
//!
//! `--smoke` shrinks iteration counts for CI; `--out` overrides the default
//! `BENCH_sim.json` output path. `--canary PATH` skips the timing loops and
//! instead runs the noisy Clifford canary once on the Pauli-frame path at
//! 1/2/8 threads plus the forced replay path, asserts all four histograms are
//! identical, and writes the counts to `PATH` — CI runs this twice and
//! `cmp`s the files to pin byte-reproducibility.

use std::fmt::Write as _;
use std::time::Instant;

use qrio_backend::topology;
use qrio_circuit::{library, Circuit, Gate};
use qrio_layout::{find_embeddings, PatternGraph, SearchOptions};
use qrio_sim::{
    run_ideal_parallel, run_with_noise_parallel, run_with_noise_path, ExecutionPath, NoiseModel,
    ParallelConfig, StabilizerSimulator, StateVector,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The seed (pre-optimisation) implementations, kept verbatim so the
/// baseline is measured on the same machine in the same process — not
/// copied from a stale lab notebook.
mod naive {
    use qrio_circuit::{Circuit, Gate};
    use qrio_sim::{Complex64, NoiseModel};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The seed `Vec<Vec<bool>>` CHP tableau (boolean rows, per-qubit phase
    /// lookup), exactly as shipped before the bit-packed rebuild.
    pub struct Tableau {
        n: usize,
        x: Vec<Vec<bool>>,
        z: Vec<Vec<bool>>,
        r: Vec<bool>,
    }

    impl Tableau {
        pub fn new(num_qubits: usize) -> Self {
            let n = num_qubits;
            let rows = 2 * n + 1;
            let mut x = vec![vec![false; n]; rows];
            let mut z = vec![vec![false; n]; rows];
            let r = vec![false; rows];
            for i in 0..n {
                x[i][i] = true;
                z[n + i][i] = true;
            }
            Tableau { n, x, z, r }
        }

        fn h(&mut self, a: usize) {
            for i in 0..2 * self.n {
                let (xi, zi) = (self.x[i][a], self.z[i][a]);
                self.r[i] ^= xi && zi;
                self.x[i][a] = zi;
                self.z[i][a] = xi;
            }
        }

        fn s(&mut self, a: usize) {
            for i in 0..2 * self.n {
                let (xi, zi) = (self.x[i][a], self.z[i][a]);
                self.r[i] ^= xi && zi;
                self.z[i][a] = zi ^ xi;
            }
        }

        fn cx(&mut self, a: usize, b: usize) {
            for i in 0..2 * self.n {
                let (xia, zia) = (self.x[i][a], self.z[i][a]);
                let (xib, zib) = (self.x[i][b], self.z[i][b]);
                self.r[i] ^= xia && zib && (xib ^ zia ^ true);
                self.x[i][b] = xib ^ xia;
                self.z[i][a] = zia ^ zib;
            }
        }

        fn x_gate(&mut self, a: usize) {
            for i in 0..2 * self.n {
                self.r[i] ^= self.z[i][a];
            }
        }

        fn z_gate(&mut self, a: usize) {
            for i in 0..2 * self.n {
                self.r[i] ^= self.x[i][a];
            }
        }

        /// Apply one gate from the set the benchmark circuits use.
        pub fn apply_gate(&mut self, gate: &Gate, qubits: &[usize]) {
            match *gate {
                Gate::H => self.h(qubits[0]),
                Gate::S => self.s(qubits[0]),
                Gate::X => self.x_gate(qubits[0]),
                Gate::Y => {
                    self.z_gate(qubits[0]);
                    self.x_gate(qubits[0]);
                }
                Gate::Z => self.z_gate(qubits[0]),
                Gate::CX => self.cx(qubits[0], qubits[1]),
                ref g => panic!("naive tableau: unsupported benchmark gate {g:?}"),
            }
        }

        fn rowsum(&mut self, h: usize, i: usize) {
            let mut phase: i32 = i32::from(self.r[h]) * 2 + i32::from(self.r[i]) * 2;
            for j in 0..self.n {
                phase += g(self.x[i][j], self.z[i][j], self.x[h][j], self.z[h][j]);
            }
            self.r[h] = phase.rem_euclid(4) == 2;
            for j in 0..self.n {
                self.x[h][j] ^= self.x[i][j];
                self.z[h][j] ^= self.z[i][j];
            }
        }

        pub fn measure(&mut self, a: usize, rng: &mut StdRng) -> bool {
            let n = self.n;
            let mut p = None;
            for i in n..2 * n {
                if self.x[i][a] {
                    p = Some(i);
                    break;
                }
            }
            if let Some(p) = p {
                for i in 0..2 * n {
                    if i != p && self.x[i][a] {
                        self.rowsum(i, p);
                    }
                }
                self.x[p - n] = self.x[p].clone();
                self.z[p - n] = self.z[p].clone();
                self.r[p - n] = self.r[p];
                for j in 0..n {
                    self.x[p][j] = false;
                    self.z[p][j] = false;
                }
                self.z[p][a] = true;
                let outcome = rng.gen_bool(0.5);
                self.r[p] = outcome;
                outcome
            } else {
                let scratch = 2 * n;
                for j in 0..n {
                    self.x[scratch][j] = false;
                    self.z[scratch][j] = false;
                }
                self.r[scratch] = false;
                for i in 0..n {
                    if self.x[i][a] {
                        self.rowsum(scratch, i + n);
                    }
                }
                self.r[scratch]
            }
        }
    }

    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i32 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => i32::from(z2) - i32::from(x2),
            (true, false) => i32::from(z2) * (2 * i32::from(x2) - 1),
            (false, true) => i32::from(x2) * (1 - 2 * i32::from(z2)),
        }
    }

    /// The seed shot loop: rebuild the tableau and replay the whole circuit
    /// for every shot (the old `run_stabilizer_shot`, ideal-noise case).
    pub fn stabilizer_shot_loop(circuit: &Circuit, shots: u64, rng: &mut StdRng) -> u64 {
        let mut acc = 0u64;
        for _ in 0..shots {
            let mut sim = Tableau::new(circuit.num_qubits());
            let mut outcome = 0u64;
            for inst in circuit.instructions() {
                match inst.gate {
                    Gate::Barrier => {}
                    Gate::Measure => {
                        if sim.measure(inst.qubits[0], rng) {
                            outcome |= 1 << inst.clbits[0];
                        }
                    }
                    ref gate => sim.apply_gate(gate, &inst.qubits),
                }
            }
            acc ^= outcome;
        }
        acc
    }

    /// The seed noisy shot loop: replay with Pauli-error injection.
    pub fn noisy_stabilizer_shot_loop(
        circuit: &Circuit,
        noise: &NoiseModel,
        shots: u64,
        rng: &mut StdRng,
    ) -> u64 {
        let mut acc = 0u64;
        for _ in 0..shots {
            let mut sim = Tableau::new(circuit.num_qubits());
            let mut outcome = 0u64;
            for inst in circuit.instructions() {
                match inst.gate {
                    Gate::Barrier => {}
                    Gate::Measure => {
                        let raw = sim.measure(inst.qubits[0], rng);
                        if noise.flip_readout(inst.qubits[0], raw, rng) {
                            outcome |= 1 << inst.clbits[0];
                        }
                    }
                    ref gate => {
                        sim.apply_gate(gate, &inst.qubits);
                        for (q, pauli) in noise.sample_gate_errors(gate, &inst.qubits, rng) {
                            sim.apply_gate(&pauli.gate(), &[q]);
                        }
                    }
                }
            }
            acc ^= outcome;
        }
        acc
    }

    /// The seed statevector sampler: O(2^n) linear scan per draw.
    pub fn linear_scan_sample(amplitudes: &[Complex64], rng: &mut StdRng) -> u64 {
        let draw: f64 = rng.gen();
        let mut cumulative = 0.0;
        for (index, amp) in amplitudes.iter().enumerate() {
            cumulative += amp.norm_sqr();
            if draw < cumulative {
                return index as u64;
            }
        }
        (amplitudes.len() - 1) as u64
    }

    /// The seed O(E²) pattern-edge dedup (`Vec::contains` per edge).
    pub fn quadratic_edge_dedup(num_vertices: usize, edges: &[(usize, usize)]) -> usize {
        let mut cleaned: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in edges {
            if a == b || a >= num_vertices || b >= num_vertices {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if cleaned.contains(&key) {
                continue;
            }
            cleaned.push(key);
        }
        cleaned.len()
    }
}

/// One measured metric: baseline vs current in units/second (or seconds).
struct Metric {
    name: &'static str,
    unit: &'static str,
    baseline: f64,
    current: f64,
    note: &'static str,
}

impl Metric {
    fn speedup(&self) -> f64 {
        if self.baseline > 0.0 {
            self.current / self.baseline
        } else {
            0.0
        }
    }
}

/// Time `op` `reps` times and return the best (minimum) duration in seconds.
fn best_of<F: FnMut()>(reps: u32, mut op: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        op();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn statevector_circuit(qubits: usize) -> Circuit {
    // Entangled, non-uniform and non-Clifford: GHZ core plus rotations.
    let mut circuit = library::ghz(qubits).unwrap().without_measurements();
    circuit.append(Gate::T, &[0]).unwrap();
    circuit.append(Gate::RY(0.4), &[qubits / 2]).unwrap();
    circuit.append(Gate::H, &[qubits - 1]).unwrap();
    circuit
}

/// A fusion-friendly dense circuit: per-layer Euler-angle runs on every wire
/// (three 1q gates that collapse to one matrix) plus CZ·CP diagonal chains
/// (two 2q gates that collapse to one phase table).
fn fusion_circuit(qubits: usize, layers: usize) -> Circuit {
    let mut circuit = Circuit::new(qubits, 0);
    for layer in 0..layers {
        for q in 0..qubits {
            let theta = 0.1 + 0.05 * (layer * qubits + q) as f64;
            circuit.rz(theta, q).unwrap();
            circuit.rx(0.7, q).unwrap();
            circuit.rz(0.3, q).unwrap();
        }
        for q in 0..qubits - 1 {
            circuit.cz(q, q + 1).unwrap();
            circuit.append(Gate::CP(0.25), &[q, q + 1]).unwrap();
        }
    }
    circuit
}

/// `--canary PATH`: deterministic noisy-canary run, no timing. Asserts the
/// Pauli-frame path at 1/2/8 threads and the forced replay path all produce
/// the same histogram, then writes the counts as JSON for CI to diff.
fn run_canary(path: &str) {
    let canary = library::random_clifford_circuit(20, 8, 7).unwrap();
    let noise = NoiseModel::uniform(20, 0.01, 0.05, 0.02);
    let (shots, seed) = (1024u64, 13u64);
    let replay = run_with_noise_path(
        &canary,
        &noise,
        shots,
        seed,
        &ParallelConfig::serial(),
        ExecutionPath::Replay,
    )
    .unwrap();
    for threads in [1usize, 2, 8] {
        let frame = run_with_noise_path(
            &canary,
            &noise,
            shots,
            seed,
            &ParallelConfig::with_threads(threads),
            ExecutionPath::Frame,
        )
        .unwrap();
        assert_eq!(
            frame, replay,
            "canary: frame path at {threads} threads diverged from serial replay"
        );
    }
    let entries: Vec<(u64, u64)> = replay.iter().collect();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"canary\": \"noisy_clifford_20q_depth8\",");
    let _ = writeln!(json, "  \"shots\": {shots},");
    let _ = writeln!(json, "  \"seed\": {seed},");
    json.push_str("  \"counts\": {\n");
    for (index, (outcome, count)) in entries.iter().enumerate() {
        let comma = if index + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{outcome}\": {count}{comma}");
    }
    json.push_str("  }\n}\n");
    std::fs::write(path, &json).expect("cannot write canary output");
    println!(
        "canary: {} distinct outcomes over {shots} shots, frame path byte-identical \
         to replay across 1/2/8 threads; wrote {path}",
        entries.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--canary") {
        let path = args.get(i + 1).expect("--canary requires an output path");
        run_canary(path);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let reps: u32 = if smoke { 2 } else { 5 };
    let shots: u64 = 1024;
    let sv_qubits: usize = 20;
    let sv_draws: u64 = if smoke { 256 } else { 1024 };

    let mut metrics: Vec<Metric> = Vec::new();

    // --- 1. Clifford-canary shot loop (stabilizer, 1024 shots) -----------------------------
    let canary = library::random_clifford_circuit(20, 8, 7).unwrap();
    let baseline_secs = best_of(reps, || {
        let mut rng = StdRng::seed_from_u64(3);
        std::hint::black_box(naive::stabilizer_shot_loop(&canary, shots, &mut rng));
    });
    let current_secs = best_of(reps, || {
        std::hint::black_box(
            run_ideal_parallel(&canary, shots, 3, &ParallelConfig::auto()).unwrap(),
        );
    });
    let serial_secs = best_of(reps, || {
        std::hint::black_box(
            run_ideal_parallel(&canary, shots, 3, &ParallelConfig::serial()).unwrap(),
        );
    });
    metrics.push(Metric {
        name: "stabilizer_canary_shots_per_sec",
        unit: "shots/s",
        baseline: shots as f64 / baseline_secs,
        current: shots as f64 / current_secs,
        note: "20q depth-8 Clifford canary, 1024 shots; baseline replays the \
               circuit per shot on the seed Vec<bool> tableau",
    });
    metrics.push(Metric {
        name: "stabilizer_canary_shots_per_sec_serial",
        unit: "shots/s",
        baseline: shots as f64 / baseline_secs,
        current: shots as f64 / serial_secs,
        note: "same workload pinned to one thread (fast path only, no parallelism)",
    });

    // --- 2. Ideal statevector sampling at 20 qubits ----------------------------------------
    let sv_circuit = statevector_circuit(sv_qubits);
    let mut state = StateVector::new(sv_qubits).unwrap();
    state.apply_circuit(&sv_circuit).unwrap();
    let amplitudes: Vec<qrio_sim::Complex64> = (0..1usize << sv_qubits)
        .map(|i| state.amplitude(i))
        .collect();
    let baseline_secs = best_of(reps, || {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..sv_draws {
            std::hint::black_box(naive::linear_scan_sample(&amplitudes, &mut rng));
        }
    });
    // Current path includes building the cumulative table (amortised over the
    // draw loop, exactly as the executor fast path does it).
    let current_secs = best_of(reps, || {
        let table = state.cumulative_distribution();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..sv_draws {
            std::hint::black_box(table.sample(&mut rng));
        }
    });
    metrics.push(Metric {
        name: "statevector_sampling_20q_samples_per_sec",
        unit: "samples/s",
        baseline: sv_draws as f64 / baseline_secs,
        current: sv_draws as f64 / current_secs,
        note: "20-qubit ideal terminal sampling; baseline linear-scans 2^20 \
               amplitudes per draw, current builds the cumulative table once \
               (cost included) and binary-searches per draw",
    });

    // --- 3. End-to-end ideal statevector execution at 20 qubits ----------------------------
    let mut measured = sv_circuit.clone();
    measured.measure_all().unwrap();
    let e2e_shots = if smoke { 256 } else { 1024 };
    let current_secs = best_of(reps, || {
        std::hint::black_box(
            run_ideal_parallel(&measured, e2e_shots, 5, &ParallelConfig::auto()).unwrap(),
        );
    });
    // Baseline = state build (shared) + naive per-shot linear scans.
    let build_secs = best_of(reps, || {
        let mut sv = StateVector::new(sv_qubits).unwrap();
        sv.apply_circuit(&sv_circuit).unwrap();
        std::hint::black_box(&sv);
    });
    let scan_secs = best_of(reps, || {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..e2e_shots {
            std::hint::black_box(naive::linear_scan_sample(&amplitudes, &mut rng));
        }
    });
    metrics.push(Metric {
        name: "statevector_run_ideal_20q_shots_per_sec",
        unit: "shots/s",
        baseline: e2e_shots as f64 / (build_secs + scan_secs),
        current: e2e_shots as f64 / current_secs,
        note: "full run_ideal at 20 qubits (state build + sampling)",
    });

    // --- 4. Stabilizer gate throughput ------------------------------------------------------
    let big = library::random_clifford_circuit(100, 40, 11).unwrap();
    let gates = big
        .instructions()
        .iter()
        .filter(|i| !matches!(i.gate, Gate::Measure | Gate::Barrier))
        .count();
    let baseline_secs = best_of(reps, || {
        let mut sim = naive::Tableau::new(100);
        for inst in big.instructions() {
            if matches!(inst.gate, Gate::Measure | Gate::Barrier) {
                continue;
            }
            sim.apply_gate(&inst.gate, &inst.qubits);
        }
        std::hint::black_box(&sim);
    });
    let current_secs = best_of(reps, || {
        let mut sim = StabilizerSimulator::new(100);
        sim.apply_circuit(&big).unwrap();
        std::hint::black_box(&sim);
    });
    metrics.push(Metric {
        name: "stabilizer_gate_throughput_gates_per_sec",
        unit: "gates/s",
        baseline: gates as f64 / baseline_secs,
        current: gates as f64 / current_secs,
        note: "100-qubit depth-40 Clifford circuit applied to a fresh tableau",
    });

    // --- 5. Noisy stabilizer path ----------------------------------------------------------
    let noise = NoiseModel::uniform(20, 0.01, 0.05, 0.02);
    let baseline_secs = best_of(reps, || {
        let mut rng = StdRng::seed_from_u64(13);
        std::hint::black_box(naive::noisy_stabilizer_shot_loop(
            &canary, &noise, shots, &mut rng,
        ));
    });
    let current_secs = best_of(reps, || {
        std::hint::black_box(
            run_with_noise_parallel(&canary, &noise, shots, 13, &ParallelConfig::auto()).unwrap(),
        );
    });
    metrics.push(Metric {
        name: "noisy_stabilizer_shots_per_sec",
        unit: "shots/s",
        baseline: shots as f64 / baseline_secs,
        current: shots as f64 / current_secs,
        note: "Monte-Carlo noise on the Pauli-frame path: ideal tableau built \
               once, each shot propagates an n-qubit X/Z frame in O(n*depth) \
               word ops and replays nothing; byte-identical to per-shot replay",
    });

    // --- 5b. Statevector gate fusion --------------------------------------------------------
    let fusion = fusion_circuit(16, 6);
    let fusion_gates = fusion.instructions().len();
    let baseline_secs = best_of(reps, || {
        let mut sv = StateVector::new(16).unwrap();
        for inst in fusion.instructions() {
            sv.apply_gate(&inst.gate, &inst.qubits).unwrap();
        }
        std::hint::black_box(&sv);
    });
    let current_secs = best_of(reps, || {
        let mut sv = StateVector::new(16).unwrap();
        sv.apply_circuit(&fusion).unwrap();
        std::hint::black_box(&sv);
    });
    metrics.push(Metric {
        name: "statevector_fusion_gates_per_sec",
        unit: "gates/s",
        baseline: fusion_gates as f64 / baseline_secs,
        current: fusion_gates as f64 / current_secs,
        note: "16q dense circuit of Euler-angle runs and CZ*CP chains; baseline \
               applies each gate as its own pass, current fuses adjacent 1q \
               gates into one 2x2 matrix and commuting diagonal pairs into one \
               phase table (fusion cost included)",
    });

    // --- 6. Pattern-graph dedup + VF2 embedding search --------------------------------------
    let n = if smoke { 80 } else { 140 };
    let mut dense_edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            dense_edges.push((a, b));
            dense_edges.push((b, a));
        }
    }
    let baseline_secs = best_of(reps, || {
        std::hint::black_box(naive::quadratic_edge_dedup(n, &dense_edges));
    });
    let current_secs = best_of(reps, || {
        std::hint::black_box(PatternGraph::new(n, &dense_edges));
    });
    metrics.push(Metric {
        name: "pattern_graph_dedup_edges_per_sec",
        unit: "edges/s",
        baseline: dense_edges.len() as f64 / baseline_secs,
        current: dense_edges.len() as f64 / current_secs,
        note: "dense fully-connected pattern, every edge in both orientations; \
               baseline is the seed O(E^2) Vec::contains scan",
    });

    let pattern = PatternGraph::new(8, &topology::ring(8).edges());
    let device = topology::grid(6, 6);
    let embed_secs = best_of(reps, || {
        std::hint::black_box(find_embeddings(&pattern, &device, SearchOptions::default()));
    });
    metrics.push(Metric {
        name: "embedding_search_seconds",
        unit: "s",
        baseline: embed_secs,
        current: embed_secs,
        note: "ring-8 into grid-6x6, default search budget (tracking metric, \
               search algorithm unchanged this PR)",
    });

    // --- Report -----------------------------------------------------------------------------
    let threads = ParallelConfig::auto().effective_threads();
    println!(
        "bench_sim ({} mode, auto = {} threads)",
        if smoke { "smoke" } else { "full" },
        threads
    );
    let rows: Vec<(String, String)> = metrics
        .iter()
        .map(|m| {
            (
                m.name.to_string(),
                format!(
                    "{:.0} -> {:.0} {} ({:.1}x)",
                    m.baseline,
                    m.current,
                    m.unit,
                    m.speedup()
                ),
            )
        })
        .collect();
    for (name, value) in &rows {
        println!("  {name:<44} {value}");
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"bench_sim\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"auto_threads\": {threads},");
    let _ = writeln!(json, "  \"shots\": {shots},");
    let _ = writeln!(
        json,
        "  \"baseline\": \"seed implementations (Vec<bool> tableau replay, O(2^n) \
         linear-scan sampling, O(E^2) dedup) measured in-process\","
    );
    json.push_str("  \"metrics\": {\n");
    for (index, metric) in metrics.iter().enumerate() {
        let _ = writeln!(json, "    \"{}\": {{", metric.name);
        let _ = writeln!(json, "      \"unit\": \"{}\",", metric.unit);
        let _ = writeln!(json, "      \"baseline\": {:.3},", metric.baseline);
        let _ = writeln!(json, "      \"current\": {:.3},", metric.current);
        let _ = writeln!(json, "      \"speedup\": {:.3},", metric.speedup());
        let _ = writeln!(json, "      \"note\": \"{}\"", metric.note);
        let comma = if index + 1 == metrics.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).expect("cannot write BENCH_sim.json");
    println!("wrote {out_path}");

    // Self-check the acceptance thresholds so CI fails loudly on regression.
    let canary_speedup = metrics[0].speedup();
    let sampling_speedup = metrics
        .iter()
        .find(|m| m.name == "statevector_sampling_20q_samples_per_sec")
        .map(Metric::speedup)
        .unwrap_or(0.0);
    let noisy_speedup = metrics
        .iter()
        .find(|m| m.name == "noisy_stabilizer_shots_per_sec")
        .map(Metric::speedup)
        .unwrap_or(0.0);
    if !smoke {
        assert!(
            canary_speedup >= 10.0,
            "Clifford-canary shot loop speedup {canary_speedup:.1}x is below the 10x floor"
        );
        assert!(
            sampling_speedup >= 5.0,
            "statevector sampling speedup {sampling_speedup:.1}x is below the 5x floor"
        );
        assert!(
            noisy_speedup >= 10.0,
            "noisy stabilizer (Pauli-frame) speedup {noisy_speedup:.1}x is below the 10x floor"
        );
    }
}
