//! Figure 7: achieved fidelity for the user-defined circuits (Bv, Hsp, Rep,
//! Grover, Circ, Circ_2) under the Oracle, Clifford (QRIO) and Random
//! schedulers, plus the fleet Average and Median fidelity.
//!
//! Run with: `cargo run -p qrio-bench --release --bin fig7_fidelity`
//! (the oracle sweep simulates every circuit on every device; expect a few
//! minutes of runtime on one core).

use qrio::experiments::{fig7_for_circuit, paper_benchmark_circuits, ExperimentConfig};
use qrio_backend::fleet::paper_fleet;
use qrio_bench::fmt3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = paper_fleet()?;
    let config = ExperimentConfig {
        shots: 192,
        seed: 0x51D0,
        repetitions: 25,
    };
    println!(
        "Fig. 7: achieved fidelity per circuit ({} devices, {} shots, fidelity target 1.0)",
        fleet.len(),
        config.shots
    );
    println!(
        "{:<8} {:>8} {:>10} {:>8} {:>9} {:>8}   oracle device / clifford device",
        "circuit", "oracle", "clifford", "random", "average", "median"
    );
    for (name, circuit) in paper_benchmark_circuits()? {
        let row = fig7_for_circuit(&name, &circuit, &fleet, &config)?;
        println!(
            "{:<8} {:>8} {:>10} {:>8} {:>9} {:>8}   {} / {}",
            row.circuit,
            fmt3(row.oracle),
            fmt3(row.clifford),
            fmt3(row.random),
            fmt3(row.average),
            fmt3(row.median),
            row.oracle_device,
            row.clifford_device
        );
    }
    println!("\nexpected shape: oracle >= clifford for every circuit, clifford close to oracle,");
    println!("and clifford above the fleet average and median (the paper's headline result)");
    Ok(())
}
