//! `bench_chaos` — the fault-tolerance workload benchmark behind
//! `BENCH_chaos.json`.
//!
//! Replays the chaos scenario (injected faults on a calm / storm / recovery
//! timeline, armed circuit breakers, retrying tenants, a mid-storm outage)
//! through the full QRIO stack in virtual time, **twice**, asserts the two
//! reports are byte-identical — fault injection, retry backoff and breaker
//! trips are all pure functions of the scenario seeds — and writes the
//! report with its `chaos` block (retries, dead letters, breaker trips,
//! goodput).
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrio-bench --release --bin bench_chaos [-- --smoke]
//!     [--scenario PATH] [--out PATH]
//! ```
//!
//! `--smoke` is accepted for CI symmetry with `bench_cloud`; the embedded
//! chaos scenario is already CI-sized, so both modes run it.

use qrio_bench::print_table;
use qrio_loadgen::{run_scenario_with_log, ChaosStats, CloudReport, Scenario};

/// The chaos scenario: 60 virtual seconds, 3 tenants (fixed backoff,
/// exponential backoff under a deadline, fail-fast control), breaker board
/// armed, faults ramping calm -> storm -> recovery with an outage inside
/// the storm.
const CHAOS_SCENARIO: &str = include_str!("../../../../scenarios/chaos.yaml");

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());
    let scenario_text = match args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
    {
        Some(path) => std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read scenario '{path}': {e}")),
        None => CHAOS_SCENARIO.to_string(),
    };

    let scenario = Scenario::from_yaml(&scenario_text).expect("scenario parses");
    assert!(
        scenario.has_chaos(),
        "bench_chaos needs a scenario with retries, breakers or fault events"
    );
    println!(
        "bench_chaos: scenario '{}' (seed {}, fault seed {}, {} devices, {} tenants, {} events)",
        scenario.name,
        scenario.seed,
        scenario.fault_seed,
        scenario.fleet.len(),
        scenario.tenants.len(),
        scenario.events.len()
    );

    // Two full runs with the same seeds: fault decisions, retry schedules
    // and breaker trips must replay byte for byte.
    let wall = std::time::Instant::now();
    let (mut report, log) = run_scenario_with_log(&scenario).expect("scenario runs");
    let first_secs = wall.elapsed().as_secs_f64();
    let (mut replay, _) = run_scenario_with_log(&scenario).expect("scenario replays");
    report.benchmark = "bench_chaos".to_string();
    replay.benchmark = "bench_chaos".to_string();
    let json = report.to_json();
    assert_eq!(
        json,
        replay.to_json(),
        "same-seed chaos runs must produce byte-identical reports"
    );
    println!(
        "determinism: two same-seed runs produced byte-identical reports \
         ({} bytes, first run {first_secs:.1}s wall)",
        json.len()
    );

    // The watch log of a chaotic run must still satisfy every lifecycle
    // invariant — including the retry-aware ones (attempt counters climb by
    // one, nothing moves after a terminal state, re-running requires an
    // intervening Retrying).
    let diagnostics = qrio_analyzer::audit_watch_log(&log, qrio_analyzer::AuditOptions::default());
    assert!(
        diagnostics.is_empty(),
        "auditor flagged the chaos watch log: {diagnostics:?}"
    );
    println!("audited {} watch events: clean", log.len());

    summarize(&report);

    std::fs::write(&out_path, &json).expect("cannot write BENCH_chaos.json");
    println!("wrote {out_path}");

    // Acceptance floors: the storm must actually bite (faults, retries,
    // breaker trips all observed) and the run must still drain fully.
    let chaos = report.chaos.as_ref().expect("chaos scenarios report chaos");
    let injected = chaos.injected_transient
        + chaos.injected_calibration
        + chaos.injected_slow
        + chaos.injected_flap;
    assert!(injected > 0, "no faults were injected");
    assert!(chaos.retries > 0, "no retries happened");
    assert!(report.completed > 0, "no jobs completed");
    let drained =
        report.completed + report.rejected + report.execution_failures + chaos.deadline_cancelled;
    assert_eq!(
        drained, report.submitted,
        "every submitted job must drain: completed, rejected, terminally \
         failed, or deadline-cancelled"
    );
}

fn summarize(report: &CloudReport) {
    let chaos: &ChaosStats = report.chaos.as_ref().expect("chaos block");
    let rows = vec![
        (
            "injected faults".to_string(),
            format!(
                "{} transient / {} calibration / {} slow / {} flap",
                chaos.injected_transient,
                chaos.injected_calibration,
                chaos.injected_slow,
                chaos.injected_flap
            ),
        ),
        ("retries".to_string(), chaos.retries.to_string()),
        (
            "outage interrupts".to_string(),
            chaos.interrupted.to_string(),
        ),
        (
            "deadline cancels".to_string(),
            chaos.deadline_cancelled.to_string(),
        ),
        ("dead letters".to_string(), chaos.dead_lettered.to_string()),
        (
            "breaker trips / probes".to_string(),
            format!("{} / {}", chaos.breaker_trips, chaos.breaker_probes),
        ),
        (
            "goodput".to_string(),
            format!("{:.2} jobs/s", chaos.goodput_per_sec),
        ),
    ];
    print_table(
        &format!(
            "bench_chaos: {} of {} jobs completed over {:.1} virtual s \
             ({} terminal failures)",
            report.completed,
            report.submitted,
            report.makespan_ms as f64 / 1000.0,
            report.execution_failures
        ),
        ("fault-tolerance", "observed"),
        &rows,
    );
    let tenant_rows: Vec<(String, String)> = report
        .tenants
        .iter()
        .map(|(tenant, stats)| {
            (
                tenant.clone(),
                format!(
                    "{} done, p95 {} ms, F {:.3}",
                    stats.completed, stats.p95_latency_ms, stats.mean_fidelity
                ),
            )
        })
        .collect();
    print_table("tenants", ("tenant", "throughput / latency"), &tenant_rows);
}
