//! `bench_recovery` — the kill-and-restart durability benchmark.
//!
//! Runs the [`qrio_loadgen::killrestart`] storm: a durable orchestrator is
//! crashed mid-workload (`kill -9` semantics — the instance is dropped with
//! queued, running and finished jobs in flight), rebuilt from its journal
//! alone, and driven to completion. The report certifies that no
//! acknowledged job was lost and no job was executed twice, and the spliced
//! pre-crash + post-recovery watch log is audited against every lifecycle
//! invariant `qrio-analyzer` knows.
//!
//! The report is a pure function of the seed: CI runs this binary twice and
//! `cmp`s the two report files byte for byte.
//!
//! Usage:
//!
//! ```text
//! cargo run -p qrio-bench --release --bin bench_recovery --
//!     [--seed N] [--jobs N] [--crash-after N] [--fault-permille N]
//!     [--retry-attempts N] [--journal PATH] [--out PATH]
//! ```
//!
//! The storm runs with fault injection, per-job retry policies and armed
//! circuit breakers by default (disable with `--fault-permille 0
//! --retry-attempts 0`), so the crash lands over jobs parked mid-backoff in
//! `Retrying` and recovery must replay the same retry schedule.

use std::path::PathBuf;

use qrio_analyzer::{audit_watch_log, AuditOptions};
use qrio_loadgen::{run_kill_restart_with_log, KillRestartScenario};

fn flag_u64(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().unwrap_or_else(|e| panic!("bad {name}: {e}")))
        .unwrap_or(default)
}

fn flag_path(args: &[String], name: &str, default: &str) -> PathBuf {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(default))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fault_permille = flag_u64(&args, "--fault-permille", 250) as u32;
    let retry_attempts = flag_u64(&args, "--retry-attempts", 4) as u32;
    let scenario = KillRestartScenario {
        name: "bench-recovery".into(),
        seed: flag_u64(&args, "--seed", 20240),
        jobs: flag_u64(&args, "--jobs", 120),
        crash_after_jobs: flag_u64(&args, "--crash-after", 75),
        fault_permille,
        retry_max_attempts: retry_attempts,
        breakers: retry_attempts > 0 || fault_permille > 0,
        ..KillRestartScenario::default()
    };
    let journal_path = flag_path(&args, "--journal", "bench_recovery.qj");
    let out_path = flag_path(&args, "--out", "BENCH_recovery.txt");

    println!(
        "bench_recovery: seed {}, {} jobs, crash after {}, {}permille faults, \
         {} attempts, breakers {}, journal {}",
        scenario.seed,
        scenario.jobs,
        scenario.crash_after_jobs,
        scenario.fault_permille,
        scenario.retry_max_attempts,
        if scenario.breakers { "on" } else { "off" },
        journal_path.display()
    );

    let wall = std::time::Instant::now();
    let (report, log) =
        run_kill_restart_with_log(&scenario, &journal_path).expect("kill-restart storm runs");
    let elapsed = wall.elapsed();

    let diagnostics = audit_watch_log(&log, AuditOptions::default());
    assert!(
        diagnostics.is_empty(),
        "auditor flagged the spliced watch log: {diagnostics:?}"
    );
    assert!(report.holds(), "durability contract violated:\n{report}");

    println!("{report}");
    println!("audited {} events: clean ({:.1?} wall)", log.len(), elapsed);

    // The written report carries no wall-clock data, so two runs over the
    // same seed produce byte-identical files.
    let mut rendered = report.to_string();
    rendered.push('\n');
    std::fs::write(&out_path, rendered)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out_path.display()));
    println!("wrote {}", out_path.display());
}
