//! Figure 6: average decrease in score of the QRIO scheduler compared to the
//! random scheduler for the five default topologies, over the 100-device fleet
//! with 25 repetitions of the random baseline.
//!
//! Run with: `cargo run -p qrio-bench --release --bin fig6_default_topologies`

use qrio::experiments::{fig6_default_topologies, ExperimentConfig};
use qrio_backend::fleet::paper_fleet;
use qrio_bench::fmt3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = paper_fleet()?;
    let config = ExperimentConfig {
        shots: 256,
        seed: 0x51D0,
        repetitions: 25,
    };
    println!("Fig. 6: QRIO scheduler vs. random scheduler (topology ranking, {} devices, {} repetitions)", fleet.len(), config.repetitions);
    println!(
        "{:<18} {:>12} {:>14} {:>18} {:>10}",
        "topology", "qrio score", "random score", "average decrease", "scored"
    );
    let rows = fig6_default_topologies(&fleet, &config)?;
    for row in &rows {
        println!(
            "{:<18} {:>12} {:>14} {:>18} {:>10}",
            row.topology,
            fmt3(row.qrio_score),
            fmt3(row.random_mean_score),
            fmt3(row.average_decrease),
            row.scored_devices
        );
    }
    println!("\npaper reference (average decrease): grid 16.76, heavy_square 14.72, fully_connected 26.76, line 11.95, ring 8.3");
    println!("expected shape: every decrease is positive; fully_connected shows the largest gap, ring the smallest");
    Ok(())
}
