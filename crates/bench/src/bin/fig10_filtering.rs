//! Figure 10: number of filtered devices as the user tightens or relaxes the
//! maximum tolerated two-qubit error rate, over the 100-device fleet.
//!
//! Run with: `cargo run -p qrio-bench --release --bin fig10_filtering`

use qrio::experiments::fig10_filtering;
use qrio_backend::fleet::paper_fleet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fleet = paper_fleet()?;
    println!(
        "Fig. 10: filtered devices vs. user-requested maximum two-qubit error ({} devices)",
        fleet.len()
    );
    println!("{:>24} {:>18}", "max 2q error", "filtered devices");
    for (threshold, count) in fig10_filtering(&fleet) {
        let bar = "#".repeat(count / 2);
        println!("{threshold:>24.3} {count:>18}   {bar}");
    }
    println!(
        "\nexpected shape: 0 devices at 0.07, the entire fleet at 0.68, monotone growth in between"
    );
    Ok(())
}
