//! Criterion bench: Mapomatic-style subgraph search and scoring cost as device
//! connectivity grows — the scalability concern the paper raises for densely
//! connected devices (§5(3)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qrio_backend::fleet::{generate_backend, FleetConfig};
use qrio_backend::DefaultTopology;
use qrio_circuit::library;
use qrio_meta::evaluate_topology;
use rand::SeedableRng;

fn bench_mapomatic(c: &mut Criterion) {
    let config = FleetConfig::paper_table2();
    let request_ring = library::topology_circuit(
        DefaultTopology::Ring7.num_qubits(),
        &DefaultTopology::Ring7.edges(),
    )
    .unwrap();
    let request_line = library::topology_circuit(
        DefaultTopology::Line6.num_qubits(),
        &DefaultTopology::Line6.edges(),
    )
    .unwrap();

    let mut group = c.benchmark_group("mapomatic_topology_scoring");
    group.sample_size(10);
    for &edge_probability in &[0.1f64, 0.45, 0.98] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let backend = generate_backend(
            format!("dev-p{edge_probability}"),
            50,
            edge_probability,
            &config,
            &mut rng,
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("ring7", format!("p{edge_probability}")),
            &backend,
            |b, backend| b.iter(|| evaluate_topology(&request_ring, backend).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("line6", format!("p{edge_probability}")),
            &backend,
            |b, backend| b.iter(|| evaluate_topology(&request_line, backend).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mapomatic);
criterion_main!(benches);
