//! Criterion bench: meta-server scoring latency (the per-device cost of the
//! ranking stage) for both strategies, as a function of device size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qrio_backend::{topology, Backend};
use qrio_circuit::{library, qasm};
use qrio_meta::{FidelityRankingConfig, MetaServer};

fn bench_scoring(c: &mut Criterion) {
    let circuit = library::bernstein_vazirani(6, 0b101101).unwrap();
    let topo_request = library::topology_circuit(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();

    let mut group = c.benchmark_group("meta_server_scoring");
    group.sample_size(10);
    for &device_size in &[10usize, 27, 50] {
        let backend = Backend::uniform(
            format!("bench-{device_size}"),
            topology::heavy_hex(device_size),
            0.01,
            0.05,
        );
        let mut meta = MetaServer::with_config(FidelityRankingConfig {
            shots: 128,
            seed: 1,
            shortfall_weight: 100.0,
        });
        meta.register_backend(backend);
        meta.upload_fidelity_metadata("fidelity-job", 0.9, &qasm::to_qasm(&circuit))
            .unwrap();
        meta.upload_topology_metadata("topology-job", topo_request.clone());
        let device = format!("bench-{device_size}");

        group.bench_with_input(
            BenchmarkId::new("fidelity", device_size),
            &device,
            |b, device| b.iter(|| meta.score("fidelity-job", device).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("topology", device_size),
            &device,
            |b, device| b.iter(|| meta.score("topology-job", device).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scoring);
criterion_main!(benches);
