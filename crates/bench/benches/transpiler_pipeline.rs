//! Criterion bench: the transpilation pipeline (layout + routing + basis
//! translation + optimization) on devices of growing size — the classical
//! pre-processing cost that filtering is meant to bound (§4.5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qrio_backend::fleet::{generate_backend, FleetConfig};
use qrio_circuit::library;
use qrio_transpiler::{transpile, transpile_with_options, TranspileOptions};
use rand::SeedableRng;

fn bench_transpile(c: &mut Criterion) {
    let circuit = library::random_circuit_with_cx_count(8, 20, 5).unwrap();
    let config = FleetConfig::paper_table2();
    let mut group = c.benchmark_group("transpile_pipeline");
    group.sample_size(10);
    for &size in &[20usize, 50, 100] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let backend =
            generate_backend(format!("dev-{size}"), size, 0.3, &config, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("full", size), &backend, |b, backend| {
            b.iter(|| transpile(&circuit, backend).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("no_optimize", size),
            &backend,
            |b, backend| {
                b.iter(|| {
                    transpile_with_options(
                        &circuit,
                        backend,
                        TranspileOptions {
                            skip_optimization: true,
                            ..TranspileOptions::default()
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transpile);
criterion_main!(benches);
