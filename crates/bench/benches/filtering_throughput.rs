//! Criterion bench: filter-stage throughput over the full 100-device fleet —
//! the cheap stage whose whole purpose is to save the expensive ranking work
//! (§4.5 / Fig. 10).

use criterion::{criterion_group, criterion_main, Criterion};

use qrio_backend::fleet::paper_fleet;
use qrio_cluster::DeviceRequirements;
use qrio_scheduler::{filter_backends, paper_fig10_thresholds, two_qubit_error_sweep};

fn bench_filtering(c: &mut Criterion) {
    let fleet = paper_fleet().unwrap();
    let tight = DeviceRequirements {
        min_qubits: Some(50),
        max_two_qubit_error: Some(0.2),
        max_readout_error: Some(0.1),
        min_t1_us: Some(100_000.0),
        min_t2_us: Some(100_000.0),
    };
    let loose = DeviceRequirements {
        max_two_qubit_error: Some(0.68),
        ..DeviceRequirements::default()
    };

    let mut group = c.benchmark_group("filtering");
    group.bench_function("tight_bounds_100_devices", |b| {
        b.iter(|| filter_backends(&fleet, &tight).len())
    });
    group.bench_function("loose_bounds_100_devices", |b| {
        b.iter(|| filter_backends(&fleet, &loose).len())
    });
    group.bench_function("fig10_threshold_sweep", |b| {
        b.iter(|| two_qubit_error_sweep(&fleet, &paper_fig10_thresholds()))
    });
    group.finish();
}

criterion_group!(benches, bench_filtering);
criterion_main!(benches);
