//! Criterion bench: stabilizer (Clifford) simulation scaling vs. the dense
//! statevector engine — the ablation behind choosing Clifford canaries for
//! fidelity ranking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qrio_circuit::library;
use qrio_sim::run_ideal;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("clifford_vs_statevector");
    group.sample_size(10);

    // Stabilizer path: Clifford circuits at growing width.
    for &width in &[10usize, 25, 50] {
        let circuit = library::random_clifford_circuit(width, 6, 7).unwrap();
        group.bench_with_input(
            BenchmarkId::new("stabilizer", width),
            &circuit,
            |b, circuit| b.iter(|| run_ideal(circuit, 64, 3).unwrap()),
        );
    }

    // Statevector path: non-Clifford circuits stay small.
    for &width in &[6usize, 10, 14] {
        let circuit = library::random_circuit(width, 6, 7).unwrap();
        group.bench_with_input(
            BenchmarkId::new("statevector", width),
            &circuit,
            |b, circuit| b.iter(|| run_ideal(circuit, 64, 3).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
