//! Scenario-level behaviour of the workload simulator: determinism,
//! scheduler fairness under load, drift-driven re-ranking and outage
//! survival.

use qrio_loadgen::{run_scenario, Scenario};

/// A congested three-device fleet: identical arrival streams for every
/// tenant, service times sized so the offered load exceeds fleet capacity
/// and queues must form.
fn congested_scenario(strategies: &[(&str, &str)]) -> Scenario {
    let mut yaml = String::from(
        "scenario: congested\n\
         seed: 1234\n\
         durationMs: 12000\n\
         maxJobs: 180\n\
         serviceBaseUs: 150000\n\
         servicePerShotUs: 2000\n\
         canaryShots: 16\n\
         fleet:\n\
           - device: alpha\n\
             topology: line\n\
             qubits: 8\n\
             twoQubitError: 0.008\n\
             readoutError: 0.01\n\
           - device: beta\n\
             topology: ring\n\
             qubits: 8\n\
             twoQubitError: 0.02\n\
             readoutError: 0.02\n\
           - device: gamma\n\
             topology: line\n\
             qubits: 8\n\
             twoQubitError: 0.04\n\
             readoutError: 0.04\n\
         tenants:\n",
    );
    for (tenant, strategy) in strategies {
        yaml.push_str(&format!(
            "  - tenant: {tenant}\n\
             \x20   strategy: {strategy}\n\
             \x20   target: 0.85\n\
             \x20   circuit: bv\n\
             \x20   qubits: 5\n\
             \x20   shots: 32\n\
             \x20   arrival: poisson\n\
             \x20   ratePerSec: 5.0\n"
        ));
    }
    Scenario::from_yaml(&yaml).unwrap()
}

#[test]
fn same_seed_runs_are_byte_identical_through_drift_and_outage() {
    let scenario = Scenario::from_yaml(
        "scenario: det\n\
         seed: 77\n\
         durationMs: 8000\n\
         maxJobs: 80\n\
         serviceBaseUs: 100000\n\
         canaryShots: 16\n\
         fleet:\n\
           - device: a\n\
             qubits: 6\n\
           - device: b\n\
             qubits: 6\n\
             twoQubitError: 0.03\n\
         tenants:\n\
           - tenant: t1\n\
             strategy: fidelity\n\
             circuit: bv\n\
             qubits: 4\n\
             shots: 16\n\
             ratePerSec: 6.0\n\
           - tenant: t2\n\
             strategy: min_queue\n\
             circuit: ghz\n\
             qubits: 4\n\
             shots: 16\n\
             arrival: bursty\n\
             ratePerSec: 3.0\n\
             burstMultiplier: 6.0\n\
         events:\n\
           - atMs: 2000\n\
             kind: outage\n\
             device: a\n\
             downMs: 2000\n\
           - atMs: 4000\n\
             kind: drift\n\
             device: a\n\
             errorFactor: 10.0\n",
    )
    .unwrap();
    let first = run_scenario(&scenario).unwrap();
    let second = run_scenario(&scenario).unwrap();
    assert_eq!(
        first.to_json(),
        second.to_json(),
        "same-seed runs must be byte-identical"
    );
    assert!(first.completed > 0);
    assert_eq!(first.drift_events, 1);
    assert_eq!(first.outage_events, 1);
    // A different seed changes the workload (and therefore the report).
    let mut reseeded = scenario;
    reseeded.seed = 78;
    let third = run_scenario(&reseeded).unwrap();
    assert_ne!(first.to_json(), third.to_json());
}

/// Satellite: in a congested fleet no tenant starves, and the load-aware
/// `min_queue` strategy beats load-blind `fidelity` on p95 latency — the
/// fidelity tenants all chase the same cleanest device while their queue
/// grows.
#[test]
fn min_queue_beats_fidelity_on_p95_latency_and_nobody_starves() {
    let report = run_scenario(&congested_scenario(&[
        ("fid-a", "fidelity"),
        ("fid-b", "fidelity"),
        ("queue-c", "min_queue"),
    ]))
    .unwrap();

    // The fleet was genuinely congested: some device queued several jobs.
    let peak = report
        .devices
        .values()
        .map(|d| d.peak_queue_depth)
        .max()
        .unwrap();
    assert!(peak >= 4, "scenario must produce contention, peak {peak}");

    // No tenant starves: every stream completes every job it submitted
    // (queues drain in virtual time; nothing is silently dropped), and every
    // tenant makes real progress.
    for (tenant, stats) in &report.tenants {
        assert!(
            stats.submitted > 20,
            "{tenant} submitted {}",
            stats.submitted
        );
        assert_eq!(
            stats.completed + stats.rejected,
            stats.submitted,
            "{tenant} lost jobs"
        );
        assert_eq!(stats.rejected, 0, "{tenant} was rejected under plain load");
        assert!(stats.throughput_per_sec > 0.0, "{tenant} starved");
    }

    // The load-aware strategy wins on tail latency against both fidelity
    // tenants.
    let queue_p95 = report.tenants["queue-c"].p95_latency_ms;
    for fid in ["fid-a", "fid-b"] {
        let fid_p95 = report.tenants[fid].p95_latency_ms;
        assert!(
            queue_p95 < fid_p95,
            "min_queue p95 {queue_p95} ms must beat {fid} p95 {fid_p95} ms"
        );
    }
}

/// Drift re-ranking: when the device every fidelity job piles onto drifts to
/// terrible calibration, waiting jobs migrate off it and later executions
/// happen under the drifted noise model (lower achieved fidelity).
#[test]
fn calibration_drift_triggers_migrations_and_degrades_fidelity() {
    // The two devices are far enough apart (0.004 vs 0.06 two-qubit error)
    // that the 64-shot canary ranks them decisively: before the drift every
    // job chooses 'clean'; the drift (factor 60) inverts the ordering.
    let base = "\
scenario: drift
seed: 5
durationMs: 10000
maxJobs: 120
serviceBaseUs: 200000
canaryShots: 64
fleet:
  - device: clean
    qubits: 6
    twoQubitError: 0.004
    readoutError: 0.005
  - device: backup
    qubits: 6
    twoQubitError: 0.06
    readoutError: 0.04
tenants:
  - tenant: alice
    strategy: fidelity
    target: 0.9
    circuit: bv
    qubits: 4
    shots: 32
    ratePerSec: 8.0
";
    let calm = Scenario::from_yaml(base).unwrap();
    let drifted = Scenario::from_yaml(&format!(
        "{base}events:\n  - atMs: 3000\n    kind: drift\n    device: clean\n    errorFactor: 60.0\n"
    ))
    .unwrap();

    let calm_report = run_scenario(&calm).unwrap();
    let drift_report = run_scenario(&drifted).unwrap();

    assert_eq!(calm_report.migrations, 0, "nothing migrates without events");
    assert!(
        drift_report.migrations > 0,
        "drift must push waiting jobs off the degraded device"
    );
    assert_eq!(drift_report.drift_events, 1);
    // Re-ranking the same (job, device) pairs after the drift produces cache
    // hits for the cacheable fidelity strategy.
    assert!(drift_report.cache_hits > 0, "re-ranking must hit the cache");
    // Executions after the drift run under the degraded noise model.
    let calm_f = calm_report.tenants["alice"].mean_fidelity;
    let drift_f = drift_report.tenants["alice"].mean_fidelity;
    assert!(
        drift_f < calm_f - 0.02,
        "drift must degrade mean fidelity ({drift_f} vs {calm_f})"
    );
}

/// Outages cordon the device, flee its waiting queue, and the cloud still
/// drains every job.
#[test]
fn outages_migrate_waiting_jobs_and_everything_drains() {
    let scenario = Scenario::from_yaml(
        "scenario: outage\n\
         seed: 13\n\
         durationMs: 10000\n\
         maxJobs: 100\n\
         serviceBaseUs: 250000\n\
         canaryShots: 16\n\
         fleet:\n\
           - device: primary\n\
             qubits: 6\n\
             twoQubitError: 0.005\n\
           - device: standby\n\
             qubits: 6\n\
             twoQubitError: 0.03\n\
         tenants:\n\
           - tenant: solo\n\
             strategy: fidelity\n\
             target: 0.9\n\
             circuit: bv\n\
             qubits: 4\n\
             shots: 32\n\
             ratePerSec: 8.0\n\
         events:\n\
           - atMs: 2000\n\
             kind: outage\n\
             device: primary\n\
             downMs: 4000\n",
    )
    .unwrap();
    let report = run_scenario(&scenario).unwrap();
    assert_eq!(report.outage_events, 1);
    assert!(
        report.migrations > 0,
        "the cordoned device's waiting queue must flee"
    );
    assert_eq!(
        report.completed + report.rejected + report.execution_failures,
        report.submitted,
        "every job drains even through the outage"
    );
    assert!(
        report.devices["standby"].completed > 0,
        "standby absorbed load"
    );
    assert!(report.completed > 0);
}

// --- Kill-and-restart durability ----------------------------------------------------------

#[test]
fn kill_restart_storm_is_certified_by_the_watch_log_auditor() {
    use qrio_analyzer::{audit_watch_log, AuditOptions};
    use qrio_loadgen::{run_kill_restart_with_log, KillRestartScenario};

    let scenario = KillRestartScenario {
        seed: 4242,
        jobs: 80,
        crash_after_jobs: 55,
        snapshot_every: 8,
        ..KillRestartScenario::default()
    };
    let dir = std::env::temp_dir().join(format!("qrio-loadgen-audit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("certified.qj");

    let (report, log) = run_kill_restart_with_log(&scenario, &path).unwrap();
    assert!(report.holds(), "durability contract violated:\n{report}");
    assert_eq!(report.jobs_lost, 0);
    assert_eq!(report.double_executed, 0);

    // The spliced pre-crash + post-recovery stream must satisfy every watch
    // invariant the analyzer knows: dense sequences, legal transitions, one
    // Running entry per job, terminal states final.
    let diagnostics = audit_watch_log(&log, AuditOptions::default());
    assert!(
        diagnostics.is_empty(),
        "auditor flagged the spliced stream: {diagnostics:?}"
    );
}
