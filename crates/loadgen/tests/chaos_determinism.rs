//! Property test: a chaotic run is a pure function of its scenario.
//!
//! For arbitrary fault rates, retry policies (fixed and exponential backoff),
//! deadlines and seeds, running the same scenario twice must produce
//! byte-identical JSON reports — fault injection, retry schedules, breaker
//! trips and deadline cancellations all replay exactly. Every sampled run is
//! also held to the chaos drain invariant (submitted jobs end completed,
//! rejected, terminally failed, or deadline-cancelled) and its watch log must
//! pass the analyzer's retry-aware lifecycle audit.

use proptest::prelude::*;

use qrio_analyzer::{audit_watch_log, AuditOptions};
use qrio_loadgen::{run_scenario_with_log, Scenario};

/// A small two-device, two-tenant chaos scenario from sampled knobs: one
/// retrying tenant (optionally under a deadline) and one fail-fast control
/// tenant, with a mid-run fault burst that calms back down.
#[allow(clippy::too_many_arguments)]
fn chaos_yaml(
    seed: u64,
    fault_seed: u64,
    transient_permille: u64,
    flap_permille: u64,
    attempts: u32,
    backoff_ms: u64,
    exponential: bool,
    deadline_ms: Option<u64>,
) -> String {
    let backoff = if exponential {
        format!(
            "    retryBackoff: exponential\n\
             \x20   retryDelayMs: {backoff_ms}\n\
             \x20   retryMaxDelayMs: {}\n",
            backoff_ms * 8
        )
    } else {
        format!(
            "    retryBackoff: fixed\n\
             \x20   retryDelayMs: {backoff_ms}\n"
        )
    };
    let deadline = deadline_ms
        .map(|d| format!("    deadlineMs: {d}\n"))
        .unwrap_or_default();
    format!(
        "scenario: chaos-prop\n\
         seed: {seed}\n\
         faultSeed: {fault_seed}\n\
         durationMs: 5000\n\
         maxJobs: 40\n\
         serviceBaseUs: 120000\n\
         servicePerShotUs: 1500\n\
         canaryShots: 8\n\
         breakers: on\n\
         breakerConsecutiveFailures: 3\n\
         breakerFailureRate: 0.6\n\
         breakerWindow: 6\n\
         breakerOpenMs: 800\n\
         breakerProbeJobs: 2\n\
         fleet:\n\
         \x20 - device: alpha\n\
         \x20   topology: line\n\
         \x20   qubits: 8\n\
         \x20   twoQubitError: 0.01\n\
         \x20   readoutError: 0.02\n\
         \x20 - device: beta\n\
         \x20   topology: ring\n\
         \x20   qubits: 8\n\
         \x20   twoQubitError: 0.02\n\
         \x20   readoutError: 0.03\n\
         tenants:\n\
         \x20 - tenant: patient\n\
         \x20   strategy: min_queue\n\
         \x20   circuit: ghz\n\
         \x20   qubits: 4\n\
         \x20   shots: 16\n\
         \x20   arrival: poisson\n\
         \x20   ratePerSec: 5.0\n\
         \x20   retryMaxAttempts: {attempts}\n\
         {backoff}\
         {deadline}\
         \x20 - tenant: failfast\n\
         \x20   strategy: fidelity\n\
         \x20   target: 0.8\n\
         \x20   circuit: bv\n\
         \x20   qubits: 4\n\
         \x20   shots: 16\n\
         \x20   arrival: poisson\n\
         \x20   ratePerSec: 3.0\n\
         events:\n\
         \x20 - atMs: 0\n\
         \x20   kind: faults\n\
         \x20   transientRate: {t0}\n\
         \x20 - atMs: 1000\n\
         \x20   kind: faults\n\
         \x20   transientRate: {t1}\n\
         \x20   flapRate: {f1}\n\
         \x20 - atMs: 3500\n\
         \x20   kind: faults\n\
         \x20   transientRate: {t0}\n",
        t0 = transient_permille as f64 / 4000.0,
        t1 = transient_permille as f64 / 1000.0,
        f1 = flap_permille as f64 / 1000.0,
    )
}

proptest! {
    // Each case is a full double simulation; a small deterministic sample
    // keeps the suite fast while still sweeping seeds, rates, both backoff
    // shapes and deadlines.
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn chaotic_runs_are_byte_deterministic(
        seed in 0u64..1_000_000,
        fault_seed in 0u64..1_000_000,
        transient_permille in 50u64..=500,
        flap_permille in 0u64..=150,
        attempts in 1u32..=5,
        backoff_ms in 20u64..=400,
        selector in 0u64..4,
        deadline_ms in 1500u64..=6000,
    ) {
        // Raw-integer selectors, as the vendored proptest only samples
        // integer ranges: low bit picks the backoff shape, high bit arms
        // the deadline.
        let exponential = selector & 1 == 1;
        let deadline = (selector & 2 == 2).then_some(deadline_ms);
        let yaml = chaos_yaml(
            seed,
            fault_seed,
            transient_permille,
            flap_permille,
            attempts,
            backoff_ms,
            exponential,
            deadline,
        );
        let scenario = Scenario::from_yaml(&yaml).expect("generated scenario parses");
        prop_assert!(scenario.has_chaos());

        let (report, log) = run_scenario_with_log(&scenario).expect("scenario runs");
        let (replay, replay_log) = run_scenario_with_log(&scenario).expect("scenario replays");
        prop_assert_eq!(
            report.to_json(),
            replay.to_json(),
            "same-seed chaos runs diverged"
        );
        prop_assert_eq!(log.len(), replay_log.len());

        let chaos = report.chaos.as_ref().expect("chaos scenario reports chaos");
        let drained = report.completed
            + report.rejected
            + report.execution_failures
            + chaos.deadline_cancelled;
        prop_assert_eq!(drained, report.submitted, "run did not drain");

        let diagnostics = audit_watch_log(&log, AuditOptions::default());
        prop_assert!(
            diagnostics.is_empty(),
            "auditor flagged the chaos watch log: {:?}",
            diagnostics
        );
    }
}
