//! Workload metrics: per-tenant latency percentiles, per-device utilization,
//! fidelity-vs-load curves and the deterministic `BENCH_cloud.json` report.
//!
//! Everything here is computed from virtual-time integers and seeded
//! simulations, and rendered with fixed-precision formatting over ordered
//! (`BTreeMap`) containers — so a scenario's report is **byte-identical**
//! across runs with the same seed, and tests can assert on the rendered
//! JSON directly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One finished (or rejected) job as observed by the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSample {
    /// Owning tenant.
    pub tenant: String,
    /// Device that executed the job (empty for rejected jobs).
    pub device: String,
    /// Virtual arrival instant (ms).
    pub arrival_ms: u64,
    /// Virtual execution start (ms).
    pub start_ms: u64,
    /// Virtual completion instant (ms).
    pub completion_ms: u64,
    /// Jobs already queued or running on the chosen device at bind time —
    /// the load the job experienced.
    pub queue_depth_at_bind: usize,
    /// Fidelity achieved against the noise-free reference, when computed.
    pub fidelity: Option<f64>,
    /// Whether the job was migrated after its original binding.
    pub migrated: bool,
}

impl JobSample {
    /// Queueing delay: bind-to-start wait (ms).
    pub fn wait_ms(&self) -> u64 {
        self.start_ms.saturating_sub(self.arrival_ms)
    }

    /// End-to-end sojourn time: arrival to completion (ms).
    pub fn latency_ms(&self) -> u64 {
        self.completion_ms.saturating_sub(self.arrival_ms)
    }
}

/// Nearest-rank percentile of a sorted slice (`q` in `[0, 1]`); `0` for an
/// empty slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Aggregate statistics for one tenant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TenantStats {
    /// Jobs the tenant submitted.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs rejected at scheduling time (no eligible device).
    pub rejected: u64,
    /// Completed jobs per virtual second of makespan.
    pub throughput_per_sec: f64,
    /// Median queueing delay (ms).
    pub p50_wait_ms: u64,
    /// 95th-percentile queueing delay (ms).
    pub p95_wait_ms: u64,
    /// Median end-to-end latency (ms).
    pub p50_latency_ms: u64,
    /// 95th-percentile end-to-end latency (ms).
    pub p95_latency_ms: u64,
    /// Mean achieved fidelity over completed jobs that report one.
    pub mean_fidelity: f64,
}

/// Aggregate statistics for one device.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeviceStats {
    /// Jobs the device completed.
    pub completed: u64,
    /// Total busy time (virtual ms).
    pub busy_ms: u64,
    /// Busy time divided by makespan.
    pub utilization: f64,
    /// Largest queue observed behind the device.
    pub peak_queue_depth: usize,
}

/// Mean fidelity and latency of jobs that were bound at a given queue depth —
/// one point of the fidelity-vs-load curve.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadBucket {
    /// Queue depth at bind time (the last bucket pools `>= POOLED_DEPTH`).
    pub queue_depth: usize,
    /// Jobs in the bucket.
    pub jobs: u64,
    /// Mean achieved fidelity of the bucket's jobs.
    pub mean_fidelity: f64,
    /// Mean end-to-end latency (ms) of the bucket's jobs.
    pub mean_latency_ms: f64,
}

/// Queue depths at or above this value pool into one bucket.
pub const POOLED_DEPTH: usize = 5;

/// Fault-tolerance statistics of one chaos run. Only present (and only
/// rendered into the JSON report) when the scenario actually exercises the
/// fault machinery — chaos-free reports keep their exact previous shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChaosStats {
    /// Injected transient execution errors.
    pub injected_transient: u64,
    /// Injected calibration glitches.
    pub injected_calibration: u64,
    /// Injected hung/slow jobs.
    pub injected_slow: u64,
    /// Injected device flaps (fault injector and outage interrupts).
    pub injected_flap: u64,
    /// Retry attempts actually re-submitted after backoff.
    pub retries: u64,
    /// Jobs interrupted mid-execution by a device outage.
    pub interrupted: u64,
    /// Retries cancelled because their backoff would blow the deadline.
    pub deadline_cancelled: u64,
    /// Jobs that exhausted their retry budget and were dead-lettered.
    pub dead_lettered: u64,
    /// Circuit-breaker trips across the fleet.
    pub breaker_trips: u64,
    /// Circuit-breaker probes issued after open windows elapsed.
    pub breaker_probes: u64,
    /// Successfully completed jobs per virtual second of makespan — the
    /// goodput that survives the configured fault schedule.
    pub goodput_per_sec: f64,
}

/// The full report of one scenario run — everything `BENCH_cloud.json`
/// serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudReport {
    /// Benchmark name rendered into the report (`bench_cloud`,
    /// `bench_chaos`).
    pub benchmark: String,
    /// Scenario name.
    pub scenario: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Configured arrival horizon (ms).
    pub duration_ms: u64,
    /// Instant the last event fired (ms) — queued work drains past the
    /// horizon.
    pub makespan_ms: u64,
    /// Total jobs submitted.
    pub submitted: u64,
    /// Total jobs completed.
    pub completed: u64,
    /// Total jobs rejected at scheduling time.
    pub rejected: u64,
    /// Total jobs whose execution failed on the node.
    pub execution_failures: u64,
    /// Jobs migrated between devices by drift/outage re-ranking.
    pub migrations: u64,
    /// Calibration-drift events applied.
    pub drift_events: u64,
    /// Outage events applied.
    pub outage_events: u64,
    /// Per-tenant statistics, in tenant order.
    pub tenants: BTreeMap<String, TenantStats>,
    /// Per-device statistics, in device order.
    pub devices: BTreeMap<String, DeviceStats>,
    /// Fidelity-vs-load curve over queue depth at bind time.
    pub fidelity_vs_load: Vec<LoadBucket>,
    /// Strategy-cache hits in the meta server.
    pub cache_hits: u64,
    /// Strategy-cache misses in the meta server.
    pub cache_misses: u64,
    /// Strategy-cache hit rate.
    pub cache_hit_rate: f64,
    /// Fault-tolerance statistics (`None` for chaos-free scenarios, which
    /// keeps their JSON byte-identical to pre-chaos builds).
    pub chaos: Option<ChaosStats>,
}

/// Build per-tenant stats from samples (completed jobs only) plus the
/// submitted/rejected counters the engine tracked.
pub fn tenant_stats(
    samples: &[JobSample],
    submitted: &BTreeMap<String, u64>,
    rejected: &BTreeMap<String, u64>,
    makespan_ms: u64,
) -> BTreeMap<String, TenantStats> {
    let mut stats: BTreeMap<String, TenantStats> = BTreeMap::new();
    for (tenant, &count) in submitted {
        stats.entry(tenant.clone()).or_default().submitted = count;
    }
    for (tenant, &count) in rejected {
        stats.entry(tenant.clone()).or_default().rejected = count;
    }
    let mut waits: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut latencies: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut fidelity_sums: BTreeMap<&str, (f64, u64)> = BTreeMap::new();
    for sample in samples {
        let entry = stats.entry(sample.tenant.clone()).or_default();
        entry.completed += 1;
        waits
            .entry(&sample.tenant)
            .or_default()
            .push(sample.wait_ms());
        latencies
            .entry(&sample.tenant)
            .or_default()
            .push(sample.latency_ms());
        if let Some(f) = sample.fidelity {
            let slot = fidelity_sums.entry(&sample.tenant).or_default();
            slot.0 += f;
            slot.1 += 1;
        }
    }
    let makespan_s = (makespan_ms.max(1)) as f64 / 1000.0;
    for (tenant, entry) in &mut stats {
        if let Some(w) = waits.get_mut(tenant.as_str()) {
            w.sort_unstable();
            entry.p50_wait_ms = percentile(w, 0.50);
            entry.p95_wait_ms = percentile(w, 0.95);
        }
        if let Some(l) = latencies.get_mut(tenant.as_str()) {
            l.sort_unstable();
            entry.p50_latency_ms = percentile(l, 0.50);
            entry.p95_latency_ms = percentile(l, 0.95);
        }
        if let Some(&(sum, n)) = fidelity_sums.get(tenant.as_str()) {
            if n > 0 {
                entry.mean_fidelity = sum / n as f64;
            }
        }
        entry.throughput_per_sec = entry.completed as f64 / makespan_s;
    }
    stats
}

/// Build the fidelity-vs-load curve: bucket completed jobs by queue depth at
/// bind time (pooling depths `>= POOLED_DEPTH`).
pub fn fidelity_vs_load(samples: &[JobSample]) -> Vec<LoadBucket> {
    let mut buckets: BTreeMap<usize, (u64, f64, u64, f64)> = BTreeMap::new();
    for sample in samples {
        let depth = sample.queue_depth_at_bind.min(POOLED_DEPTH);
        let slot = buckets.entry(depth).or_default();
        slot.2 += 1;
        slot.3 += sample.latency_ms() as f64;
        if let Some(f) = sample.fidelity {
            slot.0 += 1;
            slot.1 += f;
        }
    }
    buckets
        .into_iter()
        .map(|(depth, (f_n, f_sum, jobs, lat_sum))| LoadBucket {
            queue_depth: depth,
            jobs,
            mean_fidelity: if f_n > 0 { f_sum / f_n as f64 } else { 0.0 },
            mean_latency_ms: if jobs > 0 { lat_sum / jobs as f64 } else { 0.0 },
        })
        .collect()
}

/// Render a float with six decimals — enough precision for the report while
/// keeping the rendering locale-free and byte-stable.
fn f6(value: f64) -> String {
    format!("{value:.6}")
}

/// Escape a name for use inside a JSON string literal (scenario, tenant and
/// device names come from user-authored YAML and may contain quotes,
/// backslashes or control characters).
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl CloudReport {
    /// Render the report as the `BENCH_cloud.json` document. The rendering is
    /// deterministic: ordered maps, fixed float precision, no timestamps.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"benchmark\": \"{}\",",
            escape_json(&self.benchmark)
        );
        let _ = writeln!(out, "  \"scenario\": \"{}\",", escape_json(&self.scenario));
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"duration_ms\": {},", self.duration_ms);
        let _ = writeln!(out, "  \"makespan_ms\": {},", self.makespan_ms);
        out.push_str("  \"jobs\": {\n");
        let _ = writeln!(out, "    \"submitted\": {},", self.submitted);
        let _ = writeln!(out, "    \"completed\": {},", self.completed);
        let _ = writeln!(out, "    \"rejected\": {},", self.rejected);
        let _ = writeln!(
            out,
            "    \"execution_failures\": {},",
            self.execution_failures
        );
        let _ = writeln!(out, "    \"migrations\": {}", self.migrations);
        out.push_str("  },\n");
        out.push_str("  \"events\": {\n");
        let _ = writeln!(out, "    \"drift\": {},", self.drift_events);
        let _ = writeln!(out, "    \"outage\": {}", self.outage_events);
        out.push_str("  },\n");

        if let Some(chaos) = &self.chaos {
            out.push_str("  \"chaos\": {\n");
            out.push_str("    \"injected\": {\n");
            let _ = writeln!(out, "      \"transient\": {},", chaos.injected_transient);
            let _ = writeln!(
                out,
                "      \"calibration\": {},",
                chaos.injected_calibration
            );
            let _ = writeln!(out, "      \"slow\": {},", chaos.injected_slow);
            let _ = writeln!(out, "      \"flap\": {}", chaos.injected_flap);
            out.push_str("    },\n");
            let _ = writeln!(out, "    \"retries\": {},", chaos.retries);
            let _ = writeln!(out, "    \"interrupted\": {},", chaos.interrupted);
            let _ = writeln!(
                out,
                "    \"deadline_cancelled\": {},",
                chaos.deadline_cancelled
            );
            let _ = writeln!(out, "    \"dead_lettered\": {},", chaos.dead_lettered);
            let _ = writeln!(out, "    \"breaker_trips\": {},", chaos.breaker_trips);
            let _ = writeln!(out, "    \"breaker_probes\": {},", chaos.breaker_probes);
            let _ = writeln!(
                out,
                "    \"goodput_per_sec\": {}",
                f6(chaos.goodput_per_sec)
            );
            out.push_str("  },\n");
        }

        out.push_str("  \"tenants\": {\n");
        let last = self.tenants.len();
        for (index, (tenant, stats)) in self.tenants.iter().enumerate() {
            let _ = writeln!(out, "    \"{}\": {{", escape_json(tenant));
            let _ = writeln!(out, "      \"submitted\": {},", stats.submitted);
            let _ = writeln!(out, "      \"completed\": {},", stats.completed);
            let _ = writeln!(out, "      \"rejected\": {},", stats.rejected);
            let _ = writeln!(
                out,
                "      \"throughput_per_sec\": {},",
                f6(stats.throughput_per_sec)
            );
            let _ = writeln!(out, "      \"p50_wait_ms\": {},", stats.p50_wait_ms);
            let _ = writeln!(out, "      \"p95_wait_ms\": {},", stats.p95_wait_ms);
            let _ = writeln!(out, "      \"p50_latency_ms\": {},", stats.p50_latency_ms);
            let _ = writeln!(out, "      \"p95_latency_ms\": {},", stats.p95_latency_ms);
            let _ = writeln!(out, "      \"mean_fidelity\": {}", f6(stats.mean_fidelity));
            let comma = if index + 1 == last { "" } else { "," };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  },\n");

        out.push_str("  \"devices\": {\n");
        let last = self.devices.len();
        for (index, (device, stats)) in self.devices.iter().enumerate() {
            let _ = writeln!(out, "    \"{}\": {{", escape_json(device));
            let _ = writeln!(out, "      \"completed\": {},", stats.completed);
            let _ = writeln!(out, "      \"busy_ms\": {},", stats.busy_ms);
            let _ = writeln!(out, "      \"utilization\": {},", f6(stats.utilization));
            let _ = writeln!(
                out,
                "      \"peak_queue_depth\": {}",
                stats.peak_queue_depth
            );
            let comma = if index + 1 == last { "" } else { "," };
            let _ = writeln!(out, "    }}{comma}");
        }
        out.push_str("  },\n");

        out.push_str("  \"fidelity_vs_load\": [\n");
        let last = self.fidelity_vs_load.len();
        for (index, bucket) in self.fidelity_vs_load.iter().enumerate() {
            let depth = if bucket.queue_depth >= POOLED_DEPTH {
                format!("\"{}+\"", POOLED_DEPTH)
            } else {
                format!("\"{}\"", bucket.queue_depth)
            };
            let comma = if index + 1 == last { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"queue_depth\": {depth}, \"jobs\": {}, \"mean_fidelity\": {}, \"mean_latency_ms\": {}}}{comma}",
                bucket.jobs,
                f6(bucket.mean_fidelity),
                f6(bucket.mean_latency_ms)
            );
        }
        out.push_str("  ],\n");

        out.push_str("  \"strategy_cache\": {\n");
        let _ = writeln!(out, "    \"hits\": {},", self.cache_hits);
        let _ = writeln!(out, "    \"misses\": {},", self.cache_misses);
        let _ = writeln!(out, "    \"hit_rate\": {}", f6(self.cache_hit_rate));
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(tenant: &str, arrival: u64, start: u64, done: u64, depth: usize) -> JobSample {
        JobSample {
            tenant: tenant.into(),
            device: "dev".into(),
            arrival_ms: arrival,
            start_ms: start,
            completion_ms: done,
            queue_depth_at_bind: depth,
            fidelity: Some(0.9),
            migrated: false,
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let values: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&values, 0.50), 50);
        assert_eq!(percentile(&values, 0.95), 95);
        assert_eq!(percentile(&values, 1.0), 100);
        assert_eq!(percentile(&values, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.95), 7);
    }

    #[test]
    fn tenant_stats_aggregate_latencies_and_fidelity() {
        let samples = vec![
            sample("a", 0, 10, 110, 1),
            sample("a", 0, 0, 50, 0),
            sample("b", 5, 5, 25, 0),
        ];
        let mut submitted = BTreeMap::new();
        submitted.insert("a".to_string(), 3u64);
        submitted.insert("b".to_string(), 1u64);
        let mut rejected = BTreeMap::new();
        rejected.insert("a".to_string(), 1u64);
        let stats = tenant_stats(&samples, &submitted, &rejected, 1000);
        let a = &stats["a"];
        assert_eq!(a.submitted, 3);
        assert_eq!(a.completed, 2);
        assert_eq!(a.rejected, 1);
        assert_eq!(a.p50_wait_ms, 0);
        assert_eq!(a.p95_wait_ms, 10);
        assert_eq!(a.p50_latency_ms, 50);
        assert_eq!(a.p95_latency_ms, 110);
        assert!((a.mean_fidelity - 0.9).abs() < 1e-12);
        assert!((a.throughput_per_sec - 2.0).abs() < 1e-12);
        assert_eq!(stats["b"].completed, 1);
    }

    #[test]
    fn load_buckets_pool_deep_queues() {
        let samples = vec![
            sample("a", 0, 0, 10, 0),
            sample("a", 0, 0, 20, 1),
            sample("a", 0, 0, 30, 9),
            sample("a", 0, 0, 40, 7),
        ];
        let curve = fidelity_vs_load(&samples);
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0].queue_depth, 0);
        assert_eq!(curve[2].queue_depth, POOLED_DEPTH);
        assert_eq!(curve[2].jobs, 2);
        assert!((curve[2].mean_latency_ms - 35.0).abs() < 1e-12);
    }

    #[test]
    fn names_are_json_escaped() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b"), "a\\\"b");
        assert_eq!(escape_json("back\\slash"), "back\\\\slash");
        assert_eq!(escape_json("nl\nnl"), "nl\\nnl");
        assert_eq!(escape_json("bell\u{7}"), "bell\\u0007");
        // End to end: a report whose names need escaping still renders
        // balanced JSON with no raw quotes inside string literals.
        let mut samples = vec![sample("ten\"ant", 0, 0, 10, 0)];
        samples[0].device = "dev\\ice".into();
        let mut submitted = BTreeMap::new();
        submitted.insert("ten\"ant".to_string(), 1u64);
        let report = CloudReport {
            benchmark: "bench_cloud".into(),
            scenario: "sce\"nario".into(),
            seed: 1,
            duration_ms: 10,
            makespan_ms: 10,
            submitted: 1,
            completed: 1,
            rejected: 0,
            execution_failures: 0,
            migrations: 0,
            drift_events: 0,
            outage_events: 0,
            tenants: tenant_stats(&samples, &submitted, &BTreeMap::new(), 10),
            devices: BTreeMap::from([("dev\\ice".to_string(), DeviceStats::default())]),
            fidelity_vs_load: vec![],
            cache_hits: 0,
            cache_misses: 0,
            cache_hit_rate: 0.0,
            chaos: None,
        };
        let json = report.to_json();
        assert!(json.contains("\"sce\\\"nario\""));
        assert!(json.contains("\"ten\\\"ant\""));
        assert!(json.contains("\"dev\\\\ice\""));
    }

    #[test]
    fn report_rendering_is_deterministic_and_json_shaped() {
        let samples = vec![sample("a", 0, 0, 10, 0)];
        let mut submitted = BTreeMap::new();
        submitted.insert("a".to_string(), 1u64);
        let report = CloudReport {
            benchmark: "bench_cloud".into(),
            scenario: "unit".into(),
            seed: 1,
            duration_ms: 100,
            makespan_ms: 120,
            submitted: 1,
            completed: 1,
            rejected: 0,
            execution_failures: 0,
            migrations: 0,
            drift_events: 1,
            outage_events: 0,
            tenants: tenant_stats(&samples, &submitted, &BTreeMap::new(), 120),
            devices: BTreeMap::from([(
                "dev".to_string(),
                DeviceStats {
                    completed: 1,
                    busy_ms: 10,
                    utilization: 10.0 / 120.0,
                    peak_queue_depth: 1,
                },
            )]),
            fidelity_vs_load: fidelity_vs_load(&samples),
            cache_hits: 2,
            cache_misses: 4,
            cache_hit_rate: 2.0 / 6.0,
            chaos: None,
        };
        let a = report.to_json();
        let b = report.clone().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"benchmark\": \"bench_cloud\""));
        assert!(a.contains("\"p95_latency_ms\": 10,"));
        assert!(a.contains("\"hit_rate\": 0.333333"));
        // Chaos-free reports carry no chaos block at all.
        assert!(!a.contains("\"chaos\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert_eq!(a.matches('[').count(), a.matches(']').count());
    }

    #[test]
    fn chaos_stats_render_as_their_own_block() {
        let samples = vec![sample("a", 0, 0, 10, 0)];
        let mut submitted = BTreeMap::new();
        submitted.insert("a".to_string(), 1u64);
        let report = CloudReport {
            benchmark: "bench_chaos".into(),
            scenario: "storm".into(),
            seed: 3,
            duration_ms: 100,
            makespan_ms: 120,
            submitted: 1,
            completed: 1,
            rejected: 0,
            execution_failures: 0,
            migrations: 0,
            drift_events: 0,
            outage_events: 1,
            tenants: tenant_stats(&samples, &submitted, &BTreeMap::new(), 120),
            devices: BTreeMap::new(),
            fidelity_vs_load: fidelity_vs_load(&samples),
            cache_hits: 0,
            cache_misses: 1,
            cache_hit_rate: 0.0,
            chaos: Some(ChaosStats {
                injected_transient: 4,
                injected_flap: 2,
                retries: 5,
                interrupted: 2,
                deadline_cancelled: 1,
                dead_lettered: 1,
                breaker_trips: 1,
                breaker_probes: 1,
                goodput_per_sec: 1.0 / 0.12,
                ..ChaosStats::default()
            }),
        };
        let json = report.to_json();
        assert!(json.contains("\"benchmark\": \"bench_chaos\""));
        assert!(json.contains("\"chaos\": {"));
        assert!(json.contains("\"transient\": 4,"));
        assert!(json.contains("\"dead_lettered\": 1,"));
        assert!(json.contains("\"goodput_per_sec\": 8.333333"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json, report.clone().to_json());
    }
}
