//! Arrival processes: how each tenant's jobs land on the cloud over virtual
//! time.
//!
//! Three processes cover the traffic shapes reported for real quantum clouds
//! ("Three Months in the Life of Cloud Quantum Computing"): a memoryless
//! [`ArrivalProcess::Poisson`] stream, a two-phase Markov-modulated
//! [`ArrivalProcess::Bursty`] stream (long quiet stretches punctuated by
//! bursts, the multi-tenant batch-submission pattern), and a
//! [`ArrivalProcess::Diurnal`] stream whose rate follows a sinusoidal
//! day/night cycle compressed to the scenario's period.
//!
//! Every sampler is seeded and consumes only its own RNG stream, so a
//! scenario's arrival schedule is a pure function of `(process, seed)` — the
//! foundation of the simulator's byte-level reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of one tenant's job-arrival stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate_per_sec`.
    Poisson {
        /// Mean arrivals per virtual second.
        rate_per_sec: f64,
    },
    /// Two-phase Markov-modulated Poisson process: the stream alternates
    /// between an idle phase at `base_rate_per_sec` and a burst phase at
    /// `base_rate_per_sec * burst_multiplier`; phase dwell times are
    /// exponential with the given means. Phase switches are evaluated at
    /// arrival instants.
    Bursty {
        /// Idle-phase mean arrivals per virtual second.
        base_rate_per_sec: f64,
        /// Rate multiplier while bursting (`>= 1`).
        burst_multiplier: f64,
        /// Mean burst-phase duration (virtual ms).
        mean_burst_ms: u64,
        /// Mean idle-phase duration (virtual ms).
        mean_idle_ms: u64,
    },
    /// Nonhomogeneous Poisson arrivals whose rate follows
    /// `base · (1 + amplitude · sin(2πt / period))` — a day/night load swing
    /// compressed to `period_ms`, sampled by thinning.
    Diurnal {
        /// Mean arrivals per virtual second at the cycle midpoint.
        base_rate_per_sec: f64,
        /// Relative swing of the cycle, in `[0, 1]`.
        amplitude: f64,
        /// Cycle length (virtual ms).
        period_ms: u64,
    },
}

impl ArrivalProcess {
    /// The long-run mean rate of the process (arrivals per virtual second),
    /// used for sanity checks and reporting.
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Bursty {
                base_rate_per_sec,
                burst_multiplier,
                mean_burst_ms,
                mean_idle_ms,
            } => {
                let total = (mean_burst_ms + mean_idle_ms).max(1) as f64;
                let burst_frac = mean_burst_ms as f64 / total;
                base_rate_per_sec * (1.0 + (burst_multiplier - 1.0) * burst_frac)
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec, ..
            } => base_rate_per_sec,
        }
    }
}

/// A seeded sampler producing successive arrival instants for one process.
#[derive(Debug, Clone)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    rng: StdRng,
    /// Bursty state: whether the stream is currently in the burst phase.
    bursting: bool,
    /// Bursty state: virtual time at which the current phase ends.
    phase_until_ms: u64,
}

/// Draw an exponential variate with the given mean (in ms), clamped to
/// `>= 1` so virtual time always advances.
fn exp_ms(rng: &mut StdRng, mean_ms: f64) -> u64 {
    let u: f64 = rng.gen();
    // 1 - u is in (0, 1]; ln is finite and <= 0.
    let gap = -(1.0 - u).ln() * mean_ms;
    (gap.round() as u64).max(1)
}

impl ArrivalSampler {
    /// A sampler over `process` with its own RNG stream. Bursty streams open
    /// in the idle phase — the burst is the exception, not the greeting.
    pub fn new(process: ArrivalProcess, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let phase_until_ms = match process {
            ArrivalProcess::Bursty { mean_idle_ms, .. } => exp_ms(&mut rng, mean_idle_ms as f64),
            _ => 0,
        };
        ArrivalSampler {
            process,
            rng,
            bursting: false,
            phase_until_ms,
        }
    }

    /// The gap (virtual ms, `>= 1`) between an arrival at `now_ms` and the
    /// next one.
    pub fn next_gap_ms(&mut self, now_ms: u64) -> u64 {
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                exp_ms(&mut self.rng, 1000.0 / rate_per_sec)
            }
            ArrivalProcess::Bursty {
                base_rate_per_sec,
                burst_multiplier,
                mean_burst_ms,
                mean_idle_ms,
            } => {
                if now_ms >= self.phase_until_ms {
                    self.bursting = !self.bursting;
                    let dwell_mean = if self.bursting {
                        mean_burst_ms
                    } else {
                        mean_idle_ms
                    };
                    self.phase_until_ms = now_ms + exp_ms(&mut self.rng, dwell_mean as f64);
                }
                let rate = if self.bursting {
                    base_rate_per_sec * burst_multiplier
                } else {
                    base_rate_per_sec
                };
                exp_ms(&mut self.rng, 1000.0 / rate)
            }
            ArrivalProcess::Diurnal {
                base_rate_per_sec,
                amplitude,
                period_ms,
            } => {
                // Thinning (Lewis–Shedler): sample at the peak rate, accept
                // proportionally to the instantaneous rate.
                let max_rate = base_rate_per_sec * (1.0 + amplitude);
                let mut t = now_ms;
                loop {
                    t += exp_ms(&mut self.rng, 1000.0 / max_rate);
                    let phase = 2.0 * std::f64::consts::PI * (t % period_ms.max(1)) as f64
                        / period_ms.max(1) as f64;
                    let rate = base_rate_per_sec * (1.0 + amplitude * phase.sin());
                    let accept: f64 = self.rng.gen();
                    if accept * max_rate <= rate {
                        return t - now_ms;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(process: ArrivalProcess, seed: u64, until_ms: u64) -> Vec<u64> {
        let mut sampler = ArrivalSampler::new(process, seed);
        let mut now = 0u64;
        let mut arrivals = Vec::new();
        loop {
            now += sampler.next_gap_ms(now);
            if now >= until_ms {
                return arrivals;
            }
            arrivals.push(now);
        }
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        for process in [
            ArrivalProcess::Poisson { rate_per_sec: 25.0 },
            ArrivalProcess::Bursty {
                base_rate_per_sec: 5.0,
                burst_multiplier: 10.0,
                mean_burst_ms: 500,
                mean_idle_ms: 2000,
            },
            ArrivalProcess::Diurnal {
                base_rate_per_sec: 20.0,
                amplitude: 0.8,
                period_ms: 10_000,
            },
        ] {
            let a = drain(process, 7, 20_000);
            let b = drain(process, 7, 20_000);
            assert_eq!(a, b, "{process:?} must replay identically");
            let c = drain(process, 8, 20_000);
            assert_ne!(a, c, "{process:?} must vary with the seed");
            assert!(!a.is_empty());
        }
    }

    #[test]
    fn poisson_matches_its_mean_rate() {
        let process = ArrivalProcess::Poisson { rate_per_sec: 50.0 };
        let arrivals = drain(process, 3, 60_000);
        let observed = arrivals.len() as f64 / 60.0;
        assert!(
            (observed - 50.0).abs() < 5.0,
            "observed rate {observed}/s too far from 50/s"
        );
        assert_eq!(process.mean_rate_per_sec(), 50.0);
    }

    #[test]
    fn bursty_bursts_are_denser_than_idle_stretches() {
        let process = ArrivalProcess::Bursty {
            base_rate_per_sec: 2.0,
            burst_multiplier: 20.0,
            mean_burst_ms: 1000,
            mean_idle_ms: 4000,
        };
        let arrivals = drain(process, 11, 120_000);
        // Mean rate sits between the idle and burst rates.
        let observed = arrivals.len() as f64 / 120.0;
        assert!(observed > 2.0, "bursts must raise the rate above idle");
        assert!(observed < 40.0, "rate cannot exceed the burst rate");
        // The gap distribution is overdispersed relative to Poisson at the
        // same mean: its coefficient of variation exceeds 1.
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv > 1.1, "bursty stream should be overdispersed, cv = {cv}");
        let blended = process.mean_rate_per_sec();
        assert!(blended > 2.0 && blended < 40.0);
    }

    #[test]
    fn bursty_streams_open_in_the_idle_phase() {
        // With an effectively infinite idle dwell and an extreme burst rate,
        // a stream that (incorrectly) opened bursting would produce hundreds
        // of arrivals per second; an idle opening produces ~base rate.
        let process = ArrivalProcess::Bursty {
            base_rate_per_sec: 1.0,
            burst_multiplier: 1000.0,
            mean_burst_ms: 1000,
            mean_idle_ms: 1 << 40,
        };
        for seed in 0..5 {
            let arrivals = drain(process, seed, 60_000);
            assert!(
                arrivals.len() < 300,
                "seed {seed}: {} arrivals in 60s — the stream opened bursting",
                arrivals.len()
            );
        }
    }

    #[test]
    fn diurnal_peak_half_outweighs_trough_half() {
        let period = 20_000u64;
        let process = ArrivalProcess::Diurnal {
            base_rate_per_sec: 20.0,
            amplitude: 0.9,
            period_ms: period,
        };
        let arrivals = drain(process, 5, 200_000);
        // sin > 0 over the first half of each period: that half must carry
        // clearly more traffic.
        let peak = arrivals
            .iter()
            .filter(|&&t| t % period < period / 2)
            .count();
        let trough = arrivals.len() - peak;
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak half {peak} vs trough half {trough}"
        );
    }
}
