//! Error types for the load generator.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing scenarios or running the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadgenError {
    /// A scenario document could not be parsed.
    ScenarioParse {
        /// 1-based line number (0 when the problem is document-wide).
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// A scenario parsed but is semantically invalid (unknown device in an
    /// event, zero-rate tenant, empty fleet, ...).
    InvalidScenario(String),
    /// The engine could not drive the QRIO stack (metadata upload failed,
    /// containerization failed, ...).
    Engine(String),
}

impl fmt::Display for LoadgenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadgenError::ScenarioParse { line, message } => {
                write!(f, "scenario parse error at line {line}: {message}")
            }
            LoadgenError::InvalidScenario(message) => {
                write!(f, "invalid scenario: {message}")
            }
            LoadgenError::Engine(message) => write!(f, "loadgen engine error: {message}"),
        }
    }
}

impl Error for LoadgenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let parse = LoadgenError::ScenarioParse {
            line: 7,
            message: "bad rate".into(),
        };
        assert!(parse.to_string().contains("line 7"));
        assert!(LoadgenError::InvalidScenario("empty fleet".into())
            .to_string()
            .contains("empty fleet"));
        assert!(LoadgenError::Engine("upload failed".into())
            .to_string()
            .contains("upload failed"));
        fn assert_err<E: Error + Send + Sync>() {}
        assert_err::<LoadgenError>();
    }
}
