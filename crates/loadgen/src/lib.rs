//! # qrio-loadgen
//!
//! A deterministic, cloud-scale workload simulator for QRIO: a virtual-time
//! discrete-event engine that drives the **full** stack — meta-server
//! ranking → QRIO scheduler → cluster queues → simulated execution — with
//! thousands of jobs from configurable multi-tenant arrival processes, while
//! injecting calibration drift and backend outages mid-run.
//!
//! Real quantum clouds see diurnal load swings, bursty batch submissions and
//! week-scale calibration drift; QRIO's promise is user-customizable job
//! steering *under that contention*. This crate supplies the contention: a
//! [`Scenario`] describes a fleet, a set of tenants (circuit family, ranking
//! strategy, arrival process) and a timeline of drift/outage events;
//! [`run_scenario`] replays it in virtual time (no wall clock anywhere) and
//! returns a [`CloudReport`] with per-tenant throughput and p50/p95 latency,
//! per-device utilization, a fidelity-vs-load curve and the meta server's
//! strategy-cache hit rate. The whole run is a pure function of the scenario
//! seed, so `BENCH_cloud.json` is byte-identical across same-seed runs and
//! scenario outcomes are assertable in tests.
//!
//! # Example
//!
//! ```
//! use qrio_loadgen::{run_scenario, Scenario};
//!
//! let scenario = Scenario::from_yaml(
//!     "scenario: doc\n\
//!      seed: 7\n\
//!      durationMs: 3000\n\
//!      maxJobs: 40\n\
//!      fleet:\n\
//!        - device: alpha\n\
//!          qubits: 6\n\
//!        - device: beta\n\
//!          qubits: 6\n\
//!          twoQubitError: 0.05\n\
//!      tenants:\n\
//!        - tenant: alice\n\
//!          strategy: min_queue\n\
//!          circuit: ghz\n\
//!          qubits: 4\n\
//!          shots: 16\n\
//!          ratePerSec: 10.0\n",
//! )
//! .unwrap();
//! let report = run_scenario(&scenario).unwrap();
//! assert!(report.completed > 0);
//! // Same seed, same bytes.
//! assert_eq!(report.to_json(), run_scenario(&scenario).unwrap().to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
mod engine;
mod error;
pub mod killrestart;
pub mod metrics;
pub mod scenario;

pub use arrival::{ArrivalProcess, ArrivalSampler};
pub use engine::{run_scenario, run_scenario_with_log, run_scenario_with_transport};
pub use error::LoadgenError;
pub use killrestart::{
    run_kill_restart, run_kill_restart_with_log, KillRestartReport, KillRestartScenario,
};
pub use metrics::{ChaosStats, CloudReport, DeviceStats, JobSample, LoadBucket, TenantStats};
pub use scenario::{
    BreakerSettings, DeviceSpec, RetryBackoffKind, Scenario, ScenarioEvent, TenantRetrySpec,
    TenantSpec, TenantStrategy, TopologyKind, WorkloadCircuit,
};
