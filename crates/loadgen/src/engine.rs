//! The virtual-time discrete-event engine: drives the full QRIO stack
//! through the orchestrator's **public job-lifecycle API** — non-blocking
//! enqueue → telemetry-aware scheduling → per-device queues → simulated
//! execution — with multi-tenant arrival streams, calibration drift and
//! outages.
//!
//! # Model
//!
//! Virtual time is an integer millisecond clock; the engine never reads the
//! wall clock. Events (job arrivals, job completions, drift, outage
//! start/end) live in a binary heap ordered by `(time, sequence)`, so the
//! processing order is a pure function of the scenario and its seed.
//!
//! Each arrival runs the *real* submission path, via [`Qrio::enqueue`]:
//! metadata upload to the meta server (strategy validation included),
//! containerization through the master server, image push and job
//! submission. The engine then reports its virtual device load (queue depth
//! and busy fraction from its own queues) through
//! [`Qrio::report_telemetry`] and binds the job with the lifecycle
//! primitive [`Qrio::schedule`] — the same filter + meta-rank cycle the
//! service loop runs. The chosen device's queue is then simulated in
//! virtual time: each device executes one job at a time; its service time
//! is `(serviceBaseUs + shots·servicePerShotUs) / speed`. When a job
//! reaches the head of the queue, the engine calls [`Qrio::execute`], which
//! transpiles and simulates the circuit under the device's *current*
//! (possibly drifted) noise model — so calibration drift degrades the
//! fidelity of jobs executed after the drift, producing a real
//! fidelity-vs-load signal.
//!
//! Drift events rewrite the device's calibration through
//! [`Qrio::recalibrate_device`] (bumping the calibration revision, which
//! invalidates memoized scores), then re-rank every *waiting* job with
//! [`Qrio::rank_among`]; jobs whose best device changed migrate via
//! [`Qrio::rebind`]. Outages cordon the node and force-migrate its waiting
//! queue (the in-flight job finishes its window).

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};

use qrio::{
    BreakerConfig, BreakerState, DeviceTelemetry, FidelityRankingConfig, JobId, JobRequestBuilder,
    JobState, Qrio,
};
use qrio_backend::Backend;
use qrio_cluster::{FaultInjector, Resources, RetryPolicy};

use crate::arrival::ArrivalSampler;
use crate::error::LoadgenError;
use crate::metrics::{
    fidelity_vs_load, tenant_stats, ChaosStats, CloudReport, DeviceStats, JobSample,
};
use crate::scenario::{Scenario, ScenarioEvent};

/// Classical resources requested per simulated job (tiny, so queue depth —
/// not the classical-resource fit — is the binding constraint, as on real
/// quantum clouds).
const JOB_RESOURCES: (u64, u64) = (10, 16);

/// Classical node capacity (effectively unbounded relative to
/// [`JOB_RESOURCES`]).
const NODE_RESOURCES: (u64, u64) = (1 << 30, 1 << 30);

/// Minimum score improvement before a drift re-ranking migrates a waiting
/// job (hysteresis against churn on near-ties).
const MIGRATION_EPSILON: f64 = 1e-9;

/// FNV-1a, used to derive independent RNG streams per tenant.
fn fnv(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum EventKind {
    /// The next arrival of one tenant's stream.
    Arrival { tenant: usize },
    /// `job`, in flight on `device`, finishes its service window. Stale once
    /// the job was interrupted by an outage — `job` no longer matches the
    /// device's `busy_with`, and the event is ignored.
    Completion { device: String, job: String },
    /// A calibration-drift event (`index` into `Scenario::events`, so the
    /// exact `f64` factor is read back without quantization).
    Drift { index: usize },
    /// An outage begins.
    OutageStart { device: String, down_ms: u64 },
    /// An outage ends.
    OutageEnd { device: String },
    /// A `faults` timeline event reconfigures the fault injector (`index`
    /// into `Scenario::events`, so rates are read back exactly).
    FaultRates { index: usize },
    /// `job`'s backoff elapsed: kick the retry and re-bind it.
    Retry { job: String },
    /// A tripped breaker's open window elapsed: probe `device`.
    Probe { device: String },
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The virtual queue state of one device.
#[derive(Debug, Default)]
struct DeviceSim {
    /// Waiting job names, FIFO.
    queue: VecDeque<String>,
    /// The in-flight job, if any.
    busy_with: Option<String>,
    /// Accumulated busy time (ms).
    busy_ms: u64,
    /// Largest queue length observed (waiting + in-flight).
    peak_queue: usize,
    /// Jobs completed.
    completed: u64,
    /// Service-speed divisor from the scenario.
    speed: f64,
    /// Whether the device is inside an outage window.
    cordoned: bool,
}

/// Engine-side bookkeeping for one job.
#[derive(Debug, Clone)]
struct JobTrack {
    tenant: String,
    /// Index into `Scenario::tenants`, for the retry/deadline spec.
    tenant_idx: usize,
    arrival_ms: u64,
    queue_depth_at_bind: usize,
    migrated: bool,
    /// Failed execution attempts so far (drives the backoff schedule).
    attempts: u32,
}

/// Run `scenario` to completion and produce its [`CloudReport`].
///
/// Arrivals stop at the scenario horizon (or job cap); queued work then
/// drains, so the report's makespan can exceed the horizon. The report is a
/// pure function of the scenario (including its seed) — calling this twice
/// yields byte-identical [`CloudReport::to_json`] documents.
///
/// # Errors
///
/// Returns an error when the scenario is invalid or the QRIO stack rejects
/// the workload wholesale (e.g. a tenant strategy failing validation on
/// every job).
pub fn run_scenario(scenario: &Scenario) -> Result<CloudReport, LoadgenError> {
    run_scenario_with_log(scenario).map(|(report, _)| report)
}

/// Like [`run_scenario`], but also return the orchestrator's full watch log —
/// every [`qrio::JobEvent`] the run emitted, in sequence order. Auditing the
/// log (see `qrio-analyzer`) end-to-end checks the orchestrator's lifecycle
/// bookkeeping over a whole cloud-scale run.
///
/// # Errors
///
/// Same failure modes as [`run_scenario`].
pub fn run_scenario_with_log(
    scenario: &Scenario,
) -> Result<(CloudReport, Vec<qrio::JobEvent>), LoadgenError> {
    scenario.validate()?;
    Engine::new(scenario)?.run()
}

/// Like [`run_scenario`], but with an explicit control-plane transport:
/// [`qrio::TransportMode::InProc`] reproduces [`run_scenario`] exactly, and
/// [`qrio::TransportMode::Threaded`] moves the node agents onto real worker
/// threads. Agents are pure functions of their per-node command streams, so
/// the report is byte-identical in every mode and at every thread count.
///
/// # Errors
///
/// Same failure modes as [`run_scenario`].
pub fn run_scenario_with_transport(
    scenario: &Scenario,
    mode: qrio::TransportMode,
) -> Result<CloudReport, LoadgenError> {
    scenario.validate()?;
    let mut engine = Engine::new(scenario)?;
    engine.qrio.set_transport(mode);
    engine.run().map(|(report, _)| report)
}

struct Engine<'s> {
    scenario: &'s Scenario,
    /// The QRIO deployment under test, driven exclusively through its public
    /// lifecycle API.
    qrio: Qrio,
    samplers: Vec<ArrivalSampler>,
    tenant_job_counters: Vec<u64>,
    devices: BTreeMap<String, DeviceSim>,
    heap: BinaryHeap<Event>,
    next_seq: u64,
    now: u64,
    makespan: u64,
    submitted: u64,
    submitted_by_tenant: BTreeMap<String, u64>,
    rejected_by_tenant: BTreeMap<String, u64>,
    samples: Vec<JobSample>,
    jobs: BTreeMap<String, JobTrack>,
    start_times: BTreeMap<String, u64>,
    rejected: u64,
    execution_failures: u64,
    migrations: u64,
    drift_events: u64,
    outage_events: u64,
    chaos: ChaosStats,
    /// Devices with a breaker probe already on the heap (dedupes probes
    /// across the failures that accumulate while a breaker is open).
    probe_pending: BTreeSet<String>,
}

impl<'s> Engine<'s> {
    fn new(scenario: &'s Scenario) -> Result<Self, LoadgenError> {
        let mut qrio = Qrio::with_config(
            FidelityRankingConfig {
                shots: scenario.canary_shots.max(1),
                seed: scenario.seed ^ 0xCA11_AB1E,
                shortfall_weight: 100.0,
            },
            scenario.seed ^ 0x51D0_C10D,
        );
        let mut devices = BTreeMap::new();
        for spec in &scenario.fleet {
            qrio.add_device_with_resources(
                spec.backend(),
                Resources::new(NODE_RESOURCES.0, NODE_RESOURCES.1),
            )
            .map_err(|e| LoadgenError::Engine(format!("cannot add node: {e}")))?;
            devices.insert(
                spec.name.clone(),
                DeviceSim {
                    speed: spec.speed,
                    ..DeviceSim::default()
                },
            );
        }
        let samplers = scenario
            .tenants
            .iter()
            .map(|t| ArrivalSampler::new(t.arrival, scenario.seed ^ fnv(&t.name)))
            .collect();
        if let Some(breakers) = &scenario.breakers {
            qrio.configure_breakers(Some(BreakerConfig {
                consecutive_failures: breakers.consecutive_failures,
                failure_rate: breakers.failure_rate,
                window: breakers.window,
                // The orchestrator's tick clock never advances here — the
                // engine paces probes itself, in virtual ms, via
                // `Qrio::probe_device`.
                open_ticks: breakers.open_ms,
                probe_jobs: breakers.probe_jobs,
            }))
            .map_err(|e| LoadgenError::Engine(format!("cannot configure breakers: {e}")))?;
        }
        Ok(Engine {
            scenario,
            qrio,
            samplers,
            tenant_job_counters: vec![0; scenario.tenants.len()],
            devices,
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            makespan: 0,
            submitted: 0,
            submitted_by_tenant: BTreeMap::new(),
            rejected_by_tenant: BTreeMap::new(),
            samples: Vec::new(),
            jobs: BTreeMap::new(),
            start_times: BTreeMap::new(),
            rejected: 0,
            execution_failures: 0,
            migrations: 0,
            drift_events: 0,
            outage_events: 0,
            chaos: ChaosStats::default(),
            probe_pending: BTreeSet::new(),
        })
    }

    fn push_event(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    fn run(mut self) -> Result<(CloudReport, Vec<qrio::JobEvent>), LoadgenError> {
        // Seed the timeline: one first arrival per tenant, plus the scenario's
        // drift/outage events.
        for tenant in 0..self.scenario.tenants.len() {
            let gap = self.samplers[tenant].next_gap_ms(0);
            if gap < self.scenario.duration_ms {
                self.push_event(gap, EventKind::Arrival { tenant });
            }
        }
        let scenario = self.scenario;
        for (index, event) in scenario.events.iter().enumerate() {
            match event.clone() {
                ScenarioEvent::Drift { at_ms, .. } => {
                    self.push_event(at_ms, EventKind::Drift { index })
                }
                ScenarioEvent::Outage {
                    at_ms,
                    device,
                    down_ms,
                } => self.push_event(at_ms, EventKind::OutageStart { device, down_ms }),
                ScenarioEvent::Faults { at_ms, .. } => {
                    self.push_event(at_ms, EventKind::FaultRates { index })
                }
            }
        }

        while let Some(event) = self.heap.pop() {
            self.now = event.time;
            self.makespan = self.makespan.max(event.time);
            match event.kind {
                EventKind::Arrival { tenant } => self.on_arrival(tenant)?,
                EventKind::Completion { device, job } => self.on_completion(&device, &job)?,
                EventKind::Drift { index } => {
                    let ScenarioEvent::Drift {
                        device,
                        error_factor,
                        ..
                    } = &scenario.events[index]
                    else {
                        unreachable!("drift events index only Drift entries");
                    };
                    self.on_drift(device, *error_factor)?;
                }
                EventKind::OutageStart { device, down_ms } => {
                    self.on_outage_start(&device, down_ms)
                }
                EventKind::OutageEnd { device } => self.on_outage_end(&device),
                EventKind::FaultRates { index } => {
                    let ScenarioEvent::Faults {
                        transient_rate,
                        calibration_rate,
                        slow_rate,
                        flap_rate,
                        ..
                    } = &scenario.events[index]
                    else {
                        unreachable!("fault-rate events index only Faults entries");
                    };
                    self.on_fault_rates(*transient_rate, *calibration_rate, *slow_rate, *flap_rate);
                }
                EventKind::Retry { job } => self.on_retry(&job),
                EventKind::Probe { device } => self.on_probe(&device),
            }
        }

        let log = self.qrio.watch(0).to_vec();
        Ok((self.into_report(), log))
    }

    // --- Arrivals ------------------------------------------------------------------------

    fn on_arrival(&mut self, tenant_idx: usize) -> Result<(), LoadgenError> {
        let under_cap = self.scenario.max_jobs == 0 || self.submitted < self.scenario.max_jobs;
        if self.now >= self.scenario.duration_ms || !under_cap {
            return Ok(()); // The stream ends; no follow-up arrival.
        }
        // Schedule the tenant's next arrival first, so a submission error
        // cannot silence the stream.
        let gap = self.samplers[tenant_idx].next_gap_ms(self.now);
        let next = self.now + gap;
        if next < self.scenario.duration_ms {
            self.push_event(next, EventKind::Arrival { tenant: tenant_idx });
        }
        self.submit_job(tenant_idx)
    }

    fn submit_job(&mut self, tenant_idx: usize) -> Result<(), LoadgenError> {
        // Decouple the scenario borrow from `self` so the tenant reference
        // survives the `&mut self` calls below.
        let scenario = self.scenario;
        let tenant = &scenario.tenants[tenant_idx];
        let index = self.tenant_job_counters[tenant_idx];
        self.tenant_job_counters[tenant_idx] += 1;
        let job_name = format!("{}-{index}", tenant.name);
        let circuit = tenant.circuit_for(index)?;
        let strategy = tenant.strategy.strategy_spec();

        let mut builder = JobRequestBuilder::new()
            .with_circuit(&circuit)
            .job_name(&job_name)
            .image_name(format!("qrio/{}:{index}", tenant.name))
            .strategy(strategy.clone())
            .shots(tenant.shots)
            .resources(JOB_RESOURCES.0, JOB_RESOURCES.1);
        if let Some(retry) = &tenant.retry {
            // The orchestrator only needs to know *how many* attempts are
            // allowed (so failures land in `Retrying`, not `Failed`); the
            // engine paces the backoff itself, in virtual ms, via `Retry`
            // events — the orchestrator's tick-based delay never elapses
            // because the engine never ticks.
            builder = builder.retry_policy(RetryPolicy::fixed(retry.max_attempts, 1));
        }
        let request = builder
            .build()
            .map_err(|e| LoadgenError::Engine(format!("cannot build request: {e}")))?;

        // 1. Non-blocking submission through the public lifecycle API:
        //    metadata upload (validation included), containerization, image
        //    push — the job comes back `Queued`.
        let job_id = self
            .qrio
            .enqueue(&request)
            .map_err(|e| LoadgenError::Engine(format!("enqueue failed: {e}")))?;

        self.submitted += 1;
        *self
            .submitted_by_tenant
            .entry(tenant.name.clone())
            .or_insert(0) += 1;

        // 2. Scheduling cycle: report the virtual-queue telemetry, then bind
        //    via filter + meta-rank. A job no eligible device can host
        //    (outage window, oversized circuit, ...) ends `Failed`.
        let reports = self.telemetry_snapshot();
        self.qrio.report_telemetry(reports);
        let decision = match self.qrio.schedule(&job_id) {
            Ok(decision) => decision,
            Err(_) => {
                self.rejected += 1;
                *self
                    .rejected_by_tenant
                    .entry(tenant.name.clone())
                    .or_insert(0) += 1;
                return Ok(());
            }
        };

        // 3. Enter the chosen device's virtual queue.
        let device = decision.node;
        let depth = {
            let sim = self
                .devices
                .get(&device)
                .expect("scheduler only binds to registered devices");
            sim.queue.len() + usize::from(sim.busy_with.is_some())
        };
        self.jobs.insert(
            job_name.clone(),
            JobTrack {
                tenant: tenant.name.clone(),
                tenant_idx,
                arrival_ms: self.now,
                queue_depth_at_bind: depth,
                migrated: false,
                attempts: 0,
            },
        );
        self.enqueue(&device, job_name);
        Ok(())
    }

    /// Put a bound job at the tail of a device's virtual queue, starting it
    /// immediately when the device is idle.
    fn enqueue(&mut self, device: &str, job_name: String) {
        let sim = self.devices.get_mut(device).expect("device exists");
        sim.queue.push_back(job_name);
        let occupancy = sim.queue.len() + usize::from(sim.busy_with.is_some());
        sim.peak_queue = sim.peak_queue.max(occupancy);
        if sim.busy_with.is_none() && !sim.cordoned {
            self.start_next(device);
        }
    }

    /// Start the next waiting job on an idle device.
    fn start_next(&mut self, device: &str) {
        let shots = {
            let sim = self.devices.get_mut(device).expect("device exists");
            debug_assert!(sim.busy_with.is_none());
            let Some(job_name) = sim.queue.pop_front() else {
                return;
            };
            sim.busy_with = Some(job_name.clone());
            let shots = self
                .qrio
                .cluster()
                .job(&job_name)
                .map(|j| j.spec().shots)
                .unwrap_or(1);
            self.start_times.insert(job_name, self.now);
            shots
        };
        let sim = self.devices.get_mut(device).expect("device exists");
        let service_us =
            self.scenario.service_base_us + shots.saturating_mul(self.scenario.service_per_shot_us);
        let service_ms = ((service_us as f64 / sim.speed / 1000.0).ceil() as u64).max(1);
        // Busy time is charged as it elapses (at completion, and pro rata in
        // telemetry), not up front.
        let finish = self.now + service_ms;
        let job = self
            .devices
            .get(device)
            .and_then(|sim| sim.busy_with.clone())
            .expect("start_next just set busy_with");
        self.push_event(
            finish,
            EventKind::Completion {
                device: device.to_string(),
                job,
            },
        );
    }

    // --- Completions ---------------------------------------------------------------------

    fn on_completion(&mut self, device: &str, job: &str) -> Result<(), LoadgenError> {
        {
            let sim = self.devices.get_mut(device).expect("device exists");
            // Stale event: the job was interrupted (outage) before its window
            // elapsed, so the device is busy with something else (or idle).
            if sim.busy_with.as_deref() != Some(job) {
                return Ok(());
            }
            sim.busy_with = None;
        }
        let job_name = job.to_string();
        // Execute the container on the node: transpile + simulate under the
        // device's *current* (possibly drifted) noise model. The fault
        // injector (if configured) is consulted inside this call.
        let run = self.qrio.execute(&JobId::new(&job_name));
        let fidelity = match &run {
            Ok(()) => self
                .qrio
                .cluster()
                .job(&job_name)
                .and_then(|j| j.achieved_fidelity()),
            Err(_) => None,
        };
        let track = self
            .jobs
            .get(&job_name)
            .expect("completed jobs were tracked at bind time")
            .clone();
        let start_ms = self
            .start_times
            .remove(&job_name)
            .expect("started jobs have a start time");
        {
            let sim = self.devices.get_mut(device).expect("device exists");
            sim.busy_ms += self.now - start_ms;
        }
        match run {
            Ok(()) => {
                let sim = self.devices.get_mut(device).expect("device exists");
                sim.completed += 1;
                self.samples.push(JobSample {
                    tenant: track.tenant,
                    device: device.to_string(),
                    arrival_ms: track.arrival_ms,
                    start_ms,
                    completion_ms: self.now,
                    queue_depth_at_bind: track.queue_depth_at_bind,
                    fidelity,
                    migrated: track.migrated,
                });
            }
            Err(error) => self.handle_failed_attempt(&job_name, &error.to_string()),
        }
        self.note_breaker_state(device);
        let sim = self.devices.get_mut(device).expect("device exists");
        if !sim.cordoned && sim.busy_with.is_none() && !sim.queue.is_empty() {
            self.start_next(device);
        }
        Ok(())
    }

    // --- Fault handling ------------------------------------------------------------------

    /// Account for one failed execution attempt of `job_name`. When the
    /// orchestrator parked the job in `Retrying`, schedule the engine-paced
    /// retry (or cancel it when the backoff would blow the tenant deadline);
    /// otherwise the failure is terminal.
    fn handle_failed_attempt(&mut self, job_name: &str, error_text: &str) {
        if error_text.contains("injected fault") {
            if error_text.contains("transient") {
                self.chaos.injected_transient += 1;
            } else if error_text.contains("calibration") {
                self.chaos.injected_calibration += 1;
            } else if error_text.contains("hung") {
                self.chaos.injected_slow += 1;
            } else if error_text.contains("flapped") {
                self.chaos.injected_flap += 1;
            }
        }
        let job_id = JobId::new(job_name);
        let retrying = self
            .qrio
            .job_status(&job_id)
            .map(|status| status.state == JobState::Retrying)
            .unwrap_or(false);
        if !retrying {
            self.execution_failures += 1;
            return;
        }
        let (attempts, tenant_idx) = {
            let track = self
                .jobs
                .get_mut(job_name)
                .expect("failed jobs were tracked at bind time");
            track.attempts += 1;
            (track.attempts, track.tenant_idx)
        };
        let tenant = &self.scenario.tenants[tenant_idx];
        let backoff = tenant
            .retry
            .as_ref()
            .expect("jobs only enter Retrying when the tenant set a retry policy")
            .backoff_ms(attempts)
            .max(1);
        let arrival = self.jobs[job_name].arrival_ms;
        let misses_deadline = tenant
            .deadline_ms
            .is_some_and(|deadline| self.now + backoff > arrival.saturating_add(deadline));
        if misses_deadline {
            // Retrying would land past the tenant's deadline: give up now
            // rather than burn a doomed attempt.
            let _ = self.qrio.cancel(&job_id);
            self.chaos.deadline_cancelled += 1;
            return;
        }
        self.push_event(
            self.now + backoff,
            EventKind::Retry {
                job: job_name.to_string(),
            },
        );
    }

    /// A retry backoff elapsed: move the job back to `Queued` and re-run the
    /// scheduling cycle (the original device may be cordoned by now).
    fn on_retry(&mut self, job: &str) {
        let job_id = JobId::new(job);
        if self.qrio.kick_retry(&job_id).is_err() {
            // Cancelled (deadline) or otherwise settled in the meantime.
            return;
        }
        self.chaos.retries += 1;
        let reports = self.telemetry_snapshot();
        self.qrio.report_telemetry(reports);
        match self.qrio.schedule(&job_id) {
            Ok(decision) => {
                let device = decision.node;
                let depth = {
                    let sim = self
                        .devices
                        .get(&device)
                        .expect("scheduler only binds to registered devices");
                    sim.queue.len() + usize::from(sim.busy_with.is_some())
                };
                if let Some(track) = self.jobs.get_mut(job) {
                    track.queue_depth_at_bind = depth;
                }
                self.enqueue(&device, job.to_string());
            }
            // `schedule` settles unschedulable jobs as `Failed` (terminal).
            Err(_) => self.execution_failures += 1,
        }
    }

    /// A `faults` timeline event: swap the cluster's fault injector for one
    /// with the new rates (or remove it entirely when all rates are zero).
    fn on_fault_rates(&mut self, transient: f64, calibration: f64, slow: f64, flap: f64) {
        let injector = if transient + calibration + slow + flap == 0.0 {
            None
        } else {
            Some(FaultInjector {
                transient_rate: transient,
                calibration_rate: calibration,
                slow_rate: slow,
                flap_rate: flap,
                ..FaultInjector::new(self.scenario.fault_seed)
            })
        };
        self.qrio
            .configure_faults(injector)
            .expect("fault injector reconfiguration is infallible on a live cluster");
    }

    /// A breaker's open window elapsed: probe the device. A successful probe
    /// transition (open → half-open) lifts the engine-side pause so queued
    /// work flows again while the breaker counts its probe jobs.
    fn on_probe(&mut self, device: &str) {
        self.probe_pending.remove(device);
        self.chaos.breaker_probes += 1;
        if self.qrio.probe_device(device).unwrap_or(false) {
            if let Some(sim) = self.devices.get_mut(device) {
                sim.cordoned = false;
                if sim.busy_with.is_none() && !sim.queue.is_empty() {
                    self.start_next(device);
                }
            }
        }
    }

    /// After an execution outcome, mirror the breaker's verdict into the
    /// engine's virtual queues: an `Open` breaker pauses the device (its
    /// waiting queue flees to the healthy fleet) and schedules exactly one
    /// probe for when the open window elapses.
    fn note_breaker_state(&mut self, device: &str) {
        let open = matches!(
            self.qrio.breakers().map(|board| board.state(device)),
            Some(BreakerState::Open { .. })
        );
        if !open || self.probe_pending.contains(device) {
            return;
        }
        let open_ms = self
            .scenario
            .breakers
            .as_ref()
            .map_or(1, |b| b.open_ms.max(1));
        self.probe_pending.insert(device.to_string());
        self.push_event(
            self.now + open_ms,
            EventKind::Probe {
                device: device.to_string(),
            },
        );
        if let Some(sim) = self.devices.get_mut(device) {
            sim.cordoned = true;
        }
        self.rerank_waiting(Some(device));
    }

    // --- Telemetry -----------------------------------------------------------------------

    /// Snapshot the current queue depth and utilization of every virtual
    /// device — the live signal `weighted` and `min_queue` react to, fed to
    /// the meta server via [`Qrio::report_telemetry`]. The reported queue
    /// depth equals what the cluster counts as bound jobs (waiting +
    /// in-flight); utilization is the device's busy fraction of elapsed
    /// virtual time, with the in-flight job charged only for the portion
    /// that has actually elapsed.
    fn telemetry_snapshot(&self) -> Vec<(String, DeviceTelemetry)> {
        self.devices
            .iter()
            .map(|(name, sim)| {
                let queue_depth = sim.queue.len() + usize::from(sim.busy_with.is_some());
                let in_flight_ms = sim
                    .busy_with
                    .as_ref()
                    .and_then(|job| self.start_times.get(job))
                    .map_or(0, |&start| self.now - start);
                let utilization = if self.now == 0 {
                    0.0
                } else {
                    ((sim.busy_ms + in_flight_ms) as f64 / self.now as f64).min(1.0)
                };
                (
                    name.clone(),
                    DeviceTelemetry {
                        queue_depth,
                        utilization,
                        health_penalty: 0.0,
                    },
                )
            })
            .collect()
    }

    // --- Drift ---------------------------------------------------------------------------

    fn on_drift(&mut self, device: &str, factor: f64) -> Result<(), LoadgenError> {
        self.drift_events += 1;
        let Some(backend) = self.qrio.meta().backend(device).cloned() else {
            return Ok(());
        };
        let drifted = drift_backend(&backend, factor)?;
        // New calibration revision in the meta server (memoized scores
        // against the old calibration are invalidated implicitly) plus
        // recomputed node labels in the cluster, in one public call.
        self.qrio
            .recalibrate_device(drifted)
            .map_err(|e| LoadgenError::Engine(format!("drift update failed: {e}")))?;
        self.rerank_waiting(None);
        Ok(())
    }

    // --- Outages -------------------------------------------------------------------------

    fn on_outage_start(&mut self, device: &str, down_ms: u64) {
        self.outage_events += 1;
        // A device dying mid-shot kills the in-flight job's attempt: surface
        // it through the orchestrator as an injected device-flap fault (it
        // may retry, per its policy) instead of letting its completion event
        // silently succeed later. Interrupt *before* cordoning so the
        // outage-end uncordon restores the node cleanly.
        let in_flight = self
            .devices
            .get_mut(device)
            .and_then(|sim| sim.busy_with.take());
        if let Some(job_name) = in_flight {
            let start_ms = self
                .start_times
                .remove(&job_name)
                .expect("started jobs have a start time");
            let sim = self.devices.get_mut(device).expect("device exists");
            sim.busy_ms += self.now - start_ms;
            self.chaos.interrupted += 1;
            let error = self
                .qrio
                .interrupt(&JobId::new(&job_name))
                .expect_err("interrupting a scheduled job always fails the attempt");
            self.handle_failed_attempt(&job_name, &error.to_string());
        }
        if let Some(node) = self.qrio.cluster_mut().node_mut(device) {
            node.cordon();
        }
        if let Some(sim) = self.devices.get_mut(device) {
            sim.cordoned = true;
        }
        self.push_event(
            self.now + down_ms.max(1),
            EventKind::OutageEnd {
                device: device.to_string(),
            },
        );
        // Waiting jobs flee to the healthy part of the fleet; the in-flight
        // job finishes its window.
        self.rerank_waiting(Some(device));
    }

    fn on_outage_end(&mut self, device: &str) {
        if let Some(node) = self.qrio.cluster_mut().node_mut(device) {
            node.uncordon();
        }
        if let Some(sim) = self.devices.get_mut(device) {
            sim.cordoned = false;
            if sim.busy_with.is_none() && !sim.queue.is_empty() {
                self.start_next(device);
            }
        }
    }

    // --- Re-ranking / migration ----------------------------------------------------------

    /// Re-rank waiting jobs through [`Qrio::rank_among`] and migrate the
    /// ones whose best device changed. `only` restricts the sweep to one
    /// device's queue (outages); `None` sweeps every queue (drift).
    ///
    /// Jobs on a cordoned device migrate whenever *any* eligible device
    /// exists; elsewhere a strictly better score is required. Each job is
    /// decided against telemetry refreshed after the previous migration, so
    /// a fleeing queue spreads over the healthy fleet instead of herding
    /// onto whichever device looked emptiest in one stale snapshot.
    fn rerank_waiting(&mut self, only: Option<&str>) {
        // One fleet snapshot per sweep: node readiness cannot change while
        // the sweep runs (migrations move jobs, not node status).
        let fleet = self.qrio.ready_fleet();
        if fleet.is_empty() {
            return;
        }
        // Snapshot the candidates first (device name order, FIFO within a
        // queue); migrations below mutate the queues being considered.
        let candidates: Vec<(String, String, bool)> = self
            .devices
            .iter()
            .filter(|(device, _)| only.map_or(true, |o| o == device.as_str()))
            .flat_map(|(device, sim)| {
                sim.queue
                    .iter()
                    .map(|job| (device.clone(), job.clone(), sim.cordoned))
            })
            .collect();
        for (device, job_name, fleeing) in candidates {
            // Fresh telemetry per decision: earlier migrations in this sweep
            // already changed queue depths.
            let reports = self.telemetry_snapshot();
            self.qrio.report_telemetry(reports);
            let job_id = JobId::new(&job_name);
            let Ok(ranked) = self.qrio.rank_among(&job_id, &fleet) else {
                continue;
            };
            let (best_device, best_score) = ranked[0].clone();
            if best_device == device {
                continue;
            }
            let current_score = ranked
                .iter()
                .find(|(name, _)| name == &device)
                .map(|(_, score)| *score);
            let improves = match current_score {
                Some(current) => best_score + MIGRATION_EPSILON < current,
                // The current device no longer ranks at all (cordoned or
                // un-scoreable after drift): leave unless fleeing.
                None => fleeing,
            };
            if !(fleeing || improves) {
                continue;
            }
            if self.qrio.rebind(&job_id, &best_device).is_err() {
                continue;
            }
            let from_sim = self.devices.get_mut(&device).expect("device exists");
            from_sim.queue.retain(|name| name != &job_name);
            if let Some(track) = self.jobs.get_mut(&job_name) {
                track.migrated = true;
            }
            self.migrations += 1;
            self.enqueue(&best_device, job_name);
        }
    }

    // --- Report --------------------------------------------------------------------------

    fn into_report(self) -> CloudReport {
        let makespan = self.makespan;
        let tenants = tenant_stats(
            &self.samples,
            &self.submitted_by_tenant,
            &self.rejected_by_tenant,
            makespan,
        );
        let devices = self
            .devices
            .iter()
            .map(|(name, sim)| {
                (
                    name.clone(),
                    DeviceStats {
                        completed: sim.completed,
                        busy_ms: sim.busy_ms,
                        utilization: if makespan == 0 {
                            0.0
                        } else {
                            (sim.busy_ms as f64 / makespan as f64).min(1.0)
                        },
                        peak_queue_depth: sim.peak_queue,
                    },
                )
            })
            .collect();
        let cache = self.qrio.meta().cache_stats();
        let chaos = if self.scenario.has_chaos() {
            let mut chaos = self.chaos.clone();
            chaos.dead_lettered = self.qrio.dead_letters().len() as u64;
            chaos.breaker_trips = self.qrio.breakers().map_or(0, |board| board.total_trips());
            chaos.goodput_per_sec = if makespan == 0 {
                0.0
            } else {
                self.samples.len() as f64 / (makespan as f64 / 1000.0)
            };
            Some(chaos)
        } else {
            None
        };
        CloudReport {
            benchmark: "bench_cloud".to_string(),
            scenario: self.scenario.name.clone(),
            seed: self.scenario.seed,
            duration_ms: self.scenario.duration_ms,
            makespan_ms: makespan,
            submitted: self.submitted,
            completed: self.samples.len() as u64,
            rejected: self.rejected,
            execution_failures: self.execution_failures,
            migrations: self.migrations,
            drift_events: self.drift_events,
            outage_events: self.outage_events,
            tenants,
            devices,
            fidelity_vs_load: fidelity_vs_load(&self.samples),
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_hit_rate: cache.hit_rate(),
            chaos,
        }
    }
}

/// Scale every error rate of `backend` by `factor` (clamping to valid
/// probabilities) and shorten T1/T2 accordingly — the week-scale calibration
/// drift real fleets exhibit, compressed to one instant.
fn drift_backend(backend: &Backend, factor: f64) -> Result<Backend, LoadgenError> {
    let mut qubit_properties = backend.qubits().to_vec();
    for props in &mut qubit_properties {
        props.single_qubit_error = (props.single_qubit_error * factor).clamp(0.0, 0.5);
        props.readout_error = (props.readout_error * factor).clamp(0.0, 0.5);
        props.t1_us = (props.t1_us / factor).max(1.0);
        props.t2_us = (props.t2_us / factor).max(1.0);
    }
    let mut two_qubit_gates = backend.two_qubit_gates().clone();
    for gate in two_qubit_gates.values_mut() {
        gate.error = (gate.error * factor).clamp(0.0, 0.9);
    }
    Backend::new(
        backend.name(),
        backend.coupling_map().clone(),
        qubit_properties,
        two_qubit_gates,
        backend.basis_gates().clone(),
    )
    .map_err(|e| LoadgenError::Engine(format!("cannot build drifted backend: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::topology;

    #[test]
    fn events_pop_in_time_then_sequence_order() {
        let mut heap = BinaryHeap::new();
        let kind = |d: &str| EventKind::Completion {
            device: d.into(),
            job: "j".into(),
        };
        heap.push(Event {
            time: 5,
            seq: 1,
            kind: kind("b"),
        });
        heap.push(Event {
            time: 5,
            seq: 0,
            kind: kind("a"),
        });
        heap.push(Event {
            time: 1,
            seq: 2,
            kind: kind("c"),
        });
        let order: Vec<(u64, u64)> = std::iter::from_fn(|| heap.pop())
            .map(|e| (e.time, e.seq))
            .collect();
        assert_eq!(order, vec![(1, 2), (5, 0), (5, 1)]);
    }

    #[test]
    fn drifted_backends_are_strictly_noisier() {
        let backend =
            Backend::uniform("d", topology::line(5), 0.01, 0.05).with_uniform_readout_error(0.02);
        let drifted = drift_backend(&backend, 4.0).unwrap();
        assert!((drifted.avg_two_qubit_error() - 0.2).abs() < 1e-12);
        assert!((drifted.avg_readout_error() - 0.08).abs() < 1e-12);
        assert!(drifted.avg_t1_us() < backend.avg_t1_us());
        // Factors below one model recalibration improving the device.
        let repaired = drift_backend(&drifted, 0.25).unwrap();
        assert!((repaired.avg_two_qubit_error() - 0.05).abs() < 1e-12);
        // Extreme factors stay within valid probability ranges.
        let fried = drift_backend(&backend, 1e6).unwrap();
        assert!(fried.avg_two_qubit_error() <= 0.9);
        assert!(fried.avg_readout_error() <= 0.5);
    }

    #[test]
    fn outage_interrupts_in_flight_job_instead_of_completing_it() {
        // One device, one job whose 600 ms service window straddles an
        // outage at 100 ms. Without the interrupt path the stale completion
        // event at 600 ms would silently mark the job successful.
        let scenario = Scenario::from_yaml(
            "scenario: interrupt\n\
             seed: 5\n\
             durationMs: 1000\n\
             maxJobs: 1\n\
             serviceBaseUs: 600000\n\
             fleet:\n\
               - device: solo\n\
                 qubits: 6\n\
             tenants:\n\
               - tenant: alice\n\
                 strategy: min_queue\n\
                 circuit: ghz\n\
                 qubits: 4\n\
                 shots: 16\n\
                 ratePerSec: 1000.0\n\
             events:\n\
               - kind: outage\n\
                 atMs: 100\n\
                 device: solo\n\
                 downMs: 100\n",
        )
        .unwrap();
        let (report, log) = run_scenario_with_log(&scenario).unwrap();
        assert_eq!(report.submitted, 1);
        assert_eq!(report.completed, 0, "interrupted job must not complete");
        assert_eq!(report.execution_failures, 1);
        // No retry policy: the interrupt surfaces as a terminal failure whose
        // reason names the injected device flap.
        let failed_reason = log
            .iter()
            .find(|e| e.to == qrio::JobState::Failed)
            .and_then(|e| e.reason.clone())
            .expect("interrupted job emits a Failed event with a reason");
        assert!(
            failed_reason.contains("flapped"),
            "reason should name the flap fault, got: {failed_reason}"
        );
    }

    #[test]
    fn chaos_scenario_retries_through_faults_and_reports_deterministically() {
        // 100% transient faults until 300 ms, then a clean window: every job
        // needs at least one retry, yet all of them eventually complete.
        let yaml = "scenario: chaos-smoke\n\
             seed: 11\n\
             durationMs: 400\n\
             maxJobs: 3\n\
             serviceBaseUs: 50000\n\
             fleet:\n\
               - device: solo\n\
                 qubits: 6\n\
             tenants:\n\
               - tenant: alice\n\
                 strategy: min_queue\n\
                 circuit: ghz\n\
                 qubits: 4\n\
                 shots: 16\n\
                 ratePerSec: 50.0\n\
                 retryMaxAttempts: 10\n\
                 retryDelayMs: 20\n\
             events:\n\
               - kind: faults\n\
                 atMs: 0\n\
                 transientRate: 1.0\n\
               - kind: faults\n\
                 atMs: 300\n";
        let scenario = Scenario::from_yaml(yaml).unwrap();
        let report = run_scenario(&scenario).unwrap();
        assert_eq!(report.completed, report.submitted);
        assert_eq!(report.execution_failures, 0);
        let chaos = report.chaos.as_ref().expect("retry tenants imply chaos");
        assert!(chaos.retries > 0, "100% fault rate must force retries");
        assert!(chaos.injected_transient > 0);
        assert_eq!(chaos.dead_lettered, 0);
        // Byte-determinism: the whole chaos pipeline is seed-pure.
        let again = run_scenario(&scenario).unwrap();
        assert_eq!(report.to_json(), again.to_json());
    }
}
