//! The kill-and-restart scenario archetype: crash the orchestrator in the
//! middle of a seeded job storm and prove the durability layer loses
//! nothing.
//!
//! The run is split by a simulated `kill -9`: a durable [`Qrio`] is stood up
//! over a fresh journal, a seeded storm of enqueues / ticks / cancellations
//! is driven against it, and at a configured point the instance is dropped
//! with no orderly shutdown whatsoever. A second instance is then rebuilt
//! from the journal alone with [`Qrio::recover`], the *same* deterministic
//! storm generator resumes where it stopped, and the workload drains to
//! completion.
//!
//! The report certifies the two properties a durable job store owes its
//! users:
//!
//! * **no job lost** — every job whose enqueue was acknowledged before the
//!   crash is present in the recovered store, and
//! * **no job double-executed** — across the spliced pre-crash +
//!   post-recovery watch log, no job enters `Running` twice.
//!
//! Everything is a pure function of the scenario seed, so two runs over the
//! same configuration render byte-identical reports — CI diffs them.

use std::fmt;
use std::path::Path;

use qrio::{
    BreakerConfig, DurabilityConfig, FidelityRankingConfig, JobEvent, JobId, JobRequest,
    JobRequestBuilder, JobState, Qrio, RecoveryReport,
};
use qrio_backend::{topology, Backend};
use qrio_circuit::library;
use qrio_cluster::{FaultInjector, RetryPolicy};

use crate::error::LoadgenError;

/// Configuration of one kill-and-restart storm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillRestartScenario {
    /// Scenario name, echoed in the report.
    pub name: String,
    /// Master seed: fleet noise, circuit mix, priorities and the cancel
    /// pattern all derive from it.
    pub seed: u64,
    /// Fleet size (line-topology devices with seed-derived noise).
    pub devices: usize,
    /// Total jobs across both phases.
    pub jobs: u64,
    /// The crash point: the orchestrator is killed right after this many
    /// jobs have been acknowledged. Clamped to `jobs`.
    pub crash_after_jobs: u64,
    /// Run one service cycle ([`Qrio::tick`]) after every N enqueues, so the
    /// crash lands over a mix of terminal, running and queued jobs.
    pub tick_every: u64,
    /// Snapshot cadence handed to [`Qrio::enable_durability`] — small values
    /// exercise multi-snapshot journals.
    pub snapshot_every: u64,
    /// Shots per job.
    pub shots: u64,
    /// Injected fault rate in per-mille (0 disables), split between
    /// transient faults and device flaps so the storm also exercises the
    /// breakers. Integer so the scenario stays `Eq`/hashable.
    pub fault_permille: u32,
    /// Attempts allowed per storm job (0 = no retry policy).
    pub retry_max_attempts: u32,
    /// Fixed backoff between attempts, in service-loop ticks.
    pub retry_backoff_ticks: u64,
    /// Arm per-device circuit breakers (default thresholds) for the run.
    pub breakers: bool,
}

impl Default for KillRestartScenario {
    fn default() -> Self {
        KillRestartScenario {
            name: "kill-restart".into(),
            seed: 7,
            devices: 3,
            jobs: 60,
            crash_after_jobs: 40,
            tick_every: 4,
            snapshot_every: 16,
            shots: 32,
            fault_permille: 0,
            retry_max_attempts: 0,
            retry_backoff_ticks: 2,
            breakers: false,
        }
    }
}

/// What one kill-and-restart run observed, plus its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct KillRestartReport {
    /// Scenario name.
    pub name: String,
    /// Scenario seed.
    pub seed: u64,
    /// Jobs acknowledged before the crash.
    pub pre_crash_jobs: u64,
    /// Jobs submitted after recovery.
    pub post_crash_jobs: u64,
    /// Cancellations issued before the crash.
    pub cancelled_requests: u64,
    /// The recovery's own report (snapshot cursor, replayed commands, ...).
    pub recovery: RecoveryReport,
    /// Acknowledged pre-crash jobs missing from the recovered store. A
    /// durable store must report zero.
    pub jobs_lost: u64,
    /// Jobs that re-entered `Running` without an intervening `Retrying`
    /// decision across the spliced watch log — i.e. genuinely executed
    /// twice. A durable store must report zero.
    pub double_executed: u64,
    /// Jobs that took at least one retry (count of distinct jobs with a
    /// `Retrying` event in the spliced log).
    pub retried_jobs: u64,
    /// Jobs that exhausted their retry policy (the dead-letter queue of the
    /// recovered instance after the final drain).
    pub dead_letters: u64,
    /// Terminal tallies over the full run: `(succeeded, failed, cancelled)`.
    pub terminal: (u64, u64, u64),
    /// Jobs not terminal after the final drain (must be zero).
    pub unfinished: u64,
    /// Total watch-log events across both phases.
    pub events_total: u64,
}

impl KillRestartReport {
    /// Whether the run proves the durability contract: nothing lost, nothing
    /// double-executed, everything drained.
    pub fn holds(&self) -> bool {
        self.jobs_lost == 0 && self.double_executed == 0 && self.unfinished == 0
    }
}

impl fmt::Display for KillRestartReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kill-restart report '{}'", self.name)?;
        writeln!(f, "  seed               = {}", self.seed)?;
        writeln!(f, "  pre_crash_jobs     = {}", self.pre_crash_jobs)?;
        writeln!(f, "  post_crash_jobs    = {}", self.post_crash_jobs)?;
        writeln!(f, "  cancelled_requests = {}", self.cancelled_requests)?;
        for line in self.recovery.to_string().lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "  jobs_lost          = {}", self.jobs_lost)?;
        writeln!(f, "  double_executed    = {}", self.double_executed)?;
        writeln!(f, "  retried_jobs       = {}", self.retried_jobs)?;
        writeln!(f, "  dead_letters       = {}", self.dead_letters)?;
        writeln!(
            f,
            "  terminal           = {} succeeded / {} failed / {} cancelled",
            self.terminal.0, self.terminal.1, self.terminal.2
        )?;
        writeln!(f, "  unfinished         = {}", self.unfinished)?;
        writeln!(f, "  events_total       = {}", self.events_total)?;
        write!(
            f,
            "  verdict            = {}",
            if self.holds() { "PASS" } else { "FAIL" }
        )
    }
}

/// The seeded storm generator. Its state is plain driver-side data, so it
/// survives the simulated kill trivially — mirroring a client that keeps
/// submitting after the service restarts.
struct Storm {
    state: u64,
    shots: u64,
    retry: Option<RetryPolicy>,
}

impl Storm {
    fn new(seed: u64, shots: u64, retry: Option<RetryPolicy>) -> Self {
        Storm {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            shots,
            retry,
        }
    }

    fn next(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn request(&mut self, index: u64) -> Result<JobRequest, LoadgenError> {
        let circuit = match self.next() % 3 {
            0 => library::ghz(3 + (self.next() % 3) as usize),
            1 => library::bernstein_vazirani(4, self.next() % 16),
            _ => library::qft(3 + (self.next() % 2) as usize),
        }
        .map_err(|e| LoadgenError::Engine(format!("cannot build storm circuit: {e}")))?;
        let mut builder = JobRequestBuilder::new()
            .with_circuit(&circuit)
            .job_name(format!("storm-{index}"))
            .image_name(format!("qrio/storm:{index}"))
            .priority((self.next() % 3) as u8)
            .shots(self.shots);
        if let Some(policy) = &self.retry {
            builder = builder.retry_policy(*policy);
        }
        let builder = if self.next() % 2 == 0 {
            builder.fidelity_target(0.75)
        } else {
            builder.min_queue()
        };
        builder
            .build()
            .map_err(|e| LoadgenError::Engine(format!("cannot build storm request: {e}")))
    }

    /// Every 9th decision cancels the job right after acknowledgement.
    fn should_cancel(&mut self) -> bool {
        self.next() % 9 == 0
    }
}

fn storm_fleet(scenario: &KillRestartScenario, qrio: &mut Qrio) -> Result<(), LoadgenError> {
    for d in 0..scenario.devices.max(1) {
        let noise = 0.004 + 0.012 * d as f64;
        let readout = 0.01 + 0.02 * d as f64;
        qrio.add_device(
            Backend::uniform(format!("qpu-{d}"), topology::line(8), noise, 0.05)
                .with_uniform_readout_error(readout),
        )
        .map_err(|e| LoadgenError::Engine(format!("cannot add storm device: {e}")))?;
    }
    Ok(())
}

/// Drive one enqueue (plus its cadenced tick and optional cancel) against a
/// live orchestrator. Returns the acknowledged job id.
fn storm_step(
    qrio: &mut Qrio,
    storm: &mut Storm,
    scenario: &KillRestartScenario,
    index: u64,
    cancelled: &mut u64,
) -> Result<JobId, LoadgenError> {
    let request = storm.request(index)?;
    let id = qrio
        .enqueue(&request)
        .map_err(|e| LoadgenError::Engine(format!("storm enqueue failed: {e}")))?;
    if storm.should_cancel() {
        // Racing a cancel against the service loop is part of the storm; a
        // job that already ran simply reports a terminal-state error.
        if qrio.cancel(&id).is_ok() {
            *cancelled += 1;
        }
    }
    if scenario.tick_every > 0 && (index + 1) % scenario.tick_every == 0 {
        qrio.tick();
        // The self-healing sweep real deployments run: flapped (`NotReady`)
        // nodes restart; breaker-cordoned nodes stay down until their
        // probation passes. Journaled, so recovery replays the same sweep.
        qrio.heal_devices()
            .map_err(|e| LoadgenError::Engine(format!("heal sweep failed: {e}")))?;
    }
    Ok(id)
}

/// Run the kill-and-restart scenario over a journal at `journal_path` and
/// return its report. See the module docs for the phases.
///
/// # Errors
///
/// Returns an error when the storm cannot be driven (invalid scenario,
/// journal IO failure) or when recovery itself fails — both distinct from a
/// `FAIL` verdict, which means recovery *succeeded* but broke the contract.
pub fn run_kill_restart(
    scenario: &KillRestartScenario,
    journal_path: &Path,
) -> Result<KillRestartReport, LoadgenError> {
    run_kill_restart_with_log(scenario, journal_path).map(|(report, _)| report)
}

/// Like [`run_kill_restart`], but also return the spliced pre-crash +
/// post-recovery watch log for external auditing (see `qrio-analyzer`).
///
/// # Errors
///
/// Same failure modes as [`run_kill_restart`].
pub fn run_kill_restart_with_log(
    scenario: &KillRestartScenario,
    journal_path: &Path,
) -> Result<(KillRestartReport, Vec<JobEvent>), LoadgenError> {
    let crash_after = scenario.crash_after_jobs.min(scenario.jobs);
    let retry = (scenario.retry_max_attempts > 0).then(|| {
        RetryPolicy::fixed(
            scenario.retry_max_attempts,
            scenario.retry_backoff_ticks.max(1),
        )
    });
    let mut storm = Storm::new(scenario.seed, scenario.shots.max(1), retry);
    let mut cancelled_requests = 0u64;
    let mut acknowledged: Vec<JobId> = Vec::new();

    // --- Phase one: the doomed instance ------------------------------------
    {
        let mut qrio = Qrio::with_config(
            FidelityRankingConfig {
                shots: 16,
                seed: scenario.seed ^ 0xCA11_AB1E,
                shortfall_weight: 100.0,
            },
            scenario.seed ^ 0x51D0_C10D,
        );
        qrio.enable_durability(
            journal_path,
            DurabilityConfig {
                snapshot_every: scenario.snapshot_every,
                ..DurabilityConfig::default()
            },
        )
        .map_err(|e| LoadgenError::Engine(format!("cannot enable durability: {e}")))?;
        storm_fleet(scenario, &mut qrio)?;
        // Chaos knobs, both journaled: recovery replays the same injector
        // (same seed, same decisions) and the same breaker thresholds.
        if scenario.fault_permille > 0 {
            let rate = f64::from(scenario.fault_permille.min(1000)) / 1000.0;
            qrio.configure_faults(Some(FaultInjector {
                transient_rate: rate / 2.0,
                flap_rate: rate / 2.0,
                ..FaultInjector::new(scenario.seed ^ 0xFA_17)
            }))
            .map_err(|e| LoadgenError::Engine(format!("cannot configure faults: {e}")))?;
        }
        if scenario.breakers {
            qrio.configure_breakers(Some(BreakerConfig::default()))
                .map_err(|e| LoadgenError::Engine(format!("cannot configure breakers: {e}")))?;
        }
        for index in 0..crash_after {
            let id = storm_step(
                &mut qrio,
                &mut storm,
                scenario,
                index,
                &mut cancelled_requests,
            )?;
            acknowledged.push(id);
        }
        if let Some(err) = qrio.durability_error() {
            return Err(LoadgenError::Engine(format!(
                "journal poisoned before the crash: {err}"
            )));
        }
        // kill -9: drop with queued, running and finished jobs in flight.
        drop(qrio);
    }

    // --- Phase two: recover and resume -------------------------------------
    let (mut qrio, recovery) = Qrio::recover(journal_path)
        .map_err(|e| LoadgenError::Engine(format!("recovery failed: {e}")))?;

    let jobs_lost = acknowledged
        .iter()
        .filter(|id| qrio.job_status(id).is_err())
        .count() as u64;

    for index in crash_after..scenario.jobs {
        let id = storm_step(
            &mut qrio,
            &mut storm,
            scenario,
            index,
            &mut cancelled_requests,
        )?;
        acknowledged.push(id);
    }
    qrio.run_until_idle();
    if let Some(err) = qrio.durability_error() {
        return Err(LoadgenError::Engine(format!(
            "journal poisoned after recovery: {err}"
        )));
    }

    // --- Verification over the spliced log ----------------------------------
    let log = qrio.watch(0).to_vec();
    // Retry-aware double-execution check: every Running entry must be paid
    // for — the first by admission, later ones by an intervening Retrying
    // decision. A silent re-run (the actual double-execution bug) has no
    // Retrying event between its Running entries.
    let mut may_run: std::collections::BTreeMap<&str, bool> = std::collections::BTreeMap::new();
    let mut violators: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut retried: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for event in &log {
        match event.to {
            JobState::Running => {
                let allowed = may_run.entry(event.job.as_str()).or_insert(true);
                if !*allowed {
                    violators.insert(event.job.as_str());
                }
                *allowed = false;
            }
            JobState::Retrying => {
                may_run.insert(event.job.as_str(), true);
                retried.insert(event.job.as_str());
            }
            _ => {}
        }
    }
    let double_executed = violators.len() as u64;
    let retried_jobs = retried.len() as u64;
    let dead_letters = qrio.dead_letters().len() as u64;

    let mut terminal = (0u64, 0u64, 0u64);
    let mut unfinished = 0u64;
    for id in &acknowledged {
        match qrio.status(id) {
            Ok(JobState::Succeeded) => terminal.0 += 1,
            Ok(JobState::Failed) => terminal.1 += 1,
            Ok(JobState::Cancelled) => terminal.2 += 1,
            Ok(_) => unfinished += 1,
            Err(_) => {} // already counted in jobs_lost
        }
    }

    let report = KillRestartReport {
        name: scenario.name.clone(),
        seed: scenario.seed,
        pre_crash_jobs: crash_after,
        post_crash_jobs: scenario.jobs - crash_after,
        cancelled_requests,
        recovery,
        jobs_lost,
        double_executed,
        retried_jobs,
        dead_letters,
        terminal,
        unfinished,
        events_total: log.len() as u64,
    };
    Ok((report, log))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("qrio-killrestart-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(format!("{name}.qj"))
    }

    #[test]
    fn default_storm_holds_the_contract() {
        let scenario = KillRestartScenario::default();
        let path = scratch("default");
        let report = run_kill_restart(&scenario, &path).unwrap();
        assert!(report.holds(), "contract violated:\n{report}");
        assert_eq!(report.jobs_lost, 0);
        assert_eq!(report.double_executed, 0);
        assert_eq!(
            report.pre_crash_jobs + report.post_crash_jobs,
            scenario.jobs
        );
        assert!(report.events_total > 0);
    }

    #[test]
    fn reports_are_byte_deterministic() {
        let scenario = KillRestartScenario {
            seed: 99,
            jobs: 30,
            crash_after_jobs: 17,
            ..KillRestartScenario::default()
        };
        let a = run_kill_restart(&scenario, &scratch("det-a")).unwrap();
        let b = run_kill_restart(&scenario, &scratch("det-b")).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), b.to_string());
    }

    #[test]
    fn chaotic_storm_with_retries_and_breakers_holds_the_contract() {
        // A third of attempts hit injected faults (transient + flap), every
        // job may retry, breakers are armed — and the crash still lands over
        // a mix of states including jobs parked mid-backoff in `Retrying`.
        let scenario = KillRestartScenario {
            name: "kill-restart-chaos".into(),
            seed: 21,
            jobs: 60,
            crash_after_jobs: 35,
            fault_permille: 330,
            retry_max_attempts: 4,
            retry_backoff_ticks: 3,
            breakers: true,
            ..KillRestartScenario::default()
        };
        let (report, log) = run_kill_restart_with_log(&scenario, &scratch("chaos")).unwrap();
        assert!(report.holds(), "contract violated:\n{report}");
        assert!(
            report.retried_jobs > 0,
            "a 33% fault rate must force retries:\n{report}"
        );
        assert!(
            log.iter().any(|e| e.to == JobState::Retrying),
            "spliced log should show Retrying transitions"
        );
        // Recovery replays the same injector decisions and retry schedule:
        // the whole run is still byte-deterministic.
        let again = run_kill_restart(&scenario, &scratch("chaos-b")).unwrap();
        assert_eq!(report, again);
        assert_eq!(report.to_string(), again.to_string());
    }

    #[test]
    fn crash_at_the_very_start_and_end_are_fine() {
        for (name, crash_after) in [("start", 0), ("end", 12)] {
            let scenario = KillRestartScenario {
                jobs: 12,
                crash_after_jobs: crash_after,
                ..KillRestartScenario::default()
            };
            let report = run_kill_restart(&scenario, &scratch(name)).unwrap();
            assert!(report.holds(), "contract violated:\n{report}");
        }
    }
}
