//! Scenario specifications: the fleet, the tenants and the timeline of
//! calibration-drift and outage events, plus a YAML loader.
//!
//! A scenario is the complete, seedable description of one cloud workload:
//! which devices exist (and how fast/noisy they are), which tenants submit
//! jobs (circuit template, ranking strategy, arrival process) and what goes
//! wrong along the way. Scenarios travel as YAML documents with the same
//! narrow-but-typed parsing discipline as job specs
//! ([`qrio_cluster::yaml`]): the loader understands exactly the schema below
//! and rejects anything else with a line-numbered
//! [`LoadgenError::ScenarioParse`].
//!
//! ```yaml
//! scenario: cloud-small
//! seed: 42
//! durationMs: 60000
//! maxJobs: 2500
//! serviceBaseUs: 20000
//! servicePerShotUs: 400
//! canaryShots: 32
//! faultSeed: 7                # defaults to `seed`
//! breakers: on                # per-device circuit breakers (default: off)
//! breakerConsecutiveFailures: 3
//! breakerFailureRate: 0.6
//! breakerWindow: 8
//! breakerOpenMs: 5000
//! breakerProbeJobs: 2
//! fleet:
//!   - device: aspen
//!     topology: line          # line | ring | grid | tree | star | full
//!     qubits: 12
//!     singleQubitError: 0.001
//!     twoQubitError: 0.01
//!     readoutError: 0.02
//!     speed: 1.0
//! tenants:
//!   - tenant: alice
//!     strategy: fidelity      # fidelity | weighted | min_queue | topology
//!     target: 0.9
//!     circuit: bv             # bv | ghz | grover | random_clifford
//!     qubits: 5
//!     shots: 64
//!     arrival: poisson        # poisson | bursty | diurnal
//!     ratePerSec: 10.0
//!     retryMaxAttempts: 3     # total attempts incl. the first (optional)
//!     retryBackoff: exponential  # fixed | exponential (default: fixed)
//!     retryDelayMs: 500       # first/fixed backoff (default: 1000)
//!     retryMaxDelayMs: 4000   # exponential cap (default: 8 x retryDelayMs)
//!     deadlineMs: 20000       # end-to-end budget per job (optional)
//! events:
//!   - atMs: 30000
//!     kind: drift
//!     device: aspen
//!     errorFactor: 6.0
//!   - atMs: 10000
//!     kind: outage
//!     device: aspen
//!     downMs: 8000
//!   - atMs: 15000
//!     kind: faults            # chaos: turn the fault injector on/off
//!     transientRate: 0.2
//!     calibrationRate: 0.05
//!     slowRate: 0.0
//!     flapRate: 0.05
//! ```
//!
//! A `faults` event reconfigures the fleet-wide
//! [`qrio_cluster::FaultInjector`] rates from
//! that instant on; an event whose rates are all zero switches chaos off
//! again. `faultSeed` decouples the fault stream from the arrival streams so
//! the same workload can replay under different fault schedules.

use std::collections::BTreeMap;

use qrio_backend::{topology, Backend};
use qrio_circuit::{library, Circuit};
use qrio_cluster::StrategySpec;

use crate::arrival::ArrivalProcess;
use crate::error::LoadgenError;

/// The coupling-map family of a simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// A 1-D chain.
    Line,
    /// A 1-D chain with wrap-around.
    Ring,
    /// A near-square 2-D grid.
    Grid,
    /// A binary tree.
    Tree,
    /// A hub-and-spokes star.
    Star,
    /// All-to-all connectivity.
    Full,
}

impl TopologyKind {
    fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "line" => TopologyKind::Line,
            "ring" => TopologyKind::Ring,
            "grid" => TopologyKind::Grid,
            "tree" => TopologyKind::Tree,
            "star" => TopologyKind::Star,
            "full" => TopologyKind::Full,
            _ => return None,
        })
    }
}

/// One device of the simulated fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Device (and cluster node) name.
    pub name: String,
    /// Coupling-map family.
    pub topology: TopologyKind,
    /// Number of physical qubits.
    pub qubits: usize,
    /// Uniform single-qubit gate error.
    pub single_qubit_error: f64,
    /// Uniform two-qubit gate error.
    pub two_qubit_error: f64,
    /// Uniform readout error.
    pub readout_error: f64,
    /// Relative execution speed (service times divide by this; `1.0` =
    /// reference speed).
    pub speed: f64,
}

impl DeviceSpec {
    /// Materialize the vendor backend this spec describes.
    pub fn backend(&self) -> Backend {
        let map = match self.topology {
            TopologyKind::Line => topology::line(self.qubits),
            TopologyKind::Ring => topology::ring(self.qubits),
            TopologyKind::Grid => {
                // Largest divisor pair keeps the qubit count exact; primes
                // degrade to a line-shaped 1×n grid.
                let mut rows = 1;
                let mut d = 1usize;
                while d * d <= self.qubits {
                    if self.qubits % d == 0 {
                        rows = d;
                    }
                    d += 1;
                }
                topology::grid(rows, self.qubits / rows)
            }
            TopologyKind::Tree => topology::binary_tree(self.qubits),
            TopologyKind::Star => topology::star(self.qubits),
            TopologyKind::Full => topology::fully_connected(self.qubits),
        };
        Backend::uniform(
            &self.name,
            map,
            self.single_qubit_error,
            self.two_qubit_error,
        )
        .with_uniform_readout_error(self.readout_error)
    }
}

/// The circuit family a tenant submits. Individual jobs vary deterministically
/// with the job index (BV secrets, Grover marks, Clifford seeds), so a
/// tenant's stream is diverse but replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadCircuit {
    /// Bernstein–Vazirani with a per-job secret (Clifford; stabilizer-fast).
    Bv,
    /// A GHZ state (Clifford).
    Ghz,
    /// Grover search with a per-job marked element (non-Clifford;
    /// statevector engine).
    Grover,
    /// A random Clifford circuit with a per-job seed.
    RandomClifford,
}

impl WorkloadCircuit {
    fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "bv" => WorkloadCircuit::Bv,
            "ghz" => WorkloadCircuit::Ghz,
            "grover" => WorkloadCircuit::Grover,
            "random_clifford" => WorkloadCircuit::RandomClifford,
            _ => return None,
        })
    }
}

/// The ranking strategy a tenant selects for every job it submits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TenantStrategy {
    /// Built-in `"fidelity"` ranking with the given target.
    Fidelity {
        /// Target fidelity in `[0, 1]`.
        target: f64,
    },
    /// Built-in `"weighted"` multi-objective ranking (default weights).
    Weighted {
        /// Target fidelity in `[0, 1]`.
        target: f64,
    },
    /// Built-in `"min_queue"` baseline.
    MinQueue,
    /// Built-in `"topology"` ranking using the uploaded circuit as the
    /// request.
    Topology,
}

impl TenantStrategy {
    /// The [`StrategySpec`] uploaded with each of the tenant's jobs.
    pub fn strategy_spec(&self) -> StrategySpec {
        match *self {
            TenantStrategy::Fidelity { target } => StrategySpec::fidelity(target),
            TenantStrategy::Weighted { target } => StrategySpec::weighted(target, 1.0, 5.0, 1.0),
            TenantStrategy::MinQueue => StrategySpec::min_queue(),
            TenantStrategy::Topology => StrategySpec::new(qrio_cluster::strategy_names::TOPOLOGY),
        }
    }

    /// The registry name of the underlying strategy.
    pub fn name(&self) -> &'static str {
        match self {
            TenantStrategy::Fidelity { .. } => qrio_cluster::strategy_names::FIDELITY,
            TenantStrategy::Weighted { .. } => qrio_cluster::strategy_names::WEIGHTED,
            TenantStrategy::MinQueue => qrio_cluster::strategy_names::MIN_QUEUE,
            TenantStrategy::Topology => qrio_cluster::strategy_names::TOPOLOGY,
        }
    }
}

/// How a tenant's retry backoff grows across attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryBackoffKind {
    /// The same delay before every retry.
    Fixed,
    /// Doubling delay, capped at `retryMaxDelayMs`.
    Exponential,
}

impl RetryBackoffKind {
    fn parse(text: &str) -> Option<Self> {
        Some(match text {
            "fixed" => RetryBackoffKind::Fixed,
            "exponential" => RetryBackoffKind::Exponential,
            _ => return None,
        })
    }
}

/// A tenant's retry policy, in virtual milliseconds. The engine paces
/// re-submissions on its own event heap (virtual-time drivers never call
/// `Qrio::tick`), so delays here are wall-clock-free simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantRetrySpec {
    /// Total execution attempts allowed, the first included.
    pub max_attempts: u32,
    /// Delay growth across attempts.
    pub backoff: RetryBackoffKind,
    /// First (and, for `Fixed`, every) backoff delay in virtual ms.
    pub delay_ms: u64,
    /// Cap on the exponential delay in virtual ms.
    pub max_delay_ms: u64,
}

impl TenantRetrySpec {
    /// The backoff before retry number `attempt` (1-based: the delay between
    /// the first failure and the second attempt is `backoff_ms(1)`).
    /// Deterministic in `(spec, attempt)` so chaos runs replay byte-for-byte.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        match self.backoff {
            RetryBackoffKind::Fixed => self.delay_ms,
            RetryBackoffKind::Exponential => {
                let exp = attempt.saturating_sub(1).min(32);
                self.delay_ms
                    .saturating_mul(1u64 << exp)
                    .min(self.max_delay_ms)
            }
        }
    }
}

/// Circuit-breaker thresholds for the whole fleet, as configured by the
/// scenario's top-level `breakers:`/`breaker*` scalars.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerSettings {
    /// Trip after this many consecutive failures (0 disables the trigger).
    pub consecutive_failures: u32,
    /// Trip when the failure rate over the last `window` outcomes reaches
    /// this fraction (values above 1 disable the trigger).
    pub failure_rate: f64,
    /// Number of recent outcomes the failure rate is computed over.
    pub window: u32,
    /// Virtual ms an open breaker waits before probing the device.
    pub open_ms: u64,
    /// Consecutive probe successes required to close the breaker again.
    pub probe_jobs: u32,
}

impl Default for BreakerSettings {
    fn default() -> Self {
        BreakerSettings {
            consecutive_failures: 3,
            failure_rate: 0.6,
            window: 8,
            open_ms: 5000,
            probe_jobs: 2,
        }
    }
}

/// One tenant: a stream of jobs sharing a circuit family, a strategy and an
/// arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (job names are `"{tenant}-{index}"`).
    pub name: String,
    /// Ranking strategy for every submitted job.
    pub strategy: TenantStrategy,
    /// Circuit family.
    pub circuit: WorkloadCircuit,
    /// Circuit width.
    pub qubits: usize,
    /// Shots per job.
    pub shots: u64,
    /// Arrival process of the tenant's stream.
    pub arrival: ArrivalProcess,
    /// Retry policy for failed attempts (`None` = fail fast).
    pub retry: Option<TenantRetrySpec>,
    /// End-to-end budget per job in virtual ms, measured from arrival; a
    /// retry that cannot start inside the budget is cancelled instead.
    pub deadline_ms: Option<u64>,
}

impl TenantSpec {
    /// The circuit of the tenant's `index`-th job — deterministic in
    /// `(tenant spec, index)`.
    ///
    /// # Errors
    ///
    /// Returns an error when the circuit family cannot be built at the
    /// requested width (e.g. Grover needs `2 <= qubits <= 12`).
    pub fn circuit_for(&self, index: u64) -> Result<Circuit, LoadgenError> {
        let make = || -> Result<Circuit, qrio_circuit::CircuitError> {
            match self.circuit {
                WorkloadCircuit::Bv => {
                    let mask = (1u64 << self.qubits.min(63)) - 1;
                    // Vary the secret per job; avoid the all-zeros secret.
                    let secret = (index.wrapping_mul(0x9E37_79B9) & mask).max(1) & mask;
                    library::bernstein_vazirani(self.qubits, secret.max(1))
                }
                WorkloadCircuit::Ghz => library::ghz(self.qubits),
                WorkloadCircuit::Grover => {
                    let marked = index % (1u64 << self.qubits.min(20));
                    library::grover(self.qubits, marked)
                }
                WorkloadCircuit::RandomClifford => {
                    library::random_clifford_circuit(self.qubits, 6, index)
                }
            }
        };
        make().map_err(|e| {
            LoadgenError::Engine(format!(
                "tenant '{}' cannot build job circuit #{index}: {e}",
                self.name
            ))
        })
    }
}

/// One entry of the scenario's fault/mutation timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// At `at_ms`, multiply every error rate of `device` by `error_factor`
    /// (clamped to valid probability ranges) and push the new calibration to
    /// the meta server and cluster node.
    Drift {
        /// Virtual time of the event.
        at_ms: u64,
        /// Affected device.
        device: String,
        /// Multiplier on the device's error rates (`> 0`; values `< 1` model
        /// a recalibration improving the device).
        error_factor: f64,
    },
    /// At `at_ms`, cordon `device` for `down_ms` virtual milliseconds;
    /// waiting jobs are migrated off it through the scheduler and the
    /// in-flight job (if any) is interrupted as a device-flap fault.
    Outage {
        /// Virtual time of the event.
        at_ms: u64,
        /// Affected device.
        device: String,
        /// Length of the outage window.
        down_ms: u64,
    },
    /// At `at_ms`, set the fleet-wide fault-injection rates (all zero turns
    /// chaos off).
    Faults {
        /// Virtual time of the event.
        at_ms: u64,
        /// Probability of a transient execution error per attempt.
        transient_rate: f64,
        /// Probability of a calibration glitch per attempt.
        calibration_rate: f64,
        /// Probability of a hung/slow job per attempt.
        slow_rate: f64,
        /// Probability of a device flap per attempt.
        flap_rate: f64,
    },
}

impl ScenarioEvent {
    /// Virtual time at which the event fires.
    pub fn at_ms(&self) -> u64 {
        match self {
            ScenarioEvent::Drift { at_ms, .. }
            | ScenarioEvent::Outage { at_ms, .. }
            | ScenarioEvent::Faults { at_ms, .. } => *at_ms,
        }
    }
}

/// A complete, seedable workload scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (reported in `BENCH_cloud.json`).
    pub name: String,
    /// Master seed; every RNG stream in the run derives from it.
    pub seed: u64,
    /// Virtual duration: arrivals stop after this instant (queued work still
    /// drains).
    pub duration_ms: u64,
    /// Hard cap on total submitted jobs across tenants (`0` = unlimited).
    pub max_jobs: u64,
    /// Fixed per-job service overhead (virtual µs) at speed 1.0.
    pub service_base_us: u64,
    /// Additional service time per shot (virtual µs) at speed 1.0.
    pub service_per_shot_us: u64,
    /// Shots used by the meta server's Clifford-canary evaluation.
    pub canary_shots: u64,
    /// Seed of the fault injector's decision stream (defaults to `seed`).
    pub fault_seed: u64,
    /// Circuit-breaker thresholds (`None` = breakers off).
    pub breakers: Option<BreakerSettings>,
    /// The device fleet.
    pub fleet: Vec<DeviceSpec>,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
    /// Drift/outage/faults timeline.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Check cross-field invariants: non-empty fleet and tenant list, unique
    /// names, sane rates, event devices that exist, and at least one device
    /// large enough for every tenant.
    ///
    /// # Errors
    ///
    /// Returns [`LoadgenError::InvalidScenario`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), LoadgenError> {
        let invalid = |message: String| Err(LoadgenError::InvalidScenario(message));
        if self.fleet.is_empty() {
            return invalid("the fleet is empty".into());
        }
        if self.tenants.is_empty() {
            return invalid("no tenants are defined".into());
        }
        if self.duration_ms == 0 {
            return invalid("durationMs must be >= 1".into());
        }
        let mut device_names = std::collections::BTreeSet::new();
        for device in &self.fleet {
            if device.qubits == 0 {
                return invalid(format!("device '{}' has zero qubits", device.name));
            }
            if !(device.speed.is_finite() && device.speed > 0.0) {
                return invalid(format!("device '{}' has non-positive speed", device.name));
            }
            for (label, p) in [
                ("singleQubitError", device.single_qubit_error),
                ("twoQubitError", device.two_qubit_error),
                ("readoutError", device.readout_error),
            ] {
                if !(0.0..=1.0).contains(&p) {
                    return invalid(format!(
                        "device '{}': {label} {p} outside [0, 1]",
                        device.name
                    ));
                }
            }
            if !device_names.insert(device.name.clone()) {
                return invalid(format!("duplicate device name '{}'", device.name));
            }
        }
        let max_qubits = self.fleet.iter().map(|d| d.qubits).max().unwrap_or(0);
        let mut tenant_names = std::collections::BTreeSet::new();
        for tenant in &self.tenants {
            if !tenant_names.insert(tenant.name.clone()) {
                return invalid(format!("duplicate tenant name '{}'", tenant.name));
            }
            if tenant.qubits == 0 || tenant.qubits > max_qubits {
                return invalid(format!(
                    "tenant '{}' needs {} qubits but the largest device has {max_qubits}",
                    tenant.name, tenant.qubits
                ));
            }
            if tenant.shots == 0 {
                return invalid(format!("tenant '{}' has zero shots", tenant.name));
            }
            let rate = tenant.arrival.mean_rate_per_sec();
            if !(rate.is_finite() && rate > 0.0) {
                return invalid(format!(
                    "tenant '{}' has a non-positive arrival rate",
                    tenant.name
                ));
            }
            if let ArrivalProcess::Bursty {
                burst_multiplier, ..
            } = tenant.arrival
            {
                if burst_multiplier < 1.0 {
                    return invalid(format!(
                        "tenant '{}': burstMultiplier must be >= 1",
                        tenant.name
                    ));
                }
            }
            if let ArrivalProcess::Diurnal { amplitude, .. } = tenant.arrival {
                if !(0.0..=1.0).contains(&amplitude) {
                    return invalid(format!(
                        "tenant '{}': amplitude must be in [0, 1]",
                        tenant.name
                    ));
                }
            }
            if let Some(retry) = &tenant.retry {
                if retry.max_attempts == 0 {
                    return invalid(format!(
                        "tenant '{}': retryMaxAttempts must be >= 1",
                        tenant.name
                    ));
                }
                if retry.delay_ms == 0 {
                    return invalid(format!(
                        "tenant '{}': retryDelayMs must be >= 1",
                        tenant.name
                    ));
                }
                if retry.max_delay_ms < retry.delay_ms {
                    return invalid(format!(
                        "tenant '{}': retryMaxDelayMs {} is below retryDelayMs {}",
                        tenant.name, retry.max_delay_ms, retry.delay_ms
                    ));
                }
            }
            if tenant.deadline_ms == Some(0) {
                return invalid(format!("tenant '{}': deadlineMs must be >= 1", tenant.name));
            }
            // The circuit family must actually build at the tenant's width
            // (e.g. Grover has its own qubit bounds) — fail here instead of
            // mid-simulation at the tenant's first arrival.
            if let Err(e) = tenant.circuit_for(0) {
                return invalid(format!(
                    "tenant '{}': circuit family cannot be built at {} qubits ({e})",
                    tenant.name, tenant.qubits
                ));
            }
        }
        if let Some(breakers) = &self.breakers {
            if !(breakers.failure_rate.is_finite() && breakers.failure_rate > 0.0) {
                return invalid("breakerFailureRate must be finite and > 0".into());
            }
            if breakers.window == 0 {
                return invalid("breakerWindow must be >= 1".into());
            }
            if breakers.probe_jobs == 0 {
                return invalid("breakerProbeJobs must be >= 1".into());
            }
        }
        for event in &self.events {
            match event {
                ScenarioEvent::Drift {
                    device,
                    error_factor,
                    ..
                } => {
                    if !device_names.contains(device) {
                        return invalid(format!("event references unknown device '{device}'"));
                    }
                    if !(error_factor.is_finite() && *error_factor > 0.0) {
                        return invalid("drift errorFactor must be finite and > 0".into());
                    }
                }
                ScenarioEvent::Outage { device, .. } => {
                    if !device_names.contains(device) {
                        return invalid(format!("event references unknown device '{device}'"));
                    }
                }
                ScenarioEvent::Faults {
                    transient_rate,
                    calibration_rate,
                    slow_rate,
                    flap_rate,
                    ..
                } => {
                    for (label, rate) in [
                        ("transientRate", *transient_rate),
                        ("calibrationRate", *calibration_rate),
                        ("slowRate", *slow_rate),
                        ("flapRate", *flap_rate),
                    ] {
                        if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                            return invalid(format!("faults event: {label} {rate} outside [0, 1]"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether the scenario exercises the fault-tolerance machinery at all:
    /// any `faults` event, breakers, or a tenant with a retry policy or
    /// deadline. Chaos-free scenarios keep their reports (and JSON) exactly
    /// as before.
    pub fn has_chaos(&self) -> bool {
        self.breakers.is_some()
            || self
                .events
                .iter()
                .any(|e| matches!(e, ScenarioEvent::Faults { .. }))
            || self
                .tenants
                .iter()
                .any(|t| t.retry.is_some() || t.deadline_ms.is_some())
    }

    /// Parse a scenario from its YAML document. See the module docs for the
    /// schema. The parsed scenario is also [`Scenario::validate`]d.
    ///
    /// # Errors
    ///
    /// Returns [`LoadgenError::ScenarioParse`] (with a line number) on
    /// malformed documents and [`LoadgenError::InvalidScenario`] on semantic
    /// violations.
    pub fn from_yaml(text: &str) -> Result<Self, LoadgenError> {
        parse_scenario(text)
    }
}

/// One `- key: value` list item under `fleet:`/`tenants:`/`events:`, with the
/// line number of each field for error messages.
type Item = BTreeMap<String, (String, usize)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Fleet,
    Tenants,
    Events,
}

fn parse_scenario(text: &str) -> Result<Scenario, LoadgenError> {
    let mut name = String::from("unnamed");
    let mut seed = 0u64;
    let mut duration_ms = 0u64;
    let mut max_jobs = 0u64;
    let mut service_base_us = 20_000u64;
    let mut service_per_shot_us = 400u64;
    let mut canary_shots = 32u64;
    let mut fault_seed: Option<u64> = None;
    let mut breakers_on = false;
    let mut breaker_settings = BreakerSettings::default();
    // Line of the first `breaker*` threshold, so thresholds without
    // `breakers: on` are rejected instead of silently inert.
    let mut breaker_scalar_line: Option<usize> = None;

    let mut section = Section::None;
    let mut items: Vec<(Section, Item)> = Vec::new();
    let mut current: Option<Item> = None;
    // Top-level scalars already assigned: a repeat is rejected rather than
    // silently last-wins (same discipline as the job-spec parser).
    let mut seen_scalars: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| LoadgenError::ScenarioParse {
            line: line_no,
            message,
        };
        let (is_item_start, body) = match line.strip_prefix("- ") {
            Some(rest) => (true, rest),
            None => (false, line),
        };
        let Some((key, value)) = body.split_once(':') else {
            return Err(err(format!("unrecognised line '{line}'")));
        };
        let key = key.trim().to_string();
        let value = strip_inline_comment(value).trim().to_string();

        if is_item_start {
            if section == Section::None {
                return Err(err(format!("list item '{line}' outside a section")));
            }
            if let Some(item) = current.take() {
                items.push((section, item));
            }
            let mut item = Item::new();
            item.insert(key, (value, line_no));
            current = Some(item);
            continue;
        }

        if value.is_empty() {
            // Section headers. Flush the previous section's pending item
            // before switching.
            if let Some(item) = current.take() {
                items.push((section, item));
            }
            section = match key.as_str() {
                "fleet" => Section::Fleet,
                "tenants" => Section::Tenants,
                "events" => Section::Events,
                other => return Err(err(format!("unknown section '{other}'"))),
            };
            continue;
        }

        if let Some(item) = current.as_mut() {
            if item.insert(key.clone(), (value, line_no)).is_some() {
                return Err(err(format!("duplicate item field '{key}'")));
            }
            continue;
        }

        // Top-level scalar.
        if !seen_scalars.insert(key.clone()) {
            return Err(err(format!("duplicate field '{key}'")));
        }
        let parse_u64 = |v: &str| {
            v.parse::<u64>()
                .map_err(|_| err(format!("field '{key}': bad integer '{v}'")))
        };
        let parse_f64 = |v: &str| {
            v.parse::<f64>()
                .map_err(|_| err(format!("field '{key}': bad number '{v}'")))
        };
        match key.as_str() {
            "scenario" => name = value,
            "seed" => seed = parse_u64(&value)?,
            "durationMs" => duration_ms = parse_u64(&value)?,
            "maxJobs" => max_jobs = parse_u64(&value)?,
            "serviceBaseUs" => service_base_us = parse_u64(&value)?,
            "servicePerShotUs" => service_per_shot_us = parse_u64(&value)?,
            "canaryShots" => canary_shots = parse_u64(&value)?,
            "faultSeed" => fault_seed = Some(parse_u64(&value)?),
            "breakers" => {
                breakers_on = match value.as_str() {
                    "on" => true,
                    "off" => false,
                    other => return Err(err(format!("field 'breakers': '{other}' (on|off)"))),
                }
            }
            "breakerConsecutiveFailures" => {
                breaker_scalar_line.get_or_insert(line_no);
                breaker_settings.consecutive_failures = parse_u64(&value)? as u32;
            }
            "breakerFailureRate" => {
                breaker_scalar_line.get_or_insert(line_no);
                breaker_settings.failure_rate = parse_f64(&value)?;
            }
            "breakerWindow" => {
                breaker_scalar_line.get_or_insert(line_no);
                breaker_settings.window = parse_u64(&value)? as u32;
            }
            "breakerOpenMs" => {
                breaker_scalar_line.get_or_insert(line_no);
                breaker_settings.open_ms = parse_u64(&value)?;
            }
            "breakerProbeJobs" => {
                breaker_scalar_line.get_or_insert(line_no);
                breaker_settings.probe_jobs = parse_u64(&value)? as u32;
            }
            other => return Err(err(format!("unknown field '{other}'"))),
        }
    }
    if let Some(item) = current.take() {
        items.push((section, item));
    }
    if let (Some(line), false) = (breaker_scalar_line, breakers_on) {
        return Err(LoadgenError::ScenarioParse {
            line,
            message: "breaker thresholds require 'breakers: on'".into(),
        });
    }

    let mut fleet = Vec::new();
    let mut tenants = Vec::new();
    let mut events = Vec::new();
    for (section, item) in items {
        match section {
            Section::Fleet => fleet.push(parse_device(&item)?),
            Section::Tenants => tenants.push(parse_tenant(&item)?),
            Section::Events => events.push(parse_event(&item)?),
            Section::None => unreachable!("items outside sections are rejected above"),
        }
    }

    let scenario = Scenario {
        name,
        seed,
        duration_ms,
        max_jobs,
        service_base_us,
        service_per_shot_us,
        canary_shots,
        fault_seed: fault_seed.unwrap_or(seed),
        breakers: breakers_on.then_some(breaker_settings),
        fleet,
        tenants,
        events,
    };
    scenario.validate()?;
    Ok(scenario)
}

/// Strip an inline `# comment` from a value. Only a `#` preceded by
/// whitespace (or starting the value) opens a comment, so names containing a
/// bare `#` (e.g. `device: qpu#1`) survive intact — matching YAML's rule.
fn strip_inline_comment(value: &str) -> &str {
    let bytes = value.as_bytes();
    for (index, &byte) in bytes.iter().enumerate() {
        if byte == b'#' && (index == 0 || bytes[index - 1].is_ascii_whitespace()) {
            return &value[..index];
        }
    }
    value
}

/// Reject item fields outside `allowed` — a typo'd optional field (or a
/// top-level scalar accidentally indented into a list item) must not be
/// silently dropped onto its default.
fn reject_unknown_fields(item: &Item, kind: &str, allowed: &[&str]) -> Result<(), LoadgenError> {
    for (key, &(_, line)) in item {
        if !allowed.contains(&key.as_str()) {
            return Err(LoadgenError::ScenarioParse {
                line,
                message: format!(
                    "unknown {kind} field '{key}' (expected one of: {})",
                    allowed.join(", ")
                ),
            });
        }
    }
    Ok(())
}

fn field<'a>(item: &'a Item, key: &str) -> Result<(&'a str, usize), LoadgenError> {
    item.get(key)
        .map(|(value, line)| (value.as_str(), *line))
        .ok_or_else(|| {
            let line = item.values().map(|(_, l)| *l).min().unwrap_or(0);
            LoadgenError::ScenarioParse {
                line,
                message: format!("missing field '{key}'"),
            }
        })
}

fn field_or<'a>(item: &'a Item, key: &str, default: &'a str) -> (&'a str, usize) {
    item.get(key)
        .map(|(value, line)| (value.as_str(), *line))
        .unwrap_or((default, 0))
}

fn parse_f64_at(value: &str, line: usize, key: &str) -> Result<f64, LoadgenError> {
    value
        .parse::<f64>()
        .map_err(|_| LoadgenError::ScenarioParse {
            line,
            message: format!("field '{key}': bad number '{value}'"),
        })
}

fn parse_u64_at(value: &str, line: usize, key: &str) -> Result<u64, LoadgenError> {
    value
        .parse::<u64>()
        .map_err(|_| LoadgenError::ScenarioParse {
            line,
            message: format!("field '{key}': bad integer '{value}'"),
        })
}

fn parse_device(item: &Item) -> Result<DeviceSpec, LoadgenError> {
    reject_unknown_fields(
        item,
        "device",
        &[
            "device",
            "topology",
            "qubits",
            "singleQubitError",
            "twoQubitError",
            "readoutError",
            "speed",
        ],
    )?;
    let (name, _) = field(item, "device")?;
    let (topo, topo_line) = field_or(item, "topology", "line");
    let topology = TopologyKind::parse(topo).ok_or_else(|| LoadgenError::ScenarioParse {
        line: topo_line,
        message: format!("unknown topology '{topo}' (line|ring|grid|tree|star|full)"),
    })?;
    let (qubits, q_line) = field(item, "qubits")?;
    let (sq, sq_line) = field_or(item, "singleQubitError", "0.001");
    let (tq, tq_line) = field_or(item, "twoQubitError", "0.01");
    let (ro, ro_line) = field_or(item, "readoutError", "0.02");
    let (speed, sp_line) = field_or(item, "speed", "1.0");
    Ok(DeviceSpec {
        name: name.to_string(),
        topology,
        qubits: parse_u64_at(qubits, q_line, "qubits")? as usize,
        single_qubit_error: parse_f64_at(sq, sq_line, "singleQubitError")?,
        two_qubit_error: parse_f64_at(tq, tq_line, "twoQubitError")?,
        readout_error: parse_f64_at(ro, ro_line, "readoutError")?,
        speed: parse_f64_at(speed, sp_line, "speed")?,
    })
}

fn parse_tenant(item: &Item) -> Result<TenantSpec, LoadgenError> {
    reject_unknown_fields(
        item,
        "tenant",
        &[
            "tenant",
            "strategy",
            "target",
            "circuit",
            "qubits",
            "shots",
            "arrival",
            "ratePerSec",
            "burstMultiplier",
            "meanBurstMs",
            "meanIdleMs",
            "amplitude",
            "periodMs",
            "retryMaxAttempts",
            "retryBackoff",
            "retryDelayMs",
            "retryMaxDelayMs",
            "deadlineMs",
        ],
    )?;
    let (name, _) = field(item, "tenant")?;
    let (strategy_name, strategy_line) = field(item, "strategy")?;
    let (target, t_line) = field_or(item, "target", "0.9");
    let target = parse_f64_at(target, t_line, "target")?;
    let strategy = match strategy_name {
        "fidelity" => TenantStrategy::Fidelity { target },
        "weighted" => TenantStrategy::Weighted { target },
        "min_queue" => TenantStrategy::MinQueue,
        "topology" => TenantStrategy::Topology,
        other => {
            return Err(LoadgenError::ScenarioParse {
                line: strategy_line,
                message: format!(
                    "unknown strategy '{other}' (fidelity|weighted|min_queue|topology)"
                ),
            })
        }
    };
    let (circuit, c_line) = field_or(item, "circuit", "bv");
    let circuit = WorkloadCircuit::parse(circuit).ok_or_else(|| LoadgenError::ScenarioParse {
        line: c_line,
        message: format!("unknown circuit '{circuit}' (bv|ghz|grover|random_clifford)"),
    })?;
    let (qubits, q_line) = field(item, "qubits")?;
    let (shots, s_line) = field_or(item, "shots", "64");
    let (arrival_kind, a_line) = field_or(item, "arrival", "poisson");
    let (rate, r_line) = field(item, "ratePerSec")?;
    let rate = parse_f64_at(rate, r_line, "ratePerSec")?;
    let arrival = match arrival_kind {
        "poisson" => ArrivalProcess::Poisson { rate_per_sec: rate },
        "bursty" => {
            let (mult, m_line) = field_or(item, "burstMultiplier", "8.0");
            let (burst, b_line) = field_or(item, "meanBurstMs", "1000");
            let (idle, i_line) = field_or(item, "meanIdleMs", "4000");
            ArrivalProcess::Bursty {
                base_rate_per_sec: rate,
                burst_multiplier: parse_f64_at(mult, m_line, "burstMultiplier")?,
                mean_burst_ms: parse_u64_at(burst, b_line, "meanBurstMs")?,
                mean_idle_ms: parse_u64_at(idle, i_line, "meanIdleMs")?,
            }
        }
        "diurnal" => {
            let (amp, am_line) = field_or(item, "amplitude", "0.8");
            let (period, p_line) = field_or(item, "periodMs", "20000");
            ArrivalProcess::Diurnal {
                base_rate_per_sec: rate,
                amplitude: parse_f64_at(amp, am_line, "amplitude")?,
                period_ms: parse_u64_at(period, p_line, "periodMs")?,
            }
        }
        other => {
            return Err(LoadgenError::ScenarioParse {
                line: a_line,
                message: format!("unknown arrival '{other}' (poisson|bursty|diurnal)"),
            })
        }
    };
    let retry = match item.get("retryMaxAttempts") {
        Some((attempts, ra_line)) => {
            let max_attempts = parse_u64_at(attempts, *ra_line, "retryMaxAttempts")? as u32;
            let (backoff, b_line) = field_or(item, "retryBackoff", "fixed");
            let backoff =
                RetryBackoffKind::parse(backoff).ok_or_else(|| LoadgenError::ScenarioParse {
                    line: b_line,
                    message: format!("unknown retryBackoff '{backoff}' (fixed|exponential)"),
                })?;
            let (delay, d_line) = field_or(item, "retryDelayMs", "1000");
            let delay_ms = parse_u64_at(delay, d_line, "retryDelayMs")?;
            let default_max = delay_ms.saturating_mul(8).to_string();
            let (max_delay, md_line) = field_or(item, "retryMaxDelayMs", &default_max);
            Some(TenantRetrySpec {
                max_attempts,
                backoff,
                delay_ms,
                max_delay_ms: parse_u64_at(max_delay, md_line, "retryMaxDelayMs")?,
            })
        }
        None => {
            // Stray retry knobs without the policy itself would be silently
            // inert; reject them like any other field mistake.
            for stray in ["retryBackoff", "retryDelayMs", "retryMaxDelayMs"] {
                if let Some((_, line)) = item.get(stray) {
                    return Err(LoadgenError::ScenarioParse {
                        line: *line,
                        message: format!("'{stray}' requires 'retryMaxAttempts'"),
                    });
                }
            }
            None
        }
    };
    let deadline_ms = match item.get("deadlineMs") {
        Some((value, line)) => Some(parse_u64_at(value, *line, "deadlineMs")?),
        None => None,
    };
    Ok(TenantSpec {
        name: name.to_string(),
        strategy,
        circuit,
        qubits: parse_u64_at(qubits, q_line, "qubits")? as usize,
        shots: parse_u64_at(shots, s_line, "shots")?,
        arrival,
        retry,
        deadline_ms,
    })
}

fn parse_event(item: &Item) -> Result<ScenarioEvent, LoadgenError> {
    let (at, at_line) = field(item, "atMs")?;
    let at_ms = parse_u64_at(at, at_line, "atMs")?;
    let (kind, kind_line) = field(item, "kind")?;
    match kind {
        "drift" => {
            reject_unknown_fields(
                item,
                "drift event",
                &["atMs", "kind", "device", "errorFactor"],
            )?;
            let (device, _) = field(item, "device")?;
            let (factor, f_line) = field(item, "errorFactor")?;
            Ok(ScenarioEvent::Drift {
                at_ms,
                device: device.to_string(),
                error_factor: parse_f64_at(factor, f_line, "errorFactor")?,
            })
        }
        "outage" => {
            reject_unknown_fields(item, "outage event", &["atMs", "kind", "device", "downMs"])?;
            let (device, _) = field(item, "device")?;
            let (down, d_line) = field(item, "downMs")?;
            Ok(ScenarioEvent::Outage {
                at_ms,
                device: device.to_string(),
                down_ms: parse_u64_at(down, d_line, "downMs")?,
            })
        }
        "faults" => {
            // Fleet-wide: no `device` field.
            reject_unknown_fields(
                item,
                "faults event",
                &[
                    "atMs",
                    "kind",
                    "transientRate",
                    "calibrationRate",
                    "slowRate",
                    "flapRate",
                ],
            )?;
            let mut rates = [0.0f64; 4];
            for (slot, key) in ["transientRate", "calibrationRate", "slowRate", "flapRate"]
                .into_iter()
                .enumerate()
            {
                let (value, line) = field_or(item, key, "0");
                rates[slot] = parse_f64_at(value, line, key)?;
            }
            Ok(ScenarioEvent::Faults {
                at_ms,
                transient_rate: rates[0],
                calibration_rate: rates[1],
                slow_rate: rates[2],
                flap_rate: rates[3],
            })
        }
        other => Err(LoadgenError::ScenarioParse {
            line: kind_line,
            message: format!("unknown event kind '{other}' (drift|outage|faults)"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
scenario: unit
seed: 9
durationMs: 5000
maxJobs: 100
fleet:
  - device: alpha
    topology: line
    qubits: 8
  - device: beta
    topology: ring
    qubits: 8
    twoQubitError: 0.05
    speed: 2.0
tenants:
  - tenant: alice
    strategy: fidelity
    target: 0.85
    circuit: bv
    qubits: 4
    shots: 32
    arrival: poisson
    ratePerSec: 10.0
  - tenant: bob
    strategy: min_queue
    circuit: ghz
    qubits: 4
    arrival: bursty
    ratePerSec: 4.0
    burstMultiplier: 6.0
events:
  - atMs: 2000
    kind: drift
    device: alpha
    errorFactor: 5.0
  - atMs: 3000
    kind: outage
    device: beta
    downMs: 1000
";

    #[test]
    fn sample_scenario_parses() {
        let scenario = Scenario::from_yaml(SAMPLE).unwrap();
        assert_eq!(scenario.name, "unit");
        assert_eq!(scenario.seed, 9);
        assert_eq!(scenario.fleet.len(), 2);
        assert_eq!(scenario.fleet[1].topology, TopologyKind::Ring);
        assert!((scenario.fleet[1].speed - 2.0).abs() < 1e-12);
        assert_eq!(scenario.tenants.len(), 2);
        assert!(matches!(
            scenario.tenants[0].strategy,
            TenantStrategy::Fidelity { target } if (target - 0.85).abs() < 1e-12
        ));
        assert!(matches!(
            scenario.tenants[1].arrival,
            ArrivalProcess::Bursty { burst_multiplier, .. } if (burst_multiplier - 6.0).abs() < 1e-12
        ));
        assert_eq!(scenario.events.len(), 2);
        assert_eq!(scenario.events[0].at_ms(), 2000);
    }

    #[test]
    fn device_specs_materialize_backends() {
        let scenario = Scenario::from_yaml(SAMPLE).unwrap();
        let alpha = scenario.fleet[0].backend();
        assert_eq!(alpha.name(), "alpha");
        assert_eq!(alpha.num_qubits(), 8);
        let beta = scenario.fleet[1].backend();
        assert!((beta.avg_two_qubit_error() - 0.05).abs() < 1e-12);
        // Every topology family builds.
        for (kind, qubits) in [
            (TopologyKind::Line, 7),
            (TopologyKind::Ring, 7),
            (TopologyKind::Grid, 12),
            (TopologyKind::Grid, 7), // prime degrades to 1×7
            (TopologyKind::Tree, 7),
            (TopologyKind::Star, 7),
            (TopologyKind::Full, 5),
        ] {
            let spec = DeviceSpec {
                name: "d".into(),
                topology: kind,
                qubits,
                single_qubit_error: 0.001,
                two_qubit_error: 0.01,
                readout_error: 0.0,
                speed: 1.0,
            };
            assert_eq!(spec.backend().num_qubits(), qubits, "{kind:?}");
        }
    }

    #[test]
    fn tenant_circuits_vary_deterministically_with_index() {
        let tenant = TenantSpec {
            name: "t".into(),
            strategy: TenantStrategy::MinQueue,
            circuit: WorkloadCircuit::Bv,
            qubits: 5,
            shots: 16,
            arrival: ArrivalProcess::Poisson { rate_per_sec: 1.0 },
            retry: None,
            deadline_ms: None,
        };
        let a = tenant.circuit_for(3).unwrap();
        let b = tenant.circuit_for(3).unwrap();
        let c = tenant.circuit_for(4).unwrap();
        assert_eq!(
            qrio_circuit::qasm::to_qasm(&a),
            qrio_circuit::qasm::to_qasm(&b)
        );
        assert_ne!(
            qrio_circuit::qasm::to_qasm(&a),
            qrio_circuit::qasm::to_qasm(&c)
        );
    }

    const CHAOS_SAMPLE: &str = "\
scenario: chaos-unit
seed: 11
durationMs: 5000
faultSeed: 77
breakers: on
breakerConsecutiveFailures: 2
breakerOpenMs: 1500
fleet:
  - device: alpha
    qubits: 8
tenants:
  - tenant: alice
    strategy: min_queue
    circuit: ghz
    qubits: 4
    ratePerSec: 5.0
    retryMaxAttempts: 4
    retryBackoff: exponential
    retryDelayMs: 200
    retryMaxDelayMs: 900
    deadlineMs: 4000
events:
  - atMs: 1000
    kind: faults
    transientRate: 0.3
    flapRate: 0.1
  - atMs: 3000
    kind: faults
";

    #[test]
    fn chaos_scenario_parses_with_retries_breakers_and_fault_events() {
        let scenario = Scenario::from_yaml(CHAOS_SAMPLE).unwrap();
        assert_eq!(scenario.fault_seed, 77);
        let breakers = scenario.breakers.expect("breakers: on");
        assert_eq!(breakers.consecutive_failures, 2);
        assert_eq!(breakers.open_ms, 1500);
        assert_eq!(breakers.probe_jobs, BreakerSettings::default().probe_jobs);
        let tenant = &scenario.tenants[0];
        let retry = tenant.retry.expect("retry policy");
        assert_eq!(retry.max_attempts, 4);
        assert_eq!(retry.backoff, RetryBackoffKind::Exponential);
        assert_eq!(tenant.deadline_ms, Some(4000));
        assert!(matches!(
            scenario.events[0],
            ScenarioEvent::Faults { transient_rate, flap_rate, calibration_rate, .. }
                if (transient_rate - 0.3).abs() < 1e-12
                    && (flap_rate - 0.1).abs() < 1e-12
                    && calibration_rate == 0.0
        ));
        // The second event turns chaos back off: all rates default to zero.
        assert!(matches!(
            scenario.events[1],
            ScenarioEvent::Faults {
                transient_rate: 0.0,
                flap_rate: 0.0,
                ..
            }
        ));
        assert!(scenario.has_chaos());
        assert!(!Scenario::from_yaml(SAMPLE).unwrap().has_chaos());
        // `faultSeed` defaults to the master seed when absent.
        assert_eq!(Scenario::from_yaml(SAMPLE).unwrap().fault_seed, 9);
    }

    #[test]
    fn tenant_backoff_schedules_are_deterministic() {
        let fixed = TenantRetrySpec {
            max_attempts: 3,
            backoff: RetryBackoffKind::Fixed,
            delay_ms: 250,
            max_delay_ms: 2000,
        };
        assert_eq!(fixed.backoff_ms(1), 250);
        assert_eq!(fixed.backoff_ms(7), 250);
        let expo = TenantRetrySpec {
            max_attempts: 6,
            backoff: RetryBackoffKind::Exponential,
            delay_ms: 100,
            max_delay_ms: 500,
        };
        assert_eq!(
            (1..=4).map(|a| expo.backoff_ms(a)).collect::<Vec<_>>(),
            vec![100, 200, 400, 500]
        );
        // Saturates instead of overflowing on absurd attempt counts.
        assert_eq!(expo.backoff_ms(u32::MAX), 500);
    }

    #[test]
    fn chaos_schema_mistakes_are_rejected() {
        let parse_cases: &[(&str, &str)] = &[
            (
                "breakerOpenMs: 10\n",
                "breaker thresholds require 'breakers: on'",
            ),
            ("breakers: maybe\n", "(on|off)"),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\n    retryDelayMs: 50\n",
                "requires 'retryMaxAttempts'",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\n    retryMaxAttempts: 2\n    retryBackoff: quadratic\n",
                "unknown retryBackoff",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\nevents:\n  - atMs: 1\n    kind: faults\n    device: a\n",
                "unknown faults event field 'device'",
            ),
        ];
        for (doc, needle) in parse_cases {
            match Scenario::from_yaml(doc) {
                Err(LoadgenError::ScenarioParse { message, .. }) => assert!(
                    message.contains(needle),
                    "{doc:?}: expected '{needle}' in '{message}'"
                ),
                other => panic!("{doc:?} must fail to parse, got {other:?}"),
            }
        }
        let base = "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\n";
        let semantic_cases: &[(String, &str)] = &[
            (
                base.replace("ratePerSec: 1.0", "ratePerSec: 1.0\n    retryMaxAttempts: 0"),
                "retryMaxAttempts must be >= 1",
            ),
            (
                base.replace(
                    "ratePerSec: 1.0",
                    "ratePerSec: 1.0\n    retryMaxAttempts: 2\n    retryDelayMs: 100\n    retryMaxDelayMs: 10",
                ),
                "below retryDelayMs",
            ),
            (
                base.replace("ratePerSec: 1.0", "ratePerSec: 1.0\n    deadlineMs: 0"),
                "deadlineMs must be >= 1",
            ),
            (
                format!("{base}events:\n  - atMs: 1\n    kind: faults\n    transientRate: 1.5\n"),
                "outside [0, 1]",
            ),
            (
                format!("breakers: on\nbreakerWindow: 0\n{base}"),
                "breakerWindow must be >= 1",
            ),
        ];
        for (doc, needle) in semantic_cases {
            match Scenario::from_yaml(doc) {
                Err(LoadgenError::InvalidScenario(message)) => assert!(
                    message.contains(needle),
                    "{doc:?}: expected '{needle}' in '{message}'"
                ),
                other => panic!("{doc:?} must fail validation, got {other:?}"),
            }
        }
    }

    #[test]
    fn inline_comments_strip_only_after_whitespace() {
        assert_eq!(strip_inline_comment("5.0  # rate"), "5.0  ");
        assert_eq!(strip_inline_comment("# all comment"), "");
        assert_eq!(strip_inline_comment("qpu#1"), "qpu#1");
        assert_eq!(strip_inline_comment("qpu#1 # note"), "qpu#1 ");
        // End to end: a device name containing '#' survives parsing and can
        // be referenced by events.
        let scenario = Scenario::from_yaml(
            "scenario: hash\nseed: 1\ndurationMs: 10\n\
             fleet:\n  - device: qpu#1\n    qubits: 4  # four qubits\n\
             tenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\n\
             events:\n  - atMs: 1\n    kind: drift\n    device: qpu#1\n    errorFactor: 2.0\n",
        )
        .unwrap();
        assert_eq!(scenario.fleet[0].name, "qpu#1");
        assert_eq!(scenario.fleet[0].qubits, 4);
    }

    #[test]
    fn malformed_documents_surface_line_numbered_errors() {
        let cases: &[(&str, &str)] = &[
            ("nonsense\n", "unrecognised line"),
            ("unknownField: 3\n", "unknown field"),
            ("widgets:\n  - device: x\n", "unknown section"),
            ("- device: x\n", "outside a section"),
            ("seed: notanumber\n", "bad integer"),
            (
                "fleet:\n  - device: a\n    qubits: 4\n    qubits: 5\n",
                "duplicate item field",
            ),
            ("fleet:\n  - topology: line\n", "missing field 'device'"),
            (
                "fleet:\n  - device: a\n    topology: moebius\n    qubits: 4\n",
                "unknown topology",
            ),
            ("seed: 1\nseed: 2\n", "duplicate field 'seed'"),
            (
                "fleet:\n  - device: a\n    qubits: 4\n    sped: 2.0\n",
                "unknown device field 'sped'",
            ),
            (
                // A top-level scalar indented into a list item is rejected,
                // not silently swallowed.
                "fleet:\n  - device: a\n    qubits: 4\n    seed: 99\n",
                "unknown device field 'seed'",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\n    amplitud: 0.9\n",
                "unknown tenant field 'amplitud'",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\nevents:\n  - atMs: 1\n    kind: drift\n    device: a\n    errorFactor: 2.0\n    downMs: 5\n",
                "unknown drift event field 'downMs'",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: psychic\n    qubits: 2\n    ratePerSec: 1.0\n",
                "unknown strategy",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    circuit: mystery\n    qubits: 2\n    ratePerSec: 1.0\n",
                "unknown circuit",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    arrival: psychic\n    ratePerSec: 1.0\n",
                "unknown arrival",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\nevents:\n  - atMs: 1\n    kind: meteor\n    device: a\n",
                "unknown event kind",
            ),
        ];
        for (doc, needle) in cases {
            match Scenario::from_yaml(doc) {
                Err(LoadgenError::ScenarioParse { message, .. }) => assert!(
                    message.contains(needle),
                    "{doc:?}: expected '{needle}' in '{message}'"
                ),
                other => panic!("{doc:?} must fail with a parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn semantic_violations_surface_invalid_scenario() {
        let cases: &[(&str, &str)] = &[
            ("durationMs: 10\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\n", "fleet is empty"),
            ("durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\n", "no tenants"),
            (
                "fleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\n",
                "durationMs",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\n",
                "duplicate device",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 9\n    ratePerSec: 1.0\n",
                "largest device",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 0.0\n",
                "arrival rate",
            ),
            (
                "durationMs: 10\nfleet:\n  - device: a\n    qubits: 4\ntenants:\n  - tenant: t\n    strategy: min_queue\n    qubits: 2\n    ratePerSec: 1.0\nevents:\n  - atMs: 1\n    kind: drift\n    device: ghost\n    errorFactor: 2.0\n",
                "unknown device",
            ),
        ];
        for (doc, needle) in cases {
            match Scenario::from_yaml(doc) {
                Err(LoadgenError::InvalidScenario(message)) => assert!(
                    message.contains(needle),
                    "{doc:?}: expected '{needle}' in '{message}'"
                ),
                other => panic!("{doc:?} must fail validation, got {other:?}"),
            }
        }
    }
}
