//! The [`Circuit`] type: QRIO's circuit intermediate representation.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::CircuitError;
use crate::gate::Gate;

/// One gate application: a [`Gate`] plus the qubits (and classical bits) it
/// acts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    /// Qubit operands, in gate order (control(s) first).
    pub qubits: Vec<usize>,
    /// Classical bit operands (only used by measurements).
    pub clbits: Vec<usize>,
}

impl Instruction {
    /// Create a purely-quantum instruction.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        Instruction {
            gate,
            qubits,
            clbits: Vec::new(),
        }
    }

    /// Whether the instruction is a two-qubit unitary gate.
    pub fn is_two_qubit_gate(&self) -> bool {
        self.gate.is_two_qubit() && !self.gate.is_directive()
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qubits: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, "{} {}", self.gate, qubits.join(","))?;
        if !self.clbits.is_empty() {
            let clbits: Vec<String> = self.clbits.iter().map(|c| format!("c[{c}]")).collect();
            write!(f, " -> {}", clbits.join(","))?;
        }
        Ok(())
    }
}

/// A quantum circuit over a single quantum register and a single classical
/// register, mirroring the flat QASM files users submit to QRIO.
///
/// # Examples
///
/// ```
/// use qrio_circuit::Circuit;
///
/// # fn main() -> Result<(), qrio_circuit::CircuitError> {
/// let mut bell = Circuit::new(2, 2);
/// bell.h(0)?;
/// bell.cx(0, 1)?;
/// bell.measure_all()?;
/// assert_eq!(bell.num_qubits(), 2);
/// assert_eq!(bell.two_qubit_gate_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    name: String,
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Create an empty circuit with `num_qubits` qubits and `num_clbits`
    /// classical bits.
    pub fn new(num_qubits: usize, num_clbits: usize) -> Self {
        Circuit {
            name: String::from("circuit"),
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// Create an empty named circuit.
    pub fn with_name(name: impl Into<String>, num_qubits: usize, num_clbits: usize) -> Self {
        Circuit {
            name: name.into(),
            num_qubits,
            num_clbits,
            instructions: Vec::new(),
        }
    }

    /// The circuit's name (used as the default job name in QRIO).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The instruction list, in program order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions (including barriers and measurements).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    fn check_qubits(&self, qubits: &[usize]) -> Result<(), CircuitError> {
        for &q in qubits {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
        }
        for (i, &a) in qubits.iter().enumerate() {
            for &b in &qubits[i + 1..] {
                if a == b {
                    return Err(CircuitError::DuplicateQubit { qubit: a });
                }
            }
        }
        Ok(())
    }

    fn check_clbits(&self, clbits: &[usize]) -> Result<(), CircuitError> {
        for &c in clbits {
            if c >= self.num_clbits {
                return Err(CircuitError::ClbitOutOfRange {
                    clbit: c,
                    num_clbits: self.num_clbits,
                });
            }
        }
        Ok(())
    }

    /// Append a gate acting on `qubits`.
    ///
    /// # Errors
    ///
    /// Returns an error if a qubit index is out of range, a qubit is repeated,
    /// or the operand count does not match the gate arity.
    pub fn append(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), CircuitError> {
        let arity = gate.num_qubits();
        if arity != 0 && qubits.len() != arity {
            return Err(CircuitError::ArityMismatch {
                gate: gate.name().to_string(),
                expected: arity,
                actual: qubits.len(),
            });
        }
        if gate == Gate::Barrier && qubits.is_empty() {
            return Err(CircuitError::ArityMismatch {
                gate: "barrier".to_string(),
                expected: 1,
                actual: 0,
            });
        }
        self.check_qubits(qubits)?;
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
        Ok(())
    }

    /// Append an already-constructed instruction, validating its operands.
    ///
    /// # Errors
    ///
    /// Returns an error if any operand is out of range.
    pub fn push(&mut self, instruction: Instruction) -> Result<(), CircuitError> {
        self.check_qubits(&instruction.qubits)?;
        self.check_clbits(&instruction.clbits)?;
        self.instructions.push(instruction);
        Ok(())
    }

    // --- Named-gate convenience builders -------------------------------------------------

    /// Apply a Hadamard gate.
    pub fn h(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::H, &[q])
    }

    /// Apply a Pauli-X gate.
    pub fn x(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::X, &[q])
    }

    /// Apply a Pauli-Y gate.
    pub fn y(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::Y, &[q])
    }

    /// Apply a Pauli-Z gate.
    pub fn z(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::Z, &[q])
    }

    /// Apply an S gate.
    pub fn s(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::S, &[q])
    }

    /// Apply an S-dagger gate.
    pub fn sdg(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::Sdg, &[q])
    }

    /// Apply a T gate.
    pub fn t(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::T, &[q])
    }

    /// Apply a T-dagger gate.
    pub fn tdg(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::Tdg, &[q])
    }

    /// Apply an RX rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::RX(theta), &[q])
    }

    /// Apply an RY rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::RY(theta), &[q])
    }

    /// Apply an RZ rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::RZ(theta), &[q])
    }

    /// Apply a `u1` basis gate.
    pub fn u1(&mut self, lambda: f64, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::U1(lambda), &[q])
    }

    /// Apply a `u2` basis gate.
    pub fn u2(&mut self, phi: f64, lambda: f64, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::U2(phi, lambda), &[q])
    }

    /// Apply a `u3` basis gate.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::U3(theta, phi, lambda), &[q])
    }

    /// Apply a CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> Result<(), CircuitError> {
        self.append(Gate::CX, &[control, target])
    }

    /// Apply a controlled-Z gate.
    pub fn cz(&mut self, control: usize, target: usize) -> Result<(), CircuitError> {
        self.append(Gate::CZ, &[control, target])
    }

    /// Apply a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) -> Result<(), CircuitError> {
        self.append(Gate::Swap, &[a, b])
    }

    /// Apply a Toffoli gate.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> Result<(), CircuitError> {
        self.append(Gate::CCX, &[c0, c1, target])
    }

    /// Apply a barrier over the given qubits.
    pub fn barrier(&mut self, qubits: &[usize]) -> Result<(), CircuitError> {
        if qubits.is_empty() {
            let all: Vec<usize> = (0..self.num_qubits).collect();
            self.check_qubits(&all)?;
            self.instructions.push(Instruction::new(Gate::Barrier, all));
            return Ok(());
        }
        self.check_qubits(qubits)?;
        self.instructions
            .push(Instruction::new(Gate::Barrier, qubits.to_vec()));
        Ok(())
    }

    /// Measure qubit `q` into classical bit `c`.
    pub fn measure(&mut self, q: usize, c: usize) -> Result<(), CircuitError> {
        self.check_qubits(&[q])?;
        self.check_clbits(&[c])?;
        self.instructions.push(Instruction {
            gate: Gate::Measure,
            qubits: vec![q],
            clbits: vec![c],
        });
        Ok(())
    }

    /// Measure every qubit `i` into classical bit `i`, growing the classical
    /// register if needed.
    pub fn measure_all(&mut self) -> Result<(), CircuitError> {
        if self.num_clbits < self.num_qubits {
            self.num_clbits = self.num_qubits;
        }
        for q in 0..self.num_qubits {
            self.measure(q, q)?;
        }
        Ok(())
    }

    /// Reset a qubit to |0>.
    pub fn reset(&mut self, q: usize) -> Result<(), CircuitError> {
        self.append(Gate::Reset, &[q])
    }

    // --- Analysis ------------------------------------------------------------------------

    /// Gate counts keyed by gate name (barriers excluded).
    pub fn count_ops(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for inst in &self.instructions {
            if inst.gate == Gate::Barrier {
                continue;
            }
            *counts.entry(inst.gate.name().to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Number of two-qubit unitary gates (the dominant error contributors).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.is_two_qubit_gate())
            .count()
    }

    /// Number of measurement operations.
    pub fn measurement_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate == Gate::Measure)
            .count()
    }

    /// Circuit depth: the length of the longest qubit-dependency chain,
    /// counting unitary gates and measurements but not barriers.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits.max(1)];
        let mut max_depth = 0;
        for inst in &self.instructions {
            if inst.gate == Gate::Barrier {
                // Barriers synchronise their operands without adding depth.
                let m = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0);
                for &q in &inst.qubits {
                    level[q] = m;
                }
                continue;
            }
            let m = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                level[q] = m;
            }
            max_depth = max_depth.max(m);
        }
        max_depth
    }

    /// The set of qubits touched by at least one non-barrier instruction.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for inst in &self.instructions {
            if inst.gate == Gate::Barrier {
                continue;
            }
            for &q in &inst.qubits {
                used[q] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter(|(_, &u)| u)
            .map(|(q, _)| q)
            .collect()
    }

    /// Undirected interaction graph: one edge per pair of qubits that share a
    /// two-qubit gate, with multiplicities collapsed.
    pub fn interaction_graph(&self) -> Vec<(usize, usize)> {
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for inst in &self.instructions {
            if inst.is_two_qubit_gate() {
                let (a, b) = (
                    inst.qubits[0].min(inst.qubits[1]),
                    inst.qubits[0].max(inst.qubits[1]),
                );
                if !edges.contains(&(a, b)) {
                    edges.push((a, b));
                }
            }
        }
        edges.sort_unstable();
        edges
    }

    /// Interaction multigraph: edge -> number of two-qubit gates on that pair.
    pub fn interaction_counts(&self) -> BTreeMap<(usize, usize), usize> {
        let mut counts = BTreeMap::new();
        for inst in &self.instructions {
            if inst.is_two_qubit_gate() {
                let key = (
                    inst.qubits[0].min(inst.qubits[1]),
                    inst.qubits[0].max(inst.qubits[1]),
                );
                *counts.entry(key).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Whether every gate in the circuit is a Clifford operation.
    pub fn is_clifford(&self) -> bool {
        self.instructions.iter().all(|i| i.gate.is_clifford())
    }

    /// Build the *Clifford canary* version of this circuit (paper §3.4.1):
    /// every non-Clifford gate is snapped to its nearest Clifford equivalent
    /// while the two-qubit gate structure is preserved exactly.
    pub fn to_clifford(&self) -> Circuit {
        let mut canary = Circuit::with_name(
            format!("{}_clifford_canary", self.name),
            self.num_qubits,
            self.num_clbits,
        );
        for inst in &self.instructions {
            let gate = match inst.gate {
                // Toffoli is not Clifford; retain its entangling structure with
                // a pair of CX gates between control/target pairs.
                Gate::CCX => {
                    canary.instructions.push(Instruction::new(
                        Gate::CX,
                        vec![inst.qubits[0], inst.qubits[2]],
                    ));
                    canary.instructions.push(Instruction::new(
                        Gate::CX,
                        vec![inst.qubits[1], inst.qubits[2]],
                    ));
                    continue;
                }
                g => g.to_clifford(),
            };
            canary.instructions.push(Instruction {
                gate,
                qubits: inst.qubits.clone(),
                clbits: inst.clbits.clone(),
            });
        }
        canary
    }

    /// Remove all measurement and barrier instructions, returning the unitary
    /// part of the circuit.
    pub fn without_measurements(&self) -> Circuit {
        let mut out = self.clone();
        out.instructions
            .retain(|i| i.gate != Gate::Measure && i.gate != Gate::Barrier);
        out
    }

    /// Whether the circuit ends with a measurement on every active qubit.
    pub fn has_measurements(&self) -> bool {
        self.measurement_count() > 0
    }

    /// Append `other` to this circuit (qubit-for-qubit).
    ///
    /// # Errors
    ///
    /// Returns an error if `other` uses more qubits or classical bits than this
    /// circuit provides.
    pub fn compose(&mut self, other: &Circuit) -> Result<(), CircuitError> {
        if other.num_qubits > self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: other.num_qubits - 1,
                num_qubits: self.num_qubits,
            });
        }
        if other.num_clbits > self.num_clbits {
            return Err(CircuitError::ClbitOutOfRange {
                clbit: other.num_clbits.saturating_sub(1),
                num_clbits: self.num_clbits,
            });
        }
        self.instructions.extend(other.instructions.iter().cloned());
        Ok(())
    }

    /// Return a new circuit with qubits relabelled through `mapping`
    /// (`mapping[virtual] = physical`). The output circuit has `new_size`
    /// qubits.
    ///
    /// # Errors
    ///
    /// Returns an error if the mapping is too short or maps outside
    /// `new_size`.
    pub fn remap_qubits(
        &self,
        mapping: &[usize],
        new_size: usize,
    ) -> Result<Circuit, CircuitError> {
        if mapping.len() < self.num_qubits {
            return Err(CircuitError::InvalidParameter(format!(
                "mapping of length {} cannot relabel {} qubits",
                mapping.len(),
                self.num_qubits
            )));
        }
        let mut out = Circuit::with_name(self.name.clone(), new_size, self.num_clbits);
        for inst in &self.instructions {
            let qubits: Vec<usize> = inst.qubits.iter().map(|&q| mapping[q]).collect();
            for &q in &qubits {
                if q >= new_size {
                    return Err(CircuitError::QubitOutOfRange {
                        qubit: q,
                        num_qubits: new_size,
                    });
                }
            }
            out.instructions.push(Instruction {
                gate: inst.gate,
                qubits,
                clbits: inst.clbits.clone(),
            });
        }
        Ok(out)
    }

    /// The inverse circuit (measurements and barriers are dropped).
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::with_name(
            format!("{}_dg", self.name),
            self.num_qubits,
            self.num_clbits,
        );
        for inst in self.instructions.iter().rev() {
            if inst.gate.is_directive() {
                continue;
            }
            out.instructions
                .push(Instruction::new(inst.gate.inverse(), inst.qubits.clone()));
        }
        out
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Circuit '{}' ({} qubits, {} clbits, depth {})",
            self.name,
            self.num_qubits,
            self.num_clbits,
            self.depth()
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2, 2);
        c.h(0).unwrap();
        c.cx(0, 1).unwrap();
        c.measure_all().unwrap();
        c
    }

    #[test]
    fn build_and_count() {
        let c = bell();
        assert_eq!(c.len(), 4);
        assert_eq!(c.two_qubit_gate_count(), 1);
        assert_eq!(c.measurement_count(), 2);
        assert_eq!(c.count_ops().get("h"), Some(&1));
        assert_eq!(c.count_ops().get("cx"), Some(&1));
    }

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3, 0);
        c.h(0).unwrap();
        c.h(1).unwrap();
        c.cx(0, 1).unwrap();
        c.cx(1, 2).unwrap();
        assert_eq!(c.depth(), 3);
        let empty = Circuit::new(2, 0);
        assert_eq!(empty.depth(), 0);
    }

    #[test]
    fn barrier_synchronises_but_adds_no_depth() {
        // The barrier itself contributes no layer...
        let mut c = Circuit::new(2, 0);
        c.h(0).unwrap();
        c.barrier(&[]).unwrap();
        c.h(0).unwrap();
        assert_eq!(c.depth(), 2);
        // ...but it does synchronise qubits across it.
        let mut c = Circuit::new(2, 0);
        c.h(0).unwrap();
        c.barrier(&[]).unwrap();
        c.h(1).unwrap();
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn out_of_range_is_rejected() {
        let mut c = Circuit::new(2, 1);
        assert!(c.h(2).is_err());
        assert!(c.cx(0, 5).is_err());
        assert!(c.measure(0, 3).is_err());
        assert!(c.cx(1, 1).is_err());
    }

    #[test]
    fn arity_is_checked() {
        let mut c = Circuit::new(3, 0);
        assert!(c.append(Gate::CX, &[0]).is_err());
        assert!(c.append(Gate::H, &[0, 1]).is_err());
    }

    #[test]
    fn interaction_graph_dedups() {
        let mut c = Circuit::new(3, 0);
        c.cx(0, 1).unwrap();
        c.cx(1, 0).unwrap();
        c.cx(1, 2).unwrap();
        assert_eq!(c.interaction_graph(), vec![(0, 1), (1, 2)]);
        assert_eq!(c.interaction_counts()[&(0, 1)], 2);
    }

    #[test]
    fn clifford_canary_preserves_structure() {
        let mut c = Circuit::new(2, 2);
        c.h(0).unwrap();
        c.t(0).unwrap();
        c.rz(0.3, 1).unwrap();
        c.cx(0, 1).unwrap();
        c.measure_all().unwrap();
        assert!(!c.is_clifford());
        let canary = c.to_clifford();
        assert!(canary.is_clifford());
        assert_eq!(canary.two_qubit_gate_count(), c.two_qubit_gate_count());
        assert_eq!(canary.measurement_count(), c.measurement_count());
    }

    #[test]
    fn ccx_canary_keeps_entanglement() {
        let mut c = Circuit::new(3, 0);
        c.ccx(0, 1, 2).unwrap();
        let canary = c.to_clifford();
        assert!(canary.is_clifford());
        assert_eq!(canary.two_qubit_gate_count(), 2);
    }

    #[test]
    fn remap_qubits_relabels() {
        let mut c = Circuit::new(2, 2);
        c.h(0).unwrap();
        c.cx(0, 1).unwrap();
        let mapped = c.remap_qubits(&[3, 1], 4).unwrap();
        assert_eq!(mapped.num_qubits(), 4);
        assert_eq!(mapped.instructions()[1].qubits, vec![3, 1]);
        assert!(c.remap_qubits(&[0], 4).is_err());
        assert!(c.remap_qubits(&[5, 1], 4).is_err());
    }

    #[test]
    fn compose_appends() {
        let mut a = Circuit::new(2, 2);
        a.h(0).unwrap();
        let b = bell();
        a.compose(&b).unwrap();
        assert_eq!(a.len(), 1 + b.len());
        let small = Circuit::new(1, 0);
        let mut tiny = small.clone();
        assert!(tiny.compose(&b).is_err());
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::new(1, 0);
        c.s(0).unwrap();
        c.t(0).unwrap();
        let inv = c.inverse();
        assert_eq!(inv.instructions()[0].gate, Gate::Tdg);
        assert_eq!(inv.instructions()[1].gate, Gate::Sdg);
    }

    #[test]
    fn active_qubits_ignores_idle() {
        let mut c = Circuit::new(5, 0);
        c.h(1).unwrap();
        c.cx(1, 3).unwrap();
        assert_eq!(c.active_qubits(), vec![1, 3]);
    }

    #[test]
    fn measure_all_grows_clbits() {
        let mut c = Circuit::new(3, 0);
        c.h(0).unwrap();
        c.measure_all().unwrap();
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(c.measurement_count(), 3);
    }

    #[test]
    fn without_measurements_strips() {
        let c = bell();
        let u = c.without_measurements();
        assert_eq!(u.measurement_count(), 0);
        assert_eq!(u.len(), 2);
        assert!(c.has_measurements());
        assert!(!u.has_measurements());
    }
}
