//! # qrio-circuit
//!
//! Quantum circuit toolkit for the QRIO quantum-cloud orchestrator
//! (reproduction of *Empowering the Quantum Cloud User with QRIO*, IISWC 2024).
//!
//! This crate provides everything QRIO needs to represent and manipulate the
//! quantum programs users submit:
//!
//! * a gate-level circuit IR ([`Circuit`], [`Gate`], [`Instruction`]),
//! * an OpenQASM 2.0 parser and writer ([`qasm`]) — jobs enter QRIO as QASM
//!   files and are shipped to nodes as QASM text,
//! * the benchmark circuit [`library`] used in the paper's evaluation
//!   (Bernstein–Vazirani, Grover, HSP, repetition code, random circuits) and
//!   the *topology circuit* construction used for topology-based scheduling,
//! * Clifford-canary construction ([`Circuit::to_clifford`]) for the
//!   fidelity-ranking strategy, and
//! * a dependency-graph view ([`dag::DependencyGraph`]) used by the
//!   transpiler's routing pass.
//!
//! # Examples
//!
//! ```
//! use qrio_circuit::{library, qasm};
//!
//! # fn main() -> Result<(), qrio_circuit::CircuitError> {
//! // Build the 10-qubit Bernstein–Vazirani benchmark and ship it as QASM.
//! let bv = library::bernstein_vazirani(10, 0b1101101011)?;
//! let text = qasm::to_qasm(&bv);
//! let parsed = qasm::parse_qasm(&text)?;
//! assert_eq!(parsed.num_qubits(), 10);
//!
//! // Build its Clifford canary for fidelity ranking.
//! let canary = bv.to_clifford();
//! assert!(canary.is_clifford());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
pub mod dag;
mod error;
mod gate;
pub mod library;
pub mod qasm;

pub use circuit::{Circuit, Instruction};
pub use error::CircuitError;
pub use gate::{snap_half_pi, snap_pi, Gate, CLIFFORD_ANGLE_TOLERANCE};
