//! Gate definitions for the QRIO circuit IR.
//!
//! The gate set mirrors what the paper's stack (Qiskit + the `{u1,u2,u3,cx}`
//! basis of Table 2) needs: the common named gates used by the benchmark
//! circuits, the IBM-style parameterized `u1/u2/u3` basis gates, and the
//! two-qubit entangling gates.

use std::f64::consts::{FRAC_PI_2, PI};
use std::fmt;

/// A quantum gate (or circuit directive such as a barrier / measurement).
///
/// Parameterized rotation gates carry their angles in radians.
///
/// # Examples
///
/// ```
/// use qrio_circuit::Gate;
///
/// let g = Gate::RZ(std::f64::consts::PI);
/// assert_eq!(g.num_qubits(), 1);
/// assert!(g.is_parameterized());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = sqrt(Z).
    S,
    /// Inverse phase gate.
    Sdg,
    /// T = fourth root of Z.
    T,
    /// Inverse T.
    Tdg,
    /// Square root of X.
    SX,
    /// Rotation about X.
    RX(f64),
    /// Rotation about Y.
    RY(f64),
    /// Rotation about Z.
    RZ(f64),
    /// IBM basis gate: diagonal phase rotation, `u1(λ) = diag(1, e^{iλ})`.
    U1(f64),
    /// IBM basis gate: `u2(φ, λ)` — a Hadamard-like gate with two phases.
    U2(f64, f64),
    /// IBM basis gate: generic single-qubit unitary `u3(θ, φ, λ)`.
    U3(f64, f64, f64),
    /// Controlled-X (CNOT).
    CX,
    /// Controlled-Z.
    CZ,
    /// Controlled-Y.
    CY,
    /// SWAP of two qubits.
    Swap,
    /// Controlled-phase rotation.
    CP(f64),
    /// Controlled-RZ rotation.
    CRZ(f64),
    /// Toffoli (CCX).
    CCX,
    /// Measurement into a classical bit.
    Measure,
    /// Reset a qubit to |0>.
    Reset,
    /// Barrier directive (acts on any number of qubits, no unitary action).
    Barrier,
}

impl Gate {
    /// Canonical lowercase name of the gate as used in OpenQASM 2.0.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::SX => "sx",
            Gate::RX(_) => "rx",
            Gate::RY(_) => "ry",
            Gate::RZ(_) => "rz",
            Gate::U1(_) => "u1",
            Gate::U2(_, _) => "u2",
            Gate::U3(_, _, _) => "u3",
            Gate::CX => "cx",
            Gate::CZ => "cz",
            Gate::CY => "cy",
            Gate::Swap => "swap",
            Gate::CP(_) => "cp",
            Gate::CRZ(_) => "crz",
            Gate::CCX => "ccx",
            Gate::Measure => "measure",
            Gate::Reset => "reset",
            Gate::Barrier => "barrier",
        }
    }

    /// Number of qubits the gate acts on. Barriers are variadic and report 0.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::CX | Gate::CZ | Gate::CY | Gate::Swap | Gate::CP(_) | Gate::CRZ(_) => 2,
            Gate::CCX => 3,
            Gate::Barrier => 0,
            _ => 1,
        }
    }

    /// Whether this is a two-qubit gate (the dominant noise source on NISQ
    /// devices, and the quantity the QRIO scheduler filters on).
    pub fn is_two_qubit(&self) -> bool {
        self.num_qubits() == 2
    }

    /// Whether the gate is a directive (barrier / measure / reset) rather than
    /// a unitary operation.
    pub fn is_directive(&self) -> bool {
        matches!(self, Gate::Measure | Gate::Reset | Gate::Barrier)
    }

    /// Whether the gate carries continuous parameters.
    pub fn is_parameterized(&self) -> bool {
        !self.params().is_empty()
    }

    /// The gate's parameters (rotation angles, in radians), in declaration order.
    pub fn params(&self) -> Vec<f64> {
        match *self {
            Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::U1(t) | Gate::CP(t) | Gate::CRZ(t) => {
                vec![t]
            }
            Gate::U2(p, l) => vec![p, l],
            Gate::U3(t, p, l) => vec![t, p, l],
            _ => Vec::new(),
        }
    }

    /// Whether the gate belongs to the Clifford group (up to global phase).
    ///
    /// Parameterized rotations are Clifford only when the angle is a multiple
    /// of π/2 (within [`CLIFFORD_ANGLE_TOLERANCE`]).
    pub fn is_clifford(&self) -> bool {
        match *self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::SX
            | Gate::CX
            | Gate::CZ
            | Gate::CY
            | Gate::Swap => true,
            Gate::T | Gate::Tdg | Gate::CCX => false,
            Gate::RX(t) | Gate::RY(t) | Gate::RZ(t) | Gate::U1(t) => is_multiple_of_half_pi(t),
            // Controlled phases are Clifford only at multiples of π (CZ or identity).
            Gate::CP(t) | Gate::CRZ(t) => is_multiple_of_pi(t),
            Gate::U2(p, l) => is_multiple_of_half_pi(p) && is_multiple_of_half_pi(l),
            Gate::U3(t, p, l) => {
                is_multiple_of_half_pi(t) && is_multiple_of_half_pi(p) && is_multiple_of_half_pi(l)
            }
            Gate::Measure | Gate::Reset | Gate::Barrier => true,
        }
    }

    /// Snap the gate to its nearest Clifford equivalent.
    ///
    /// This is the transformation used to build *Clifford canary* circuits
    /// (paper §3.4.1): rotation angles are rounded to the nearest multiple of
    /// π/2 and non-Clifford named gates are replaced by their closest Clifford
    /// counterpart (`T → S`, `Tdg → Sdg`, `CCX → CX`-free barrier-preserving
    /// identity on the target; we conservatively map `CCX` to `CZ` on its last
    /// two qubits at the circuit level, see `Circuit::to_clifford`).
    pub fn to_clifford(&self) -> Gate {
        match *self {
            Gate::T => Gate::S,
            Gate::Tdg => Gate::Sdg,
            Gate::RX(t) => Gate::RX(snap_half_pi(t)),
            Gate::RY(t) => Gate::RY(snap_half_pi(t)),
            Gate::RZ(t) => Gate::RZ(snap_half_pi(t)),
            Gate::U1(t) => Gate::U1(snap_half_pi(t)),
            Gate::CP(t) => Gate::CP(snap_pi(t)),
            Gate::CRZ(t) => Gate::CRZ(snap_pi(t)),
            Gate::U2(p, l) => Gate::U2(snap_half_pi(p), snap_half_pi(l)),
            Gate::U3(t, p, l) => Gate::U3(snap_half_pi(t), snap_half_pi(p), snap_half_pi(l)),
            g => g,
        }
    }

    /// The adjoint (inverse) of the gate, when representable within this gate set.
    pub fn inverse(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::RX(t) => Gate::RX(-t),
            Gate::RY(t) => Gate::RY(-t),
            Gate::RZ(t) => Gate::RZ(-t),
            Gate::U1(t) => Gate::U1(-t),
            Gate::U2(p, l) => Gate::U3(-FRAC_PI_2, -l, -p),
            Gate::U3(t, p, l) => Gate::U3(-t, -l, -p),
            Gate::CP(t) => Gate::CP(-t),
            Gate::CRZ(t) => Gate::CRZ(-t),
            Gate::SX => Gate::U3(-FRAC_PI_2, -FRAC_PI_2, FRAC_PI_2),
            g => g,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let joined: Vec<String> = params.iter().map(|p| format!("{p:.6}")).collect();
            write!(f, "{}({})", self.name(), joined.join(","))
        }
    }
}

/// Tolerance used when deciding whether an angle is a multiple of π/2.
pub const CLIFFORD_ANGLE_TOLERANCE: f64 = 1e-9;

fn is_multiple_of_half_pi(theta: f64) -> bool {
    let ratio = theta / FRAC_PI_2;
    (ratio - ratio.round()).abs() < 1e-6
}

fn is_multiple_of_pi(theta: f64) -> bool {
    let ratio = theta / PI;
    (ratio - ratio.round()).abs() < 1e-6
}

/// Round an angle to the nearest multiple of π/2, normalised to (-2π, 2π).
pub fn snap_half_pi(theta: f64) -> f64 {
    let snapped = (theta / FRAC_PI_2).round() * FRAC_PI_2;
    snapped % (2.0 * PI)
}

/// Round an angle to the nearest multiple of π, normalised to (-2π, 2π).
pub fn snap_pi(theta: f64) -> f64 {
    let snapped = (theta / PI).round() * PI;
    snapped % (2.0 * PI)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_names_are_qasm_compatible() {
        assert_eq!(Gate::H.name(), "h");
        assert_eq!(Gate::CX.name(), "cx");
        assert_eq!(Gate::U3(1.0, 2.0, 3.0).name(), "u3");
    }

    #[test]
    fn qubit_counts() {
        assert_eq!(Gate::H.num_qubits(), 1);
        assert_eq!(Gate::CX.num_qubits(), 2);
        assert_eq!(Gate::CCX.num_qubits(), 3);
        assert!(Gate::CZ.is_two_qubit());
        assert!(!Gate::X.is_two_qubit());
    }

    #[test]
    fn clifford_classification() {
        assert!(Gate::H.is_clifford());
        assert!(Gate::CX.is_clifford());
        assert!(Gate::S.is_clifford());
        assert!(!Gate::T.is_clifford());
        assert!(!Gate::CCX.is_clifford());
        assert!(Gate::RZ(PI).is_clifford());
        assert!(Gate::RZ(FRAC_PI_2).is_clifford());
        assert!(!Gate::RZ(0.3).is_clifford());
    }

    #[test]
    fn to_clifford_snaps_angles() {
        let g = Gate::RZ(0.3).to_clifford();
        assert!(g.is_clifford());
        assert_eq!(Gate::T.to_clifford(), Gate::S);
        assert_eq!(Gate::Tdg.to_clifford(), Gate::Sdg);
        // Already-Clifford gates are untouched.
        assert_eq!(Gate::H.to_clifford(), Gate::H);
    }

    #[test]
    fn params_roundtrip() {
        assert_eq!(Gate::U3(0.1, 0.2, 0.3).params(), vec![0.1, 0.2, 0.3]);
        assert_eq!(Gate::U2(0.1, 0.2).params(), vec![0.1, 0.2]);
        assert!(Gate::X.params().is_empty());
        assert!(Gate::RX(1.0).is_parameterized());
        assert!(!Gate::H.is_parameterized());
    }

    #[test]
    fn inverse_of_inverse_is_identityish() {
        assert_eq!(Gate::S.inverse(), Gate::Sdg);
        assert_eq!(Gate::S.inverse().inverse(), Gate::S);
        assert_eq!(Gate::RZ(0.7).inverse(), Gate::RZ(-0.7));
    }

    #[test]
    fn directives() {
        assert!(Gate::Measure.is_directive());
        assert!(Gate::Barrier.is_directive());
        assert!(!Gate::H.is_directive());
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(format!("{}", Gate::H), "h");
        assert!(format!("{}", Gate::RZ(1.5)).starts_with("rz(1.5"));
    }

    #[test]
    fn snap_half_pi_rounds() {
        assert!((snap_half_pi(1.6) - FRAC_PI_2).abs() < 1e-9);
        assert!((snap_half_pi(0.1)).abs() < 1e-9);
        assert!((snap_half_pi(3.0) - PI).abs() < 1e-9);
    }

    #[test]
    fn controlled_phase_clifford_rule() {
        assert!(Gate::CP(PI).is_clifford());
        assert!(!Gate::CP(FRAC_PI_2).is_clifford());
        assert!(Gate::CRZ(PI).is_clifford());
        assert!(!Gate::CRZ(0.4).is_clifford());
        assert!(Gate::CP(FRAC_PI_2).to_clifford().is_clifford());
        assert!(Gate::CRZ(2.0).to_clifford().is_clifford());
    }
}
