//! OpenQASM 2.0 support.
//!
//! QRIO users submit their jobs as QASM files (paper §3.2); the master server
//! then ships the QASM text inside the container image. This module provides a
//! parser for the subset of OpenQASM 2.0 emitted by common toolchains (single
//! flat `qreg`/`creg` pair, `qelib1.inc` gates, measurements and barriers) and
//! a writer that round-trips [`Circuit`](crate::Circuit) values.

mod lexer;
mod parser;
mod writer;

pub use parser::parse_qasm;
pub use writer::to_qasm;
