//! OpenQASM 2.0 emission for [`Circuit`] values.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Serialize a circuit as an OpenQASM 2.0 program with a single `q` quantum
/// register and a single `c` classical register.
///
/// The output can be parsed back with [`parse_qasm`](super::parse_qasm); the
/// round trip preserves the instruction sequence.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qrio_circuit::CircuitError> {
/// let mut c = qrio_circuit::Circuit::new(1, 1);
/// c.h(0)?;
/// c.measure(0, 0)?;
/// let qasm = qrio_circuit::qasm::to_qasm(&c);
/// assert!(qasm.contains("h q[0];"));
/// let back = qrio_circuit::qasm::parse_qasm(&qasm)?;
/// assert_eq!(back.len(), c.len());
/// # Ok(())
/// # }
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits().max(1));
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }
    for inst in circuit.instructions() {
        match inst.gate {
            Gate::Measure => {
                let _ = writeln!(
                    out,
                    "measure q[{}] -> c[{}];",
                    inst.qubits[0], inst.clbits[0]
                );
            }
            Gate::Barrier => {
                let operands: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
                let _ = writeln!(out, "barrier {};", operands.join(","));
            }
            Gate::Reset => {
                let _ = writeln!(out, "reset q[{}];", inst.qubits[0]);
            }
            gate => {
                let params = gate.params();
                let operands: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
                if params.is_empty() {
                    let _ = writeln!(out, "{} {};", gate.name(), operands.join(","));
                } else {
                    let params: Vec<String> = params.iter().map(|p| format!("{p:.12}")).collect();
                    let _ = writeln!(
                        out,
                        "{}({}) {};",
                        gate.name(),
                        params.join(","),
                        operands.join(",")
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::parse_qasm;
    use super::*;

    #[test]
    fn roundtrip_preserves_instructions() {
        let mut c = Circuit::new(3, 3);
        c.h(0).unwrap();
        c.t(1).unwrap();
        c.rz(0.37, 2).unwrap();
        c.cx(0, 1).unwrap();
        c.ccx(0, 1, 2).unwrap();
        c.barrier(&[]).unwrap();
        c.measure_all().unwrap();
        let qasm = to_qasm(&c);
        let back = parse_qasm(&qasm).unwrap();
        assert_eq!(back.len(), c.len());
        assert_eq!(back.num_qubits(), 3);
        assert_eq!(back.count_ops(), c.count_ops());
    }

    #[test]
    fn header_is_present() {
        let qasm = to_qasm(&Circuit::new(2, 0));
        assert!(qasm.starts_with("OPENQASM 2.0;"));
        assert!(qasm.contains("qreg q[2];"));
        assert!(!qasm.contains("creg"));
    }

    #[test]
    fn parameters_survive_roundtrip() {
        let mut c = Circuit::new(1, 0);
        c.u3(0.123456, -0.5, 3.0, 0).unwrap();
        let back = parse_qasm(&to_qasm(&c)).unwrap();
        match back.instructions()[0].gate {
            Gate::U3(t, p, l) => {
                assert!((t - 0.123456).abs() < 1e-9);
                assert!((p + 0.5).abs() < 1e-9);
                assert!((l - 3.0).abs() < 1e-9);
            }
            ref g => panic!("unexpected gate {g:?}"),
        }
    }
}
