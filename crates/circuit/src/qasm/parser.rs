//! Parser for the OpenQASM 2.0 subset used by QRIO job submissions.

use std::collections::BTreeMap;
use std::f64::consts::PI;

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Gate;

use super::lexer::{tokenize, Token, TokenKind};

/// Parse an OpenQASM 2.0 source into a [`Circuit`].
///
/// Supported constructs: the `OPENQASM 2.0;` header, `include` statements
/// (ignored), any number of `qreg`/`creg` declarations (flattened into one
/// register each), the `qelib1.inc` gate names QRIO's circuits use, `measure`,
/// `barrier` and `reset`. Parameter expressions may use `pi`, unary minus and
/// the `+ - * /` operators.
///
/// # Errors
///
/// Returns [`CircuitError::QasmParse`] with a line number when the source is
/// malformed, and index errors when operands fall outside declared registers.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), qrio_circuit::CircuitError> {
/// let qasm = r#"
/// OPENQASM 2.0;
/// include "qelib1.inc";
/// qreg q[2];
/// creg c[2];
/// h q[0];
/// cx q[0],q[1];
/// measure q -> c;
/// "#;
/// let circuit = qrio_circuit::qasm::parse_qasm(qasm)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.two_qubit_gate_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse_qasm(source: &str) -> Result<Circuit, CircuitError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).parse()
}

struct Register {
    offset: usize,
    size: usize,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    qregs: BTreeMap<String, Register>,
    cregs: BTreeMap<String, Register>,
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<(Gate, Vec<usize>, Vec<usize>)>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            qregs: BTreeMap::new(),
            cregs: BTreeMap::new(),
            num_qubits: 0,
            num_clbits: 0,
            instructions: Vec::new(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err(&self, message: impl Into<String>) -> CircuitError {
        CircuitError::QasmParse {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), CircuitError> {
        match self.next() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(CircuitError::QasmParse {
                line: t.line,
                message: format!("expected {kind:?}, found {:?}", t.kind),
            }),
            None => Err(self.err(format!("expected {kind:?}, found end of input"))),
        }
    }

    fn parse(mut self) -> Result<Circuit, CircuitError> {
        while let Some(token) = self.peek().cloned() {
            match token.kind {
                TokenKind::Ident(ref word) => match word.as_str() {
                    "OPENQASM" => {
                        self.next();
                        // Version number.
                        self.next();
                        self.expect(&TokenKind::Semicolon)?;
                    }
                    "include" => {
                        self.next();
                        self.next(); // filename string
                        self.expect(&TokenKind::Semicolon)?;
                    }
                    "qreg" => self.parse_reg(true)?,
                    "creg" => self.parse_reg(false)?,
                    "measure" => self.parse_measure()?,
                    "barrier" => self.parse_barrier()?,
                    "reset" => self.parse_reset()?,
                    _ => self.parse_gate()?,
                },
                TokenKind::Semicolon => {
                    self.next();
                }
                _ => return Err(self.err(format!("unexpected token {:?}", token.kind))),
            }
        }
        let mut circuit = Circuit::new(self.num_qubits, self.num_clbits);
        for (gate, qubits, clbits) in self.instructions {
            if gate == Gate::Measure {
                circuit.measure(qubits[0], clbits[0])?;
            } else if gate == Gate::Barrier {
                circuit.barrier(&qubits)?;
            } else {
                circuit.append(gate, &qubits)?;
            }
        }
        Ok(circuit)
    }

    fn parse_reg(&mut self, quantum: bool) -> Result<(), CircuitError> {
        self.next(); // qreg/creg keyword
        let name = match self.next() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => name,
            _ => return Err(self.err("expected register name")),
        };
        self.expect(&TokenKind::LBracket)?;
        let size = match self.next() {
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) if n >= 1.0 => n as usize,
            _ => return Err(self.err("expected register size")),
        };
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Semicolon)?;
        if quantum {
            self.qregs.insert(
                name,
                Register {
                    offset: self.num_qubits,
                    size,
                },
            );
            self.num_qubits += size;
        } else {
            self.cregs.insert(
                name,
                Register {
                    offset: self.num_clbits,
                    size,
                },
            );
            self.num_clbits += size;
        }
        Ok(())
    }

    /// Parse a register operand: either `name[idx]` (one bit) or `name`
    /// (the whole register).
    fn parse_operand(&mut self, quantum: bool) -> Result<Vec<usize>, CircuitError> {
        let name = match self.next() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => name,
            other => return Err(self.err(format!("expected register operand, found {other:?}"))),
        };
        let reg = if quantum {
            self.qregs.get(&name)
        } else {
            self.cregs.get(&name)
        };
        let reg = match reg {
            Some(r) => r,
            None => return Err(self.err(format!("unknown register '{name}'"))),
        };
        let (offset, size) = (reg.offset, reg.size);
        if matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::LBracket,
                ..
            })
        ) {
            self.next();
            let idx = match self.next() {
                Some(Token {
                    kind: TokenKind::Number(n),
                    ..
                }) => n as usize,
                _ => return Err(self.err("expected index")),
            };
            self.expect(&TokenKind::RBracket)?;
            if idx >= size {
                return Err(self.err(format!("index {idx} out of range for register '{name}'")));
            }
            Ok(vec![offset + idx])
        } else {
            Ok((offset..offset + size).collect())
        }
    }

    fn parse_measure(&mut self) -> Result<(), CircuitError> {
        self.next(); // measure
        let qubits = self.parse_operand(true)?;
        self.expect(&TokenKind::Arrow)?;
        let clbits = self.parse_operand(false)?;
        self.expect(&TokenKind::Semicolon)?;
        if qubits.len() != clbits.len() {
            return Err(self.err("measure operands have mismatched sizes"));
        }
        for (q, c) in qubits.into_iter().zip(clbits) {
            self.instructions.push((Gate::Measure, vec![q], vec![c]));
        }
        Ok(())
    }

    fn parse_barrier(&mut self) -> Result<(), CircuitError> {
        self.next(); // barrier
        let mut qubits = Vec::new();
        loop {
            qubits.extend(self.parse_operand(true)?);
            match self.next() {
                Some(Token {
                    kind: TokenKind::Comma,
                    ..
                }) => continue,
                Some(Token {
                    kind: TokenKind::Semicolon,
                    ..
                }) => break,
                _ => return Err(self.err("expected ',' or ';' in barrier")),
            }
        }
        self.instructions.push((Gate::Barrier, qubits, Vec::new()));
        Ok(())
    }

    fn parse_reset(&mut self) -> Result<(), CircuitError> {
        self.next(); // reset
        let qubits = self.parse_operand(true)?;
        self.expect(&TokenKind::Semicolon)?;
        for q in qubits {
            self.instructions.push((Gate::Reset, vec![q], Vec::new()));
        }
        Ok(())
    }

    fn parse_gate(&mut self) -> Result<(), CircuitError> {
        let name = match self.next() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => name,
            other => return Err(self.err(format!("expected gate name, found {other:?}"))),
        };
        let mut params = Vec::new();
        if matches!(
            self.peek(),
            Some(Token {
                kind: TokenKind::LParen,
                ..
            })
        ) {
            self.next();
            loop {
                params.push(self.parse_expr()?);
                match self.next() {
                    Some(Token {
                        kind: TokenKind::Comma,
                        ..
                    }) => continue,
                    Some(Token {
                        kind: TokenKind::RParen,
                        ..
                    }) => break,
                    _ => return Err(self.err("expected ',' or ')' in parameter list")),
                }
            }
        }
        // Operands: comma-separated register operands, terminated by ';'.
        let mut operands: Vec<Vec<usize>> = Vec::new();
        loop {
            operands.push(self.parse_operand(true)?);
            match self.next() {
                Some(Token {
                    kind: TokenKind::Comma,
                    ..
                }) => continue,
                Some(Token {
                    kind: TokenKind::Semicolon,
                    ..
                }) => break,
                _ => return Err(self.err("expected ',' or ';' after gate operands")),
            }
        }
        let gate = self.resolve_gate(&name, &params)?;
        // Broadcast whole-register operands (e.g. `h q;`).
        let max_len = operands.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..max_len {
            let qubits: Vec<usize> = operands
                .iter()
                .map(|op| {
                    if op.len() == 1 {
                        op[0]
                    } else {
                        op[i.min(op.len() - 1)]
                    }
                })
                .collect();
            self.instructions.push((gate, qubits, Vec::new()));
        }
        Ok(())
    }

    fn resolve_gate(&self, name: &str, params: &[f64]) -> Result<Gate, CircuitError> {
        let need = |n: usize| -> Result<(), CircuitError> {
            if params.len() != n {
                Err(CircuitError::QasmParse {
                    line: self.line(),
                    message: format!("gate '{name}' expects {n} parameters, got {}", params.len()),
                })
            } else {
                Ok(())
            }
        };
        let gate = match name {
            "id" | "i" => Gate::I,
            "x" => Gate::X,
            "y" => Gate::Y,
            "z" => Gate::Z,
            "h" => Gate::H,
            "s" => Gate::S,
            "sdg" => Gate::Sdg,
            "t" => Gate::T,
            "tdg" => Gate::Tdg,
            "sx" => Gate::SX,
            "rx" => {
                need(1)?;
                Gate::RX(params[0])
            }
            "ry" => {
                need(1)?;
                Gate::RY(params[0])
            }
            "rz" => {
                need(1)?;
                Gate::RZ(params[0])
            }
            "u1" | "p" | "phase" => {
                need(1)?;
                Gate::U1(params[0])
            }
            "u2" => {
                need(2)?;
                Gate::U2(params[0], params[1])
            }
            "u3" | "u" => {
                need(3)?;
                Gate::U3(params[0], params[1], params[2])
            }
            "cx" | "CX" | "cnot" => Gate::CX,
            "cz" => Gate::CZ,
            "cy" => Gate::CY,
            "swap" => Gate::Swap,
            "cp" | "cu1" => {
                need(1)?;
                Gate::CP(params[0])
            }
            "crz" => {
                need(1)?;
                Gate::CRZ(params[0])
            }
            "ccx" | "toffoli" => Gate::CCX,
            other => {
                return Err(CircuitError::QasmParse {
                    line: self.line(),
                    message: format!("unsupported gate '{other}'"),
                })
            }
        };
        Ok(gate)
    }

    // Expression grammar: expr := term (('+'|'-') term)*
    //                     term := factor (('*'|'/') factor)*
    //                     factor := ['-'] (number | 'pi' | '(' expr ')')
    fn parse_expr(&mut self) -> Result<f64, CircuitError> {
        let mut value = self.parse_term()?;
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::Plus) => {
                    self.next();
                    value += self.parse_term()?;
                }
                Some(TokenKind::Minus) => {
                    self.next();
                    value -= self.parse_term()?;
                }
                _ => break,
            }
        }
        Ok(value)
    }

    fn parse_term(&mut self) -> Result<f64, CircuitError> {
        let mut value = self.parse_factor()?;
        loop {
            match self.peek().map(|t| t.kind.clone()) {
                Some(TokenKind::Star) => {
                    self.next();
                    value *= self.parse_factor()?;
                }
                Some(TokenKind::Slash) => {
                    self.next();
                    let divisor = self.parse_factor()?;
                    if divisor == 0.0 {
                        return Err(self.err("division by zero in parameter expression"));
                    }
                    value /= divisor;
                }
                _ => break,
            }
        }
        Ok(value)
    }

    fn parse_factor(&mut self) -> Result<f64, CircuitError> {
        match self.next() {
            Some(Token {
                kind: TokenKind::Minus,
                ..
            }) => Ok(-self.parse_factor()?),
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => Ok(n),
            Some(Token {
                kind: TokenKind::Ident(ref word),
                ..
            }) if word == "pi" => Ok(PI),
            Some(Token {
                kind: TokenKind::LParen,
                ..
            }) => {
                let value = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(value)
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BELL: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q -> c;
"#;

    #[test]
    fn parses_bell() {
        let c = parse_qasm(BELL).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_clbits(), 2);
        assert_eq!(c.two_qubit_gate_count(), 1);
        assert_eq!(c.measurement_count(), 2);
    }

    #[test]
    fn parses_parameter_expressions() {
        let src = "qreg q[1]; rz(pi/2) q[0]; u3(pi, -pi/4, 2*pi) q[0]; u1(0.5 + 0.25) q[0];";
        let c = parse_qasm(src).unwrap();
        match c.instructions()[0].gate {
            Gate::RZ(theta) => assert!((theta - PI / 2.0).abs() < 1e-12),
            ref g => panic!("unexpected gate {g:?}"),
        }
        match c.instructions()[2].gate {
            Gate::U1(l) => assert!((l - 0.75).abs() < 1e-12),
            ref g => panic!("unexpected gate {g:?}"),
        }
    }

    #[test]
    fn broadcasts_whole_register() {
        let src = "qreg q[3]; h q;";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn barrier_and_reset() {
        let src = "qreg q[2]; barrier q[0], q[1]; reset q[0];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rejects_unknown_gate() {
        assert!(parse_qasm("qreg q[1]; frobnicate q[0];").is_err());
    }

    #[test]
    fn rejects_bad_index() {
        assert!(parse_qasm("qreg q[2]; h q[5];").is_err());
        assert!(parse_qasm("qreg q[2]; creg c[1]; measure q -> c;").is_err());
    }

    #[test]
    fn rejects_unknown_register() {
        assert!(parse_qasm("qreg q[2]; h r[0];").is_err());
    }

    #[test]
    fn multiple_registers_are_flattened() {
        let src = "qreg a[2]; qreg b[2]; cx a[1], b[0];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.instructions()[0].qubits, vec![1, 2]);
    }

    #[test]
    fn parameter_arity_checked() {
        assert!(parse_qasm("qreg q[1]; rz() q[0];").is_err());
        assert!(parse_qasm("qreg q[1]; u3(1.0) q[0];").is_err());
    }
}
