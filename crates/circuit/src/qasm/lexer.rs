//! A minimal tokenizer for OpenQASM 2.0 sources.

use crate::error::CircuitError;

/// A lexical token with its source line (1-based) for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// The kinds of tokens the QASM subset uses.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    Ident(String),
    Number(f64),
    StringLit(String),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Arrow,
    Plus,
    Minus,
    Star,
    Slash,
}

/// Tokenize a QASM source string.
///
/// Comments (`// ...`) are skipped. Numbers are parsed as `f64`; the special
/// identifier `pi` is handled by the parser, not the lexer.
pub(crate) fn tokenize(source: &str) -> Result<Vec<Token>, CircuitError> {
    let mut tokens = Vec::new();
    for (line_idx, raw_line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let line = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let c = bytes[i] as char;
            match c {
                ' ' | '\t' | '\r' => {
                    i += 1;
                }
                '(' => {
                    tokens.push(Token {
                        kind: TokenKind::LParen,
                        line: line_no,
                    });
                    i += 1;
                }
                ')' => {
                    tokens.push(Token {
                        kind: TokenKind::RParen,
                        line: line_no,
                    });
                    i += 1;
                }
                '[' => {
                    tokens.push(Token {
                        kind: TokenKind::LBracket,
                        line: line_no,
                    });
                    i += 1;
                }
                ']' => {
                    tokens.push(Token {
                        kind: TokenKind::RBracket,
                        line: line_no,
                    });
                    i += 1;
                }
                ',' => {
                    tokens.push(Token {
                        kind: TokenKind::Comma,
                        line: line_no,
                    });
                    i += 1;
                }
                ';' => {
                    tokens.push(Token {
                        kind: TokenKind::Semicolon,
                        line: line_no,
                    });
                    i += 1;
                }
                '+' => {
                    tokens.push(Token {
                        kind: TokenKind::Plus,
                        line: line_no,
                    });
                    i += 1;
                }
                '*' => {
                    tokens.push(Token {
                        kind: TokenKind::Star,
                        line: line_no,
                    });
                    i += 1;
                }
                '/' => {
                    tokens.push(Token {
                        kind: TokenKind::Slash,
                        line: line_no,
                    });
                    i += 1;
                }
                '-' => {
                    if i + 1 < bytes.len() && bytes[i + 1] as char == '>' {
                        tokens.push(Token {
                            kind: TokenKind::Arrow,
                            line: line_no,
                        });
                        i += 2;
                    } else {
                        tokens.push(Token {
                            kind: TokenKind::Minus,
                            line: line_no,
                        });
                        i += 1;
                    }
                }
                '"' => {
                    let start = i + 1;
                    let mut end = start;
                    while end < bytes.len() && bytes[end] as char != '"' {
                        end += 1;
                    }
                    if end >= bytes.len() {
                        return Err(CircuitError::QasmParse {
                            line: line_no,
                            message: "unterminated string literal".into(),
                        });
                    }
                    tokens.push(Token {
                        kind: TokenKind::StringLit(line[start..end].to_string()),
                        line: line_no,
                    });
                    i = end + 1;
                }
                c if c.is_ascii_digit() || c == '.' => {
                    let start = i;
                    let mut end = i;
                    while end < bytes.len() {
                        let ch = bytes[end] as char;
                        let sign_after_exponent = (ch == '+' || ch == '-')
                            && end > start
                            && matches!(bytes[end - 1] as char, 'e' | 'E');
                        if ch.is_ascii_digit()
                            || ch == '.'
                            || ch == 'e'
                            || ch == 'E'
                            || sign_after_exponent
                        {
                            end += 1;
                        } else {
                            break;
                        }
                    }
                    let text = &line[start..end];
                    let value: f64 = text.parse().map_err(|_| CircuitError::QasmParse {
                        line: line_no,
                        message: format!("invalid number '{text}'"),
                    })?;
                    tokens.push(Token {
                        kind: TokenKind::Number(value),
                        line: line_no,
                    });
                    i = end;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut end = i;
                    while end < bytes.len() {
                        let ch = bytes[end] as char;
                        if ch.is_ascii_alphanumeric() || ch == '_' || ch == '.' {
                            end += 1;
                        } else {
                            break;
                        }
                    }
                    tokens.push(Token {
                        kind: TokenKind::Ident(line[start..end].to_string()),
                        line: line_no,
                    });
                    i = end;
                }
                other => {
                    return Err(CircuitError::QasmParse {
                        line: line_no,
                        message: format!("unexpected character '{other}'"),
                    });
                }
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_basic_statement() {
        let toks = tokenize("h q[0];").unwrap();
        assert_eq!(toks.len(), 6);
        assert_eq!(toks[0].kind, TokenKind::Ident("h".into()));
        assert_eq!(toks[2].kind, TokenKind::LBracket);
        assert_eq!(toks[3].kind, TokenKind::Number(0.0));
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let toks = tokenize("// header\ncx q[0],q[1];").unwrap();
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn arrow_and_minus() {
        let toks = tokenize("measure q[0] -> c[0]; rz(-0.5) q[0];").unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::Arrow));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Minus));
    }

    #[test]
    fn scientific_notation() {
        let toks = tokenize("rz(1.5e-3) q[0];").unwrap();
        assert!(toks
            .iter()
            .any(|t| matches!(t.kind, TokenKind::Number(x) if (x - 0.0015).abs() < 1e-12)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("h q[0] $;").is_err());
        assert!(tokenize("include \"unterminated").is_err());
    }

    #[test]
    fn string_literals() {
        let toks = tokenize("include \"qelib1.inc\";").unwrap();
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::StringLit("qelib1.inc".into())));
    }
}
