//! Error types for the circuit crate.

use std::error::Error;
use std::fmt;

/// Errors produced while building or parsing quantum circuits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A qubit index was out of range for the circuit.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A classical bit index was out of range for the circuit.
    ClbitOutOfRange {
        /// The offending classical bit index.
        clbit: usize,
        /// Number of classical bits in the circuit.
        num_clbits: usize,
    },
    /// The same qubit was used twice in one multi-qubit instruction.
    DuplicateQubit {
        /// The duplicated qubit index.
        qubit: usize,
    },
    /// A gate was applied to the wrong number of qubits.
    ArityMismatch {
        /// Gate name.
        gate: String,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        actual: usize,
    },
    /// A QASM source could not be parsed.
    QasmParse {
        /// 1-based line number of the failure.
        line: usize,
        /// Description of the failure.
        message: String,
    },
    /// A construction parameter was invalid (e.g. zero qubits).
    InvalidParameter(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for circuit with {num_qubits} qubits"
                )
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(
                    f,
                    "classical bit {clbit} out of range for circuit with {num_clbits} bits"
                )
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(
                    f,
                    "qubit {qubit} used more than once in a single instruction"
                )
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "gate {gate} expects {expected} qubits but was given {actual}"
                )
            }
            CircuitError::QasmParse { line, message } => {
                write!(f, "QASM parse error at line {line}: {message}")
            }
            CircuitError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = CircuitError::QubitOutOfRange {
            qubit: 7,
            num_qubits: 5,
        };
        assert!(err.to_string().contains('7'));
        assert!(err.to_string().contains('5'));
        let err = CircuitError::QasmParse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(err.to_string().contains("line 3"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<CircuitError>();
    }
}
