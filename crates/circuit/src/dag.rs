//! Dependency-graph utilities over circuits.
//!
//! The transpiler's routing pass (SABRE-style) operates on the circuit's
//! dependency structure: it repeatedly extracts the *front layer* of gates
//! whose predecessors have all been executed. [`DependencyGraph`] provides
//! that view without mutating the underlying [`Circuit`].

use std::collections::VecDeque;

use crate::circuit::Circuit;
use crate::gate::Gate;

/// A lightweight scheduling DAG over a circuit's instructions.
///
/// Nodes are instruction indices; an edge `a -> b` exists when instruction `b`
/// uses a qubit last touched by instruction `a`.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    /// For each instruction, the indices of instructions that must execute first.
    predecessors: Vec<Vec<usize>>,
    /// For each instruction, the indices of instructions that depend on it.
    successors: Vec<Vec<usize>>,
    num_instructions: usize,
}

impl DependencyGraph {
    /// Build the dependency graph of `circuit`. Barriers act as full
    /// synchronisation points across their operands.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut predecessors = vec![Vec::new(); n];
        let mut successors = vec![Vec::new(); n];
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits().max(1)];
        for (idx, inst) in circuit.instructions().iter().enumerate() {
            for &q in &inst.qubits {
                if let Some(prev) = last_on_qubit[q] {
                    if !predecessors[idx].contains(&prev) {
                        predecessors[idx].push(prev);
                        successors[prev].push(idx);
                    }
                }
                last_on_qubit[q] = Some(idx);
            }
        }
        DependencyGraph {
            predecessors,
            successors,
            num_instructions: n,
        }
    }

    /// Number of instructions in the graph.
    pub fn len(&self) -> usize {
        self.num_instructions
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.num_instructions == 0
    }

    /// Direct predecessors of instruction `idx`.
    pub fn predecessors(&self, idx: usize) -> &[usize] {
        &self.predecessors[idx]
    }

    /// Direct successors of instruction `idx`.
    pub fn successors(&self, idx: usize) -> &[usize] {
        &self.successors[idx]
    }

    /// Instructions with no predecessors (the initial front layer).
    pub fn initial_front(&self) -> Vec<usize> {
        (0..self.num_instructions)
            .filter(|&i| self.predecessors[i].is_empty())
            .collect()
    }

    /// A topological ordering of all instructions (Kahn's algorithm). The
    /// result always has length [`len`](Self::len) because circuits are
    /// acyclic by construction.
    pub fn topological_order(&self) -> Vec<usize> {
        let mut indegree: Vec<usize> = self.predecessors.iter().map(Vec::len).collect();
        let mut queue: VecDeque<usize> = (0..self.num_instructions)
            .filter(|&i| indegree[i] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.num_instructions);
        while let Some(node) = queue.pop_front() {
            order.push(node);
            for &succ in &self.successors[node] {
                indegree[succ] -= 1;
                if indegree[succ] == 0 {
                    queue.push_back(succ);
                }
            }
        }
        order
    }

    /// Number of layers when instructions are greedily packed as early as
    /// their dependencies allow (equivalent to circuit depth over all
    /// instruction kinds except barriers).
    pub fn layer_count(&self, circuit: &Circuit) -> usize {
        let mut level = vec![0usize; self.num_instructions];
        let mut max = 0;
        for idx in self.topological_order() {
            let base = self.predecessors[idx]
                .iter()
                .map(|&p| level[p])
                .max()
                .unwrap_or(0);
            let this = if circuit.instructions()[idx].gate == Gate::Barrier {
                base
            } else {
                base + 1
            };
            level[idx] = this;
            max = max.max(this);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3, 3);
        c.h(0).unwrap();
        c.h(1).unwrap();
        c.cx(0, 1).unwrap();
        c.cx(1, 2).unwrap();
        c.measure_all().unwrap();
        c
    }

    #[test]
    fn front_layer_has_independent_gates() {
        let c = sample();
        let dag = DependencyGraph::new(&c);
        let front = dag.initial_front();
        assert_eq!(front, vec![0, 1]);
    }

    #[test]
    fn dependencies_follow_qubits() {
        let c = sample();
        let dag = DependencyGraph::new(&c);
        // cx(0,1) depends on both Hadamards.
        assert_eq!(dag.predecessors(2).len(), 2);
        // cx(1,2) depends only on cx(0,1).
        assert_eq!(dag.predecessors(3), &[2]);
    }

    #[test]
    fn topological_order_is_complete_and_valid() {
        let c = sample();
        let dag = DependencyGraph::new(&c);
        let order = dag.topological_order();
        assert_eq!(order.len(), c.len());
        let pos: Vec<usize> = {
            let mut p = vec![0; order.len()];
            for (i, &node) in order.iter().enumerate() {
                p[node] = i;
            }
            p
        };
        for node in 0..dag.len() {
            for &pred in dag.predecessors(node) {
                assert!(pos[pred] < pos[node]);
            }
        }
    }

    #[test]
    fn layer_count_matches_depth() {
        let c = sample();
        let dag = DependencyGraph::new(&c);
        assert_eq!(dag.layer_count(&c), c.depth());
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(2, 0);
        let dag = DependencyGraph::new(&c);
        assert!(dag.is_empty());
        assert!(dag.initial_front().is_empty());
        assert_eq!(dag.layer_count(&c), 0);
    }
}
