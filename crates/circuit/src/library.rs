//! Standard circuit library.
//!
//! These generators produce the benchmark circuits used throughout the paper's
//! evaluation (§4.3): Bernstein–Vazirani, Grover search, the hidden subgroup
//! problem, a repetition-code encoder, and random circuits — plus a few common
//! building blocks (GHZ, QFT) and the *topology circuit* construction used by
//! the visualizer for topology-based scheduling (§3.2).

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;
use crate::error::CircuitError;
use crate::gate::Gate;

/// Bernstein–Vazirani circuit over `n` data qubits with the given hidden
/// bit-string `secret` (least-significant bit = qubit 0).
///
/// Uses the phase-kickback formulation (no ancilla): H on all qubits, Z on the
/// secret bits, H again, then measure. The ideal outcome is exactly `secret`.
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Result<Circuit, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidParameter(
            "bernstein_vazirani needs n >= 1".into(),
        ));
    }
    let mut c = Circuit::with_name(format!("bv_{n}"), n, n);
    for q in 0..n {
        c.h(q)?;
    }
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.z(q)?;
        }
    }
    for q in 0..n {
        c.h(q)?;
    }
    c.measure_all()?;
    Ok(c)
}

/// A CNOT-ladder variant of Bernstein–Vazirani matching the ancilla-based
/// textbook construction: `n` data qubits plus one ancilla target.
///
/// This variant stresses two-qubit gates (one CX per set secret bit), which is
/// what makes BV-10 a useful scheduling benchmark in the paper.
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn bernstein_vazirani_with_ancilla(n: usize, secret: u64) -> Result<Circuit, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidParameter(
            "bernstein_vazirani needs n >= 1".into(),
        ));
    }
    let mut c = Circuit::with_name(format!("bv_anc_{n}"), n + 1, n);
    let ancilla = n;
    c.x(ancilla)?;
    c.h(ancilla)?;
    for q in 0..n {
        c.h(q)?;
    }
    for q in 0..n {
        if (secret >> q) & 1 == 1 {
            c.cx(q, ancilla)?;
        }
    }
    for q in 0..n {
        c.h(q)?;
    }
    for q in 0..n {
        c.measure(q, q)?;
    }
    Ok(c)
}

/// Grover search over `n` qubits with a single marked element, one iteration.
///
/// The oracle marks `marked` with a multi-controlled phase flip implemented
/// via H/CX/CCX; for `n <= 3` this matches the 3-qubit Grover circuit used in
/// the paper's evaluation.
///
/// # Errors
///
/// Returns an error if `n == 0` or `marked >= 2^n`.
pub fn grover(n: usize, marked: u64) -> Result<Circuit, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidParameter("grover needs n >= 1".into()));
    }
    if marked >= (1u64 << n) {
        return Err(CircuitError::InvalidParameter(format!(
            "marked element {marked} out of range for {n} qubits"
        )));
    }
    let mut c = Circuit::with_name(format!("grover_{n}"), n, n);
    for q in 0..n {
        c.h(q)?;
    }
    // Oracle: flip phase of |marked>.
    apply_phase_flip(&mut c, n, marked)?;
    // Diffusion operator.
    for q in 0..n {
        c.h(q)?;
        c.x(q)?;
    }
    apply_controlled_z_all(&mut c, n)?;
    for q in 0..n {
        c.x(q)?;
        c.h(q)?;
    }
    c.measure_all()?;
    Ok(c)
}

fn apply_phase_flip(c: &mut Circuit, n: usize, target_state: u64) -> Result<(), CircuitError> {
    for q in 0..n {
        if (target_state >> q) & 1 == 0 {
            c.x(q)?;
        }
    }
    apply_controlled_z_all(c, n)?;
    for q in 0..n {
        if (target_state >> q) & 1 == 0 {
            c.x(q)?;
        }
    }
    Ok(())
}

/// Apply a phase flip on |11..1> across the first `n` qubits.
fn apply_controlled_z_all(c: &mut Circuit, n: usize) -> Result<(), CircuitError> {
    match n {
        1 => c.z(0),
        2 => c.cz(0, 1),
        _ => {
            // CCZ via H - CCX - H on the last qubit; for n > 3 we chain Toffolis
            // through the top qubits (an approximation adequate for small n).
            c.h(n - 1)?;
            c.ccx(0, 1, n - 1)?;
            for q in 2..n - 1 {
                c.ccx(q - 1, q, n - 1)?;
            }
            c.h(n - 1)
        }
    }
}

/// Hidden subgroup problem instance (Simon-style) over `n` qubits.
///
/// The 4-qubit variant matches the paper's "Hsp" benchmark: a layer of
/// Hadamards, a CX-based oracle encoding the hidden subgroup generator, and a
/// final Hadamard layer before measurement.
///
/// # Errors
///
/// Returns an error if `n < 2`.
pub fn hidden_subgroup(n: usize) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidParameter(
            "hidden_subgroup needs n >= 2".into(),
        ));
    }
    let half = n / 2;
    let mut c = Circuit::with_name(format!("hsp_{n}"), n, n);
    for q in 0..half {
        c.h(q)?;
    }
    // Oracle: copy the input register into the output register, then fold in a
    // hidden period by XOR-ing the first input qubit into every output qubit.
    for q in 0..half {
        let target = half + q;
        if target < n {
            c.cx(q, target)?;
        }
    }
    for q in half..n {
        c.cx(0, q)?;
    }
    for q in 0..half {
        c.h(q)?;
    }
    c.measure_all()?;
    Ok(c)
}

/// Repetition-code encoder over `n` qubits: the first qubit's state is fanned
/// out onto the remaining `n - 1` qubits with a CX ladder (the 5-qubit "Rep"
/// benchmark of the paper).
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn repetition_code_encoder(n: usize) -> Result<Circuit, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidParameter(
            "repetition_code_encoder needs n >= 1".into(),
        ));
    }
    let mut c = Circuit::with_name(format!("rep_{n}"), n, n);
    c.h(0)?;
    for q in 1..n {
        c.cx(0, q)?;
    }
    c.measure_all()?;
    Ok(c)
}

/// GHZ state preparation over `n` qubits.
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn ghz(n: usize) -> Result<Circuit, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidParameter("ghz needs n >= 1".into()));
    }
    let mut c = Circuit::with_name(format!("ghz_{n}"), n, n);
    c.h(0)?;
    for q in 1..n {
        c.cx(q - 1, q)?;
    }
    c.measure_all()?;
    Ok(c)
}

/// Quantum Fourier transform over `n` qubits (no terminal swaps, with
/// measurements).
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn qft(n: usize) -> Result<Circuit, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidParameter("qft needs n >= 1".into()));
    }
    let mut c = Circuit::with_name(format!("qft_{n}"), n, n);
    for target in (0..n).rev() {
        c.h(target)?;
        for control in (0..target).rev() {
            let k = target - control;
            c.append(Gate::CP(PI / f64::from(1u32 << k)), &[control, target])?;
        }
    }
    c.measure_all()?;
    Ok(c)
}

/// A seeded random circuit with `n` qubits and approximately `depth` layers,
/// mixing random single-qubit rotations and CX gates (the paper's "Circ"
/// benchmark is a random 7-qubit circuit).
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn random_circuit(n: usize, depth: usize, seed: u64) -> Result<Circuit, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidParameter(
            "random_circuit needs n >= 1".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(format!("random_{n}x{depth}"), n, n);
    for _ in 0..depth {
        for q in 0..n {
            match rng.gen_range(0..5u8) {
                0 => c.h(q)?,
                1 => c.rx(rng.gen_range(0.0..2.0 * PI), q)?,
                2 => c.ry(rng.gen_range(0.0..2.0 * PI), q)?,
                3 => c.rz(rng.gen_range(0.0..2.0 * PI), q)?,
                _ => c.t(q)?,
            }
        }
        if n >= 2 {
            let mut qubits: Vec<usize> = (0..n).collect();
            qubits.shuffle(&mut rng);
            for pair in qubits.chunks(2) {
                if pair.len() == 2 && rng.gen_bool(0.6) {
                    c.cx(pair[0], pair[1])?;
                }
            }
        }
    }
    c.measure_all()?;
    Ok(c)
}

/// A seeded random circuit with exactly `num_cx` CX gates (the paper's
/// "Circ_2": an 8-qubit random circuit with 12 CX gates).
///
/// # Errors
///
/// Returns an error if `n < 2`.
pub fn random_circuit_with_cx_count(
    n: usize,
    num_cx: usize,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    if n < 2 {
        return Err(CircuitError::InvalidParameter(
            "random_circuit_with_cx_count needs n >= 2".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(format!("random_{n}_cx{num_cx}"), n, n);
    for q in 0..n {
        c.h(q)?;
    }
    for i in 0..num_cx {
        let a = rng.gen_range(0..n);
        let mut b = rng.gen_range(0..n);
        while b == a {
            b = rng.gen_range(0..n);
        }
        c.cx(a, b)?;
        if i % 3 == 0 {
            c.rz(rng.gen_range(0.0..2.0 * PI), a)?;
        }
    }
    c.measure_all()?;
    Ok(c)
}

/// A seeded random *Clifford* circuit (H/S/X/Z/CX only), useful for testing
/// the stabilizer simulation path at large qubit counts.
///
/// # Errors
///
/// Returns an error if `n == 0`.
pub fn random_clifford_circuit(n: usize, depth: usize, seed: u64) -> Result<Circuit, CircuitError> {
    if n == 0 {
        return Err(CircuitError::InvalidParameter(
            "random_clifford_circuit needs n >= 1".into(),
        ));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(format!("clifford_{n}x{depth}"), n, n);
    for _ in 0..depth {
        for q in 0..n {
            match rng.gen_range(0..4u8) {
                0 => c.h(q)?,
                1 => c.s(q)?,
                2 => c.x(q)?,
                _ => c.z(q)?,
            }
        }
        if n >= 2 {
            for _ in 0..(n / 2).max(1) {
                let a = rng.gen_range(0..n);
                let mut b = rng.gen_range(0..n);
                while b == a {
                    b = rng.gen_range(0..n);
                }
                c.cx(a, b)?;
            }
        }
    }
    c.measure_all()?;
    Ok(c)
}

/// Build a *topology circuit* from a user-drawn interaction graph: a circuit
/// over `num_qubits` qubits with one CX per requested edge (paper §3.2).
///
/// The resulting circuit's [`interaction_graph`](Circuit::interaction_graph)
/// equals the deduplicated edge list, which is exactly what the topology
/// ranking strategy feeds to the Mapomatic-style scorer.
///
/// # Errors
///
/// Returns an error if an edge references a qubit `>= num_qubits` or is a
/// self-loop.
pub fn topology_circuit(
    num_qubits: usize,
    edges: &[(usize, usize)],
) -> Result<Circuit, CircuitError> {
    let mut c = Circuit::with_name(format!("topology_{num_qubits}q"), num_qubits, 0);
    for &(a, b) in edges {
        if a == b {
            return Err(CircuitError::DuplicateQubit { qubit: a });
        }
        c.cx(a, b)?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bv_structure() {
        let c = bernstein_vazirani(10, 0b1011001101).unwrap();
        assert_eq!(c.num_qubits(), 10);
        assert!(c.is_clifford());
        assert_eq!(c.measurement_count(), 10);
        assert!(bernstein_vazirani(0, 0).is_err());
    }

    #[test]
    fn bv_ancilla_has_cx_per_secret_bit() {
        let c = bernstein_vazirani_with_ancilla(4, 0b1010).unwrap();
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.num_qubits(), 5);
    }

    #[test]
    fn grover_small() {
        let c = grover(3, 5).unwrap();
        assert_eq!(c.num_qubits(), 3);
        assert!(c.two_qubit_gate_count() >= 1 || c.count_ops().contains_key("ccx"));
        assert!(grover(3, 8).is_err());
        assert!(grover(0, 0).is_err());
    }

    #[test]
    fn hsp_and_rep() {
        let hsp = hidden_subgroup(4).unwrap();
        assert_eq!(hsp.num_qubits(), 4);
        assert!(hsp.two_qubit_gate_count() >= 2);
        let rep = repetition_code_encoder(5).unwrap();
        assert_eq!(rep.two_qubit_gate_count(), 4);
        assert!(rep.is_clifford());
        assert!(hidden_subgroup(1).is_err());
        assert!(repetition_code_encoder(0).is_err());
    }

    #[test]
    fn ghz_and_qft() {
        let g = ghz(6).unwrap();
        assert_eq!(g.two_qubit_gate_count(), 5);
        let q = qft(4).unwrap();
        assert_eq!(q.num_qubits(), 4);
        assert!(q.two_qubit_gate_count() >= 6);
        assert!(ghz(0).is_err());
        assert!(qft(0).is_err());
    }

    #[test]
    fn random_circuits_are_seeded() {
        let a = random_circuit(7, 5, 42).unwrap();
        let b = random_circuit(7, 5, 42).unwrap();
        assert_eq!(a, b);
        let c = random_circuit(7, 5, 43).unwrap();
        assert_ne!(a, c);
        assert!(random_circuit(0, 3, 1).is_err());
    }

    #[test]
    fn random_cx_count_is_exact() {
        let c = random_circuit_with_cx_count(8, 12, 7).unwrap();
        assert_eq!(c.two_qubit_gate_count(), 12);
        assert!(random_circuit_with_cx_count(1, 3, 0).is_err());
    }

    #[test]
    fn random_clifford_is_clifford() {
        let c = random_clifford_circuit(20, 10, 3).unwrap();
        assert!(c.is_clifford());
        assert_eq!(c.num_qubits(), 20);
    }

    #[test]
    fn topology_circuit_matches_edges() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let c = topology_circuit(4, &edges).unwrap();
        assert_eq!(c.interaction_graph(), edges);
        assert!(topology_circuit(3, &[(0, 3)]).is_err());
        assert!(topology_circuit(3, &[(1, 1)]).is_err());
    }
}
