//! The end-to-end QRIO orchestrator: visualizer → master server → meta server
//! → scheduler → cluster execution → logs (the full workflow of §3).

use std::sync::Arc;

use qrio_backend::Backend;
use qrio_cluster::{framework, Cluster, Node, Resources, ScheduleDecision};
use qrio_meta::{DeviceTelemetry, FidelityRankingConfig, MetaServer, RankingStrategy};
use qrio_scheduler::MetaRankingPlugin;

use crate::error::QrioError;
use crate::master_server::containerize;
use crate::runner::SimJobRunner;
use crate::visualizer::JobRequest;

/// The outcome of submitting one job through the full QRIO pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The scheduling decision (chosen node, score, candidates).
    pub decision: ScheduleDecision,
    /// Result histogram (`bitstring -> count`).
    pub counts: Vec<(String, u64)>,
    /// Fidelity achieved against the noise-free reference, when computed.
    pub achieved_fidelity: Option<f64>,
    /// The job's execution logs.
    pub logs: Vec<String>,
}

/// The QRIO orchestrator, owning the cluster and the meta server.
#[derive(Debug)]
pub struct Qrio {
    cluster: Cluster,
    meta: MetaServer,
    runner: SimJobRunner,
    default_node_resources: Resources,
}

impl Qrio {
    /// A QRIO deployment with no nodes and default configuration.
    pub fn new() -> Self {
        Qrio::with_config(FidelityRankingConfig::default(), 0x51D0)
    }

    /// A QRIO deployment with a custom scoring configuration and runner seed.
    pub fn with_config(fidelity_config: FidelityRankingConfig, seed: u64) -> Self {
        Qrio {
            cluster: Cluster::new(),
            meta: MetaServer::with_config(fidelity_config),
            runner: SimJobRunner::new(seed),
            default_node_resources: Resources::new(4000, 8192),
        }
    }

    /// Register a quantum device: adds a labelled node to the cluster and a
    /// copy of the backend to the meta server (the vendor workflow of §3.1).
    ///
    /// # Errors
    ///
    /// Returns an error if a node with the same name already exists.
    pub fn add_device(&mut self, backend: Backend) -> Result<(), QrioError> {
        self.meta.register_backend(backend.clone());
        self.cluster
            .add_node(Node::from_backend(backend, self.default_node_resources))?;
        Ok(())
    }

    /// Register every device of a fleet.
    ///
    /// # Errors
    ///
    /// Returns an error on the first duplicate device name.
    pub fn add_fleet(&mut self, fleet: impl IntoIterator<Item = Backend>) -> Result<(), QrioError> {
        for backend in fleet {
            self.add_device(backend)?;
        }
        Ok(())
    }

    /// Read-only access to the cluster (nodes, jobs, events).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the cluster for vendor operations (cordon, heal...).
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Read-only access to the meta server.
    pub fn meta(&self) -> &MetaServer {
        &self.meta
    }

    /// Register a user-defined ranking strategy with the meta server, making
    /// it selectable by name from any [`JobRequest`].
    ///
    /// # Errors
    ///
    /// Returns an error when a strategy with the same name already exists.
    pub fn register_strategy(
        &mut self,
        strategy: Arc<dyn RankingStrategy>,
    ) -> Result<(), QrioError> {
        Ok(self.meta.register_strategy(strategy)?)
    }

    /// Report the current per-node load (queue depth, classical utilization)
    /// from the cluster registry to the meta server, so telemetry-aware
    /// strategies score against fresh numbers. Runs automatically before every
    /// scheduling cycle.
    fn sync_telemetry(&mut self) {
        for (device, load) in self.cluster.node_loads() {
            self.meta.update_telemetry(
                device,
                DeviceTelemetry {
                    queue_depth: load.active_jobs,
                    utilization: load.utilization(),
                },
            );
        }
    }

    /// Submit a job request and drive it to completion: upload metadata,
    /// containerize, schedule (filter + meta-server ranking) and execute.
    ///
    /// # Errors
    ///
    /// Returns an error if any stage fails (no matching devices, execution
    /// failure, ...). The job object in the cluster records the failure too.
    pub fn submit(&mut self, request: &JobRequest) -> Result<JobOutcome, QrioError> {
        // 1. Visualizer → meta server: upload the job metadata (Table 1,
        //    generalized): the strategy reference plus the circuit when one
        //    was provided. The strategy's own validation hook runs here.
        let qasm_text = (!request.qasm.is_empty()).then_some(request.qasm.as_str());
        self.meta
            .upload_job_metadata(&request.job_name, &request.strategy, qasm_text)?;

        // 2. Visualizer → master server: containerize and create the job spec.
        let containerized = containerize(request)?;
        self.cluster.push_image(containerized.image);
        self.cluster.submit_job(containerized.spec)?;

        // 3. Scheduler: refresh telemetry, then filter + rank via the meta
        //    server and bind to the winner.
        self.sync_telemetry();
        let filters = framework::default_filters();
        let ranking = MetaRankingPlugin::new(&self.meta);
        let decision = self
            .cluster
            .schedule_job(&request.job_name, &filters, &ranking)?;

        // 4. Node executor: run the container on the chosen device.
        self.cluster.run_job(&request.job_name, &self.runner)?;

        let job = self
            .cluster
            .job(&request.job_name)
            .expect("job was just submitted and executed");
        Ok(JobOutcome {
            decision,
            counts: job.result_counts().to_vec(),
            achieved_fidelity: job.achieved_fidelity(),
            logs: job.logs().to_vec(),
        })
    }

    /// Fetch the logs of a previously-submitted job (what the visualizer's
    /// "check logs" button shows, §3.2).
    ///
    /// # Errors
    ///
    /// Returns an error if no such job exists.
    pub fn job_logs(&self, job_name: &str) -> Result<&[String], QrioError> {
        Ok(self.cluster.job_logs(job_name)?)
    }
}

impl Default for Qrio {
    fn default() -> Self {
        Qrio::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visualizer::{JobRequestBuilder, TopologyDesigner};
    use qrio_backend::topology;
    use qrio_circuit::library;
    use qrio_cluster::{DeviceRequirements, JobPhase};

    fn small_qrio() -> Qrio {
        let mut qrio = Qrio::with_config(
            FidelityRankingConfig {
                shots: 128,
                seed: 5,
                shortfall_weight: 100.0,
            },
            7,
        );
        qrio.add_device(Backend::uniform("clean", topology::line(10), 0.001, 0.01))
            .unwrap();
        qrio.add_device(Backend::uniform("mid", topology::ring(10), 0.02, 0.15))
            .unwrap();
        qrio.add_device(Backend::uniform("noisy", topology::line(10), 0.05, 0.4))
            .unwrap();
        qrio
    }

    #[test]
    fn fidelity_job_end_to_end() {
        let mut qrio = small_qrio();
        let bv = library::bernstein_vazirani(6, 0b101101).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("bv-e2e")
            .fidelity_target(0.9)
            .shots(256)
            .build()
            .unwrap();
        let outcome = qrio.submit(&request).unwrap();
        assert_eq!(outcome.decision.node, "clean");
        assert!(outcome.achieved_fidelity.unwrap() > 0.8);
        assert!(!outcome.counts.is_empty());
        assert!(matches!(
            qrio.cluster().job("bv-e2e").unwrap().phase(),
            JobPhase::Succeeded { .. }
        ));
        assert!(!qrio.job_logs("bv-e2e").unwrap().is_empty());
        assert!(qrio.job_logs("missing").is_err());
    }

    #[test]
    fn topology_job_end_to_end_picks_matching_device() {
        let mut qrio = Qrio::with_config(
            FidelityRankingConfig {
                shots: 64,
                seed: 3,
                shortfall_weight: 100.0,
            },
            9,
        );
        qrio.add_device(Backend::uniform("ring-dev", topology::ring(10), 0.01, 0.05))
            .unwrap();
        qrio.add_device(Backend::uniform(
            "tree-dev",
            topology::binary_tree(10),
            0.01,
            0.05,
        ))
        .unwrap();
        qrio.add_device(Backend::uniform("line-dev", topology::line(10), 0.01, 0.05))
            .unwrap();

        let mut designer = TopologyDesigner::new(10);
        for (a, b) in topology::binary_tree(10).edges() {
            designer.connect(a, b).unwrap();
        }
        let request = JobRequestBuilder::new()
            .job_name("topo-e2e")
            .topology(&designer)
            .with_circuit(&library::ghz(10).unwrap())
            .build()
            .unwrap();
        let outcome = qrio.submit(&request).unwrap();
        assert_eq!(outcome.decision.node, "tree-dev");
    }

    #[test]
    fn requirements_can_make_a_job_unschedulable() {
        let mut qrio = small_qrio();
        let ghz = library::ghz(4).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&ghz)
            .job_name("impossible")
            .requirements(DeviceRequirements {
                max_two_qubit_error: Some(0.0001),
                ..DeviceRequirements::default()
            })
            .fidelity_target(0.99)
            .build()
            .unwrap();
        assert!(qrio.submit(&request).is_err());
        assert!(qrio
            .cluster()
            .job("impossible")
            .unwrap()
            .phase()
            .is_terminal());
    }

    #[test]
    fn duplicate_devices_are_rejected() {
        let mut qrio = small_qrio();
        assert!(qrio
            .add_device(Backend::uniform("clean", topology::line(4), 0.0, 0.0))
            .is_err());
    }
}
