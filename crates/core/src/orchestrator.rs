//! The end-to-end QRIO orchestrator: visualizer → master server → meta server
//! → scheduler → cluster execution → logs (the full workflow of §3), exposed
//! as a **non-blocking job lifecycle**.
//!
//! # The lifecycle API
//!
//! [`Qrio::enqueue`] returns a [`JobId`] as soon as the job's metadata is
//! uploaded and its container pushed — nothing has been scheduled yet. A
//! deterministic service loop ([`Qrio::tick`] / [`Qrio::run_until_idle`])
//! then drains the admission queue in priority order (FIFO within a
//! priority), binds each job to a device via filter + meta-server ranking,
//! and executes one job per device per tick. Every transition is appended to
//! a watch log ([`Qrio::watch`]) and queryable per job ([`Qrio::status`],
//! [`Qrio::outcome`], [`Qrio::job_logs`]). [`Qrio::cancel`] withdraws a job
//! that has not started running.
//!
//! The blocking [`Qrio::submit`] of earlier revisions is still here, now a
//! thin lifecycle wrapper: `enqueue`, tick until *that* job is terminal,
//! `outcome` — other queued work advances alongside, but only the submitted
//! job is ever force-failed on its account.
//!
//! # Simulator primitives
//!
//! Virtual-time simulators (e.g. `qrio-loadgen`) need to decide *when* each
//! lifecycle step happens instead of delegating to `tick()`. For them the
//! individual steps are public: [`Qrio::schedule`] binds one queued job
//! against the most recently reported telemetry ([`Qrio::report_telemetry`]),
//! [`Qrio::execute`] runs one bound job, [`Qrio::rank_ready`] re-ranks a job
//! over the currently-ready fleet, [`Qrio::rebind`] migrates a waiting job,
//! and [`Qrio::recalibrate_device`] applies a calibration refresh to the
//! meta server and the cluster in one step.

use std::fmt;
use std::path::Path;
use std::sync::Arc;

use qrio_agent::{fault_spec_to_wire, ChannelTransport, InProcTransport, NodeAgent, Transport};
use qrio_backend::{spec as backend_spec, Backend};
use qrio_cluster::{
    framework, Cluster, ClusterError, FaultInjector, Node, Resources, ScheduleDecision,
};
use qrio_journal::Journal;
use qrio_meta::{DeviceTelemetry, FidelityRankingConfig, MetaServer, RankingStrategy};
use qrio_proto::NodeCommand;
use qrio_scheduler::{MetaRankingPlugin, QrioScheduler};

use crate::breaker::{BreakerAction, BreakerBoard, BreakerConfig};
use crate::control::{ControlPlane, ObservedNode, TransportMode};
use crate::durability::{
    self, Command, Durability, DurabilityConfig, DurabilityError, RecoveryReport, ReplayCheckpoint,
    SnapshotState, RECORD_COMMAND, RECORD_EVENTS, RECORD_SNAPSHOT, RECORD_VERSION,
};
use crate::error::QrioError;
use crate::lifecycle::{JobEvent, JobId, JobState, JobStatus, LifecycleStore, TickReport};
use crate::master_server::containerize;
use crate::runner::SimJobRunner;
use crate::visualizer::JobRequest;

/// The outcome of one job that ran to completion through the QRIO pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The scheduling decision (chosen node, score, candidates).
    pub decision: ScheduleDecision,
    /// Result histogram (`bitstring -> count`).
    pub counts: Vec<(String, u64)>,
    /// Fidelity achieved against the noise-free reference, when computed.
    pub achieved_fidelity: Option<f64>,
    /// The job's execution logs.
    pub logs: Vec<String>,
}

/// How an admission attempt for one queued job ended.
enum Admitted {
    /// Bound to a device.
    Scheduled(String),
    /// No device can host the job right now; it stays `Queued`.
    Deferred,
    /// Terminal failure (unschedulable, or every candidate failed scoring).
    Failed,
}

/// A pre-admission check consulted by [`Qrio::enqueue`] before any state is
/// created for the request.
///
/// The gate sees the full request plus a snapshot of every registered device
/// (cordoned or not — admission asks "could this ever run", not "can it run
/// now"). Returning `Err` rejects the request with
/// [`QrioError::AdmissionRejected`]; nothing is uploaded, containerized or
/// queued in that case.
///
/// The `qrio-analyzer` crate ships a lint-based implementation; custom gates
/// (quota checks, policy enforcement) implement this trait directly.
pub trait AdmissionGate: fmt::Debug {
    /// Check one request against the registered fleet. `Err(reason)` rejects.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the request must not be admitted.
    fn check(&self, request: &JobRequest, fleet: &[Backend]) -> Result<(), String>;
}

/// The QRIO orchestrator, owning the cluster, the meta server and the job
/// lifecycle store.
#[derive(Debug)]
pub struct Qrio {
    cluster: Cluster,
    meta: MetaServer,
    runner: SimJobRunner,
    default_node_resources: Resources,
    lifecycle: LifecycleStore,
    admission_gate: Option<Box<dyn AdmissionGate>>,
    durability: Option<Durability>,
    breakers: Option<BreakerBoard>,
    control: ControlPlane,
}

impl Qrio {
    /// A QRIO deployment with no nodes and default configuration.
    pub fn new() -> Self {
        Qrio::with_config(FidelityRankingConfig::default(), 0x51D0)
    }

    /// A QRIO deployment with a custom scoring configuration and runner seed.
    pub fn with_config(fidelity_config: FidelityRankingConfig, seed: u64) -> Self {
        Qrio {
            cluster: Cluster::new(),
            meta: MetaServer::with_config(fidelity_config),
            runner: SimJobRunner::new(seed),
            default_node_resources: Resources::new(4000, 8192),
            lifecycle: LifecycleStore::default(),
            admission_gate: None,
            durability: None,
            breakers: None,
            control: ControlPlane::new_in_proc(),
        }
    }

    /// Install a pre-admission gate: every subsequent [`Qrio::enqueue`] runs
    /// it before creating any state, and a rejection surfaces as
    /// [`QrioError::AdmissionRejected`]. Replaces any previous gate.
    pub fn set_admission_gate(&mut self, gate: Box<dyn AdmissionGate>) {
        self.admission_gate = Some(gate);
    }

    /// Remove the admission gate, restoring unchecked admission.
    pub fn clear_admission_gate(&mut self) {
        self.admission_gate = None;
    }

    /// Register a quantum device: adds a labelled node to the cluster and a
    /// copy of the backend to the meta server (the vendor workflow of §3.1).
    ///
    /// # Errors
    ///
    /// Returns an error if a node with the same name already exists.
    pub fn add_device(&mut self, backend: Backend) -> Result<(), QrioError> {
        let resources = self.default_node_resources;
        self.add_device_with_resources(backend, resources)
    }

    /// Register a quantum device whose node gets a custom classical capacity
    /// (simulators typically want effectively-unbounded nodes so that queue
    /// depth, not classical fit, is the binding constraint).
    ///
    /// # Errors
    ///
    /// Returns an error if a node with the same name already exists.
    pub fn add_device_with_resources(
        &mut self,
        backend: Backend,
        resources: Resources,
    ) -> Result<(), QrioError> {
        let spec_text = backend_spec::to_spec(&backend);
        self.add_device_unjournaled(backend, resources)?;
        self.journal_command(Command::AddDevice {
            spec_text,
            resources,
        })?;
        Ok(())
    }

    /// The registration itself, free of journaling. A duplicate name is
    /// rejected before any state changes, so a failed registration leaves
    /// both the meta server and the cluster untouched.
    fn add_device_unjournaled(
        &mut self,
        backend: Backend,
        resources: Resources,
    ) -> Result<(), QrioError> {
        if self.cluster.node(backend.name()).is_some() {
            return Err(QrioError::Cluster(ClusterError::DuplicateNode(
                backend.name().to_string(),
            )));
        }
        let name = backend.name().to_string();
        let spec_text = backend_spec::to_spec(&backend);
        self.meta.register_backend(backend.clone());
        self.cluster
            .add_node(Node::from_backend(backend, resources))?;
        self.attach_agent(&name, spec_text);
        Ok(())
    }

    /// Stand up the node's agent: register it on the control-plane transport
    /// and ship the calibration plus the current fault plan in a `Bind`
    /// command. Transport sends only fail when the workers are torn down, so
    /// failures here are ignored rather than surfaced to the vendor API.
    fn attach_agent(&mut self, node: &str, backend_spec: String) {
        let _ = self
            .control
            .register_agent(NodeAgent::new(node, Box::new(self.runner)));
        let injector = self.cluster.fault_injector().map(fault_spec_to_wire);
        let _ = self.control.send_command(
            node,
            self.lifecycle.clock,
            NodeCommand::Bind {
                backend_spec,
                injector,
            },
        );
        self.control.drain();
    }

    /// Register every device of a fleet.
    ///
    /// # Errors
    ///
    /// Returns an error on the first duplicate device name.
    pub fn add_fleet(&mut self, fleet: impl IntoIterator<Item = Backend>) -> Result<(), QrioError> {
        for backend in fleet {
            self.add_device(backend)?;
        }
        Ok(())
    }

    /// Apply a calibration refresh (or drift) to a registered device: the
    /// meta server gets the new backend under a bumped calibration revision
    /// (invalidating memoized scores) and the cluster node's labels are
    /// recomputed from it.
    ///
    /// # Errors
    ///
    /// Returns an error if no node carries the backend's name.
    pub fn recalibrate_device(&mut self, backend: Backend) -> Result<(), QrioError> {
        let spec_text = backend_spec::to_spec(&backend);
        self.recalibrate_unjournaled(backend)?;
        self.journal_command(Command::Recalibrate { spec_text })?;
        Ok(())
    }

    /// The calibration refresh itself, free of journaling. The node is
    /// looked up before the meta server is touched, so an unknown device
    /// leaves no state behind.
    fn recalibrate_unjournaled(&mut self, backend: Backend) -> Result<(), QrioError> {
        if self.cluster.node(backend.name()).is_none() {
            return Err(QrioError::Cluster(ClusterError::UnknownNode(
                backend.name().to_string(),
            )));
        }
        let name = backend.name().to_string();
        let spec_text = backend_spec::to_spec(&backend);
        self.meta.register_backend(backend.clone());
        self.cluster.update_node_backend(backend)?;
        let _ = self.control.send_command(
            &name,
            self.lifecycle.clock,
            NodeCommand::Recalibrate {
                backend_spec: spec_text,
            },
        );
        self.control.drain();
        Ok(())
    }

    /// Read-only access to the cluster (nodes, jobs, events).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Mutable access to the cluster for vendor operations.
    ///
    /// Mutations made through this escape hatch are **not journaled**: with
    /// durability enabled they are invisible to crash recovery. Prefer the
    /// journaled wrappers ([`Qrio::cordon_device`], [`Qrio::uncordon_device`],
    /// [`Qrio::heal_devices`], [`Qrio::recalibrate_device`]) when the change
    /// must survive a restart.
    pub fn cluster_mut(&mut self) -> &mut Cluster {
        &mut self.cluster
    }

    /// Cordon a device's node: it stops accepting new bindings until
    /// uncordoned. Journaled when durability is enabled.
    ///
    /// # Errors
    ///
    /// Returns an error when no such node exists, or when the journal append
    /// fails.
    pub fn cordon_device(&mut self, name: &str) -> Result<(), QrioError> {
        self.cluster
            .node_mut(name)
            .ok_or_else(|| QrioError::Cluster(ClusterError::UnknownNode(name.to_string())))?
            .cordon();
        let _ = self
            .control
            .send_command(name, self.lifecycle.clock, NodeCommand::Cordon);
        self.control.drain();
        self.journal_command(Command::Cordon {
            node: name.to_string(),
        })?;
        Ok(())
    }

    /// Lift a device's cordon, making its node schedulable again. Journaled
    /// when durability is enabled.
    ///
    /// # Errors
    ///
    /// Returns an error when no such node exists, or when the journal append
    /// fails.
    pub fn uncordon_device(&mut self, name: &str) -> Result<(), QrioError> {
        self.cluster
            .node_mut(name)
            .ok_or_else(|| QrioError::Cluster(ClusterError::UnknownNode(name.to_string())))?
            .uncordon();
        let _ = self
            .control
            .send_command(name, self.lifecycle.clock, NodeCommand::Uncordon);
        self.control.drain();
        self.journal_command(Command::Uncordon {
            node: name.to_string(),
        })?;
        Ok(())
    }

    /// Restart every `NotReady` node (the cluster's self-healing sweep),
    /// returning the names of the restarted nodes. Journaled when durability
    /// is enabled.
    ///
    /// # Errors
    ///
    /// Returns an error only when the journal append fails; the restarts
    /// themselves are infallible.
    pub fn heal_devices(&mut self) -> Result<Vec<String>, QrioError> {
        let healed = self.cluster.heal_nodes();
        self.journal_command(Command::Heal)?;
        Ok(healed)
    }

    // --- Fault tolerance -----------------------------------------------------------------

    /// Install (or, with `None`, remove) the cluster's deterministic fault
    /// injector. Every execution attempt consults it; an injected fault
    /// fails the attempt with [`ClusterError::InjectedFault`] and flows
    /// through the job's retry policy like any real failure. Journaled, so
    /// recovery replays the exact same faults.
    ///
    /// # Errors
    ///
    /// Returns an error only when the journal append fails.
    pub fn configure_faults(&mut self, injector: Option<FaultInjector>) -> Result<(), QrioError> {
        self.configure_faults_unjournaled(injector);
        self.journal_command(Command::ConfigureFaults { injector })?;
        Ok(())
    }

    /// Install the injector and rebroadcast every node's `Bind` so each
    /// agent's fault-plan replica matches: the agent draws the injected-fault
    /// verdict for the attempts it runs, and both sides evaluate the same
    /// pure decision function.
    fn configure_faults_unjournaled(&mut self, injector: Option<FaultInjector>) {
        self.cluster.set_fault_injector(injector);
        let wire = injector.as_ref().map(fault_spec_to_wire);
        let nodes: Vec<(String, String)> = self
            .cluster
            .nodes()
            .map(|node| {
                (
                    node.backend().name().to_string(),
                    backend_spec::to_spec(node.backend()),
                )
            })
            .collect();
        let clock = self.lifecycle.clock;
        for (name, spec_text) in nodes {
            let _ = self.control.send_command(
                &name,
                clock,
                NodeCommand::Bind {
                    backend_spec: spec_text,
                    injector: wire,
                },
            );
        }
        self.control.drain();
    }

    /// The currently-installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.cluster.fault_injector()
    }

    /// Install (or, with `None`, remove) per-device circuit breakers. A
    /// fresh board starts with every breaker closed; from then on every
    /// execution outcome feeds it, a trip cordons the device, and probation
    /// uncordons it. Journaled, so recovery replays every trip.
    ///
    /// # Errors
    ///
    /// Returns an error only when the journal append fails.
    pub fn configure_breakers(&mut self, config: Option<BreakerConfig>) -> Result<(), QrioError> {
        self.breakers = config.map(BreakerBoard::new);
        self.journal_command(Command::ConfigureBreakers { config })?;
        Ok(())
    }

    /// The circuit-breaker board, when breakers are configured.
    pub fn breakers(&self) -> Option<&BreakerBoard> {
        self.breakers.as_ref()
    }

    // --- Control plane -------------------------------------------------------------------

    /// Swap the control-plane transport, rebuilding every node's agent on
    /// the new one. [`TransportMode::InProc`] (the default) runs agents in
    /// this thread, deterministically; [`TransportMode::Threaded`] moves
    /// them onto real worker threads over `mpsc` channels. Agents are pure
    /// functions of their per-node command streams, so final results are
    /// byte-identical in every mode and at every thread count.
    pub fn set_transport(&mut self, mode: TransportMode) {
        let transport: Box<dyn Transport> = match mode {
            TransportMode::InProc => Box::new(InProcTransport::new()),
            TransportMode::Threaded { threads } => Box::new(ChannelTransport::new(threads)),
        };
        self.control.install(transport, mode);
        self.rebuild_agents();
    }

    /// The active control-plane transport mode.
    pub fn transport_mode(&self) -> TransportMode {
        self.control.mode()
    }

    /// Short name of the active transport (`"in-proc"` / `"threaded"`).
    pub fn transport_mode_name(&self) -> &'static str {
        self.control.mode_name()
    }

    /// The observed-state table of the reconcile loop: the last decoded
    /// [`qrio_proto::NodeReport`] per node, as drained off the transport.
    pub fn observed_nodes(&self) -> &std::collections::BTreeMap<String, ObservedNode> {
        self.control.observed()
    }

    /// The desired-state table of the reconcile loop: for every device with
    /// queued bindings, the job that should run on the next cycle.
    pub fn desired_bindings(&self) -> Vec<(String, String)> {
        self.plan_executions()
    }

    /// Start recording every control-plane frame (both directions) into an
    /// in-memory trace of concatenated encoded envelopes — the input format
    /// of the `qrio-lint` envelope lints.
    pub fn enable_control_trace(&mut self) {
        self.control.enable_trace();
    }

    /// Take the recorded control-plane trace, leaving recording enabled.
    pub fn take_control_trace(&mut self) -> Vec<u8> {
        self.control.take_trace()
    }

    /// Register one agent per cluster node on the current transport and
    /// re-ship calibration + fault plan. Used when the transport is swapped
    /// and when an orchestrator is rebuilt from a snapshot.
    fn rebuild_agents(&mut self) {
        let injector = self.cluster.fault_injector().map(fault_spec_to_wire);
        let nodes: Vec<(String, String)> = self
            .cluster
            .nodes()
            .map(|node| {
                (
                    node.backend().name().to_string(),
                    backend_spec::to_spec(node.backend()),
                )
            })
            .collect();
        let clock = self.lifecycle.clock;
        for (name, spec_text) in nodes {
            let _ = self
                .control
                .register_agent(NodeAgent::new(&name, Box::new(self.runner)));
            let _ = self.control.send_command(
                &name,
                clock,
                NodeCommand::Bind {
                    backend_spec: spec_text,
                    injector,
                },
            );
        }
        self.control.drain();
    }

    /// The dead-letter queue: ids of jobs whose retry policy was exhausted,
    /// oldest first. Jobs that fail without a retry policy (or on a
    /// non-retryable failure class) are plain failures, not dead letters.
    pub fn dead_letters(&self) -> Vec<JobId> {
        self.lifecycle
            .dead_letters
            .iter()
            .map(|name| JobId::new(name.as_str()))
            .collect()
    }

    /// Read-only access to the meta server.
    pub fn meta(&self) -> &MetaServer {
        &self.meta
    }

    /// Register a user-defined ranking strategy with the meta server, making
    /// it selectable by name from any [`JobRequest`].
    ///
    /// # Errors
    ///
    /// Returns an error when a strategy with the same name already exists.
    pub fn register_strategy(
        &mut self,
        strategy: Arc<dyn RankingStrategy>,
    ) -> Result<(), QrioError> {
        Ok(self.meta.register_strategy(strategy)?)
    }

    /// Report load telemetry for a set of devices to the meta server, so
    /// telemetry-aware strategies (`weighted`, `min_queue`) score against
    /// these numbers on the next [`Qrio::schedule`] call.
    ///
    /// [`Qrio::tick`] refreshes telemetry from the cluster registry itself;
    /// this hook exists for virtual-time simulators whose queue model — not
    /// the cluster's bound-job count — is the truth about device load.
    pub fn report_telemetry(
        &mut self,
        reports: impl IntoIterator<Item = (String, DeviceTelemetry)>,
    ) {
        let reports: Vec<(String, DeviceTelemetry)> = reports.into_iter().collect();
        self.report_telemetry_unjournaled(reports.iter().cloned());
        // Infallible signature: a journal failure poisons durability (see
        // `Qrio::durability_error`) instead of surfacing here. The journal
        // carries the *raw* reports; the breaker overlay is re-derived on
        // replay so it can never drift from the board's state.
        let _ = self.journal_command(Command::Telemetry { reports });
    }

    /// Apply telemetry reports, overlaying each device's circuit-breaker
    /// health penalty (when breakers are configured) before the meta server
    /// stores them. Shared by the public path and journal replay so both
    /// derive the identical overlay.
    fn report_telemetry_unjournaled(
        &mut self,
        reports: impl IntoIterator<Item = (String, DeviceTelemetry)>,
    ) {
        let overlaid: Vec<(String, DeviceTelemetry)> = reports
            .into_iter()
            .map(|(device, mut telemetry)| {
                if let Some(board) = &self.breakers {
                    telemetry.health_penalty = board.health_penalty(&device);
                }
                (device, telemetry)
            })
            .collect();
        self.meta.update_telemetry_bulk(overlaid);
    }

    /// Report the current per-node load (queue depth, classical utilization)
    /// from the cluster registry to the meta server. Runs automatically
    /// before every `tick()` admission decision.
    fn sync_telemetry(&mut self) {
        for (device, load) in self.cluster.node_loads() {
            let health_penalty = self
                .breakers
                .as_ref()
                .map_or(0.0, |board| board.health_penalty(&device));
            self.meta.update_telemetry(
                device,
                DeviceTelemetry {
                    queue_depth: load.active_jobs,
                    utilization: load.utilization(),
                    health_penalty,
                },
            );
        }
    }

    // --- Non-blocking lifecycle ----------------------------------------------------------

    /// Submit a job without blocking: upload its metadata to the meta server
    /// (strategy validation runs here), containerize it, push the image and
    /// admit the job to the scheduling queue. Returns as soon as the job is
    /// `Queued`; nothing has been scheduled or executed yet — drive the
    /// lifecycle with [`Qrio::tick`] / [`Qrio::run_until_idle`] and read the
    /// result with [`Qrio::outcome`].
    ///
    /// A job that later turns out to be unschedulable ends in
    /// [`JobState::Failed`] (observable via [`Qrio::status`]) — that is not
    /// an error of `enqueue` itself.
    ///
    /// # Errors
    ///
    /// Returns an error when the request is rejected up front: a duplicate
    /// job name, strategy validation failure, or an inconsistent request. No
    /// metadata or image is retained in that case.
    pub fn enqueue(&mut self, request: &JobRequest) -> Result<JobId, QrioError> {
        let id = self.enqueue_unjournaled(request)?;
        // Only successful admissions are journaled: every failure path above
        // rolls back fully, so replaying the successes alone reproduces the
        // exact state — and rejected requests never burden recovery.
        self.journal_command(Command::Enqueue {
            request: Box::new(request.clone()),
        })?;
        Ok(id)
    }

    fn enqueue_unjournaled(&mut self, request: &JobRequest) -> Result<JobId, QrioError> {
        if self.cluster.job(&request.job_name).is_some() {
            return Err(QrioError::Cluster(ClusterError::DuplicateJob(
                request.job_name.clone(),
            )));
        }
        // 0. Optional pre-admission gate: reject doomed requests before any
        //    metadata, image or lifecycle state exists for them.
        if let Some(gate) = &self.admission_gate {
            let fleet: Vec<Backend> = self.cluster.nodes().map(|n| n.backend().clone()).collect();
            if let Err(reason) = gate.check(request, &fleet) {
                return Err(QrioError::AdmissionRejected {
                    job: request.job_name.clone(),
                    reason,
                });
            }
        }
        // 1. Visualizer → meta server: upload the job metadata (Table 1,
        //    generalized): the strategy reference plus the circuit when one
        //    was provided. The strategy's own validation hook runs here.
        let qasm_text = (!request.qasm.is_empty()).then_some(request.qasm.as_str());
        self.meta
            .upload_job_metadata(&request.job_name, &request.strategy, qasm_text)?;

        // 2. Visualizer → master server: containerize and create the job
        //    spec. A failure here must not leak the metadata uploaded above.
        let containerized = match containerize(request) {
            Ok(containerized) => containerized,
            Err(err) => {
                self.meta.remove_job_metadata(&request.job_name);
                return Err(err);
            }
        };
        let image_name = containerized.image.name().to_string();
        self.cluster.push_image(containerized.image);
        // Currently unreachable (submit_job only fails on DuplicateJob,
        // pre-checked above) — kept as rollback defense in case the
        // cluster's submission surface grows more failure modes.
        if let Err(err) = self.cluster.submit_job(containerized.spec) {
            self.meta.remove_job_metadata(&request.job_name);
            self.remove_image_if_unreferenced(&image_name, &request.job_name);
            return Err(err.into());
        }

        // 3. Lifecycle bookkeeping: Submitted → Queued, admission queue.
        //    The deadline is anchored to the admission clock here.
        self.lifecycle
            .admit_new(&request.job_name, request.priority, request.deadline);
        Ok(JobId::new(&request.job_name))
    }

    /// Enqueue a whole batch, returning one result per request in order.
    /// A rejected request (duplicate name, invalid strategy...) does not
    /// abort the rest of the batch.
    pub fn enqueue_all<'r>(
        &mut self,
        requests: impl IntoIterator<Item = &'r JobRequest>,
    ) -> Vec<Result<JobId, QrioError>> {
        requests.into_iter().map(|r| self.enqueue(r)).collect()
    }

    /// Cancel a job that has not started running.
    ///
    /// `Queued` jobs leave the admission queue; `Scheduled` jobs release
    /// their device binding and reserved resources; `Retrying` jobs are
    /// withdrawn mid-backoff. Either way the job ends in
    /// [`JobState::Cancelled`] and its metadata and image are garbage-
    /// collected.
    ///
    /// # Errors
    ///
    /// Deterministically returns [`ClusterError::PhaseConflict`] (wrapped)
    /// for jobs that are `Running` or already terminal — cancellation never
    /// rewrites history — and an unknown-job error for ids never enqueued.
    pub fn cancel(&mut self, id: &JobId) -> Result<(), QrioError> {
        self.cancel_unjournaled(id)?;
        // Failed cancellations mutate nothing, so only successes are
        // journaled.
        self.journal_command(Command::Cancel {
            job: id.to_string(),
        })?;
        Ok(())
    }

    fn cancel_unjournaled(&mut self, id: &JobId) -> Result<(), QrioError> {
        let status = self.job_status(id)?;
        let state = status.state;
        // The event names the device whose binding the cancellation frees
        // (None for jobs cancelled before they were bound).
        let node = status.node.clone();
        match state {
            // A Retrying job is cancellable mid-backoff: its cluster record
            // is back in `Pending` (requeued at the retry decision), so the
            // cluster's Pending arm handles it.
            JobState::Queued | JobState::Scheduled | JobState::Retrying => {
                self.cluster.cancel_job(id.as_str(), "cancelled by user")?;
                self.lifecycle.remove_pending(id.as_str());
                self.lifecycle.remove_from_device_queues(id.as_str());
                self.lifecycle.record(
                    id.as_str(),
                    JobState::Cancelled,
                    node,
                    Some("cancelled by user".to_string()),
                );
                self.cleanup_terminal(id.as_str());
                Ok(())
            }
            other => Err(QrioError::Cluster(ClusterError::PhaseConflict {
                job: id.to_string(),
                action: "cancel".to_string(),
                phase: other.to_string(),
            })),
        }
    }

    /// The current lifecycle state of a job.
    ///
    /// # Errors
    ///
    /// Returns an error for ids that were never enqueued.
    pub fn status(&self, id: &JobId) -> Result<JobState, QrioError> {
        Ok(self.job_status(id)?.state)
    }

    /// The full status snapshot of a job: state, node, reason, priority and
    /// the timestamped transition history.
    ///
    /// # Errors
    ///
    /// Returns an error for ids that were never enqueued.
    pub fn job_status(&self, id: &JobId) -> Result<&JobStatus, QrioError> {
        self.lifecycle
            .jobs
            .get(id.as_str())
            .map(|tracked| &tracked.status)
            .ok_or_else(|| QrioError::UnknownJob(id.to_string()))
    }

    /// The outcome of a job that ran to completion.
    ///
    /// # Errors
    ///
    /// For a `Failed` job this returns the original failure (the same error
    /// the blocking `submit` would have surfaced); for a `Cancelled` job a
    /// [`QrioError::JobCancelled`]; for a job still in flight a
    /// [`QrioError::JobNotFinished`].
    pub fn outcome(&self, id: &JobId) -> Result<JobOutcome, QrioError> {
        let tracked = self
            .lifecycle
            .jobs
            .get(id.as_str())
            .ok_or_else(|| QrioError::UnknownJob(id.to_string()))?;
        match tracked.status.state {
            JobState::Succeeded => {
                let job = self
                    .cluster
                    .job(id.as_str())
                    .expect("succeeded jobs stay in the cluster store");
                Ok(JobOutcome {
                    decision: tracked
                        .decision
                        .clone()
                        .expect("succeeded jobs were scheduled"),
                    counts: job.result_counts().to_vec(),
                    achieved_fidelity: job.achieved_fidelity(),
                    logs: job.logs().to_vec(),
                })
            }
            JobState::Cancelled => Err(QrioError::JobCancelled(id.to_string())),
            JobState::Failed => Err(tracked.failure.clone().unwrap_or_else(|| {
                QrioError::Cluster(ClusterError::ExecutionFailed {
                    job: id.to_string(),
                    reason: tracked
                        .status
                        .reason
                        .clone()
                        .unwrap_or_else(|| "job failed".to_string()),
                })
            })),
            _ => Err(QrioError::JobNotFinished(id.to_string())),
        }
    }

    /// The watch log from `cursor` onward — every [`JobEvent`] with
    /// `seq >= cursor`, in order. Pass `0` for the full history; pass the
    /// previous `last.seq + 1` (or the running event count) to resume
    /// without missing or duplicating events, Kubernetes-watch style.
    ///
    /// # Beyond-the-end cursors
    ///
    /// A cursor at or past the end of the log is **not** an error: it is
    /// clamped to the log length and yields an empty slice. `watch(len)`,
    /// `watch(len + 1)` and `watch(u64::MAX)` all return `&[]` — so a poller
    /// that resumes from `last.seq + 1` reads "no new events yet" rather
    /// than panicking when nothing happened between polls. This contract is
    /// pinned by a test and will not change to a typed error.
    pub fn watch(&self, cursor: u64) -> &[JobEvent] {
        let start = (cursor as usize).min(self.lifecycle.events.len());
        &self.lifecycle.events[start..]
    }

    /// The virtual timestamp of the service loop: how many [`Qrio::tick`]
    /// cycles have run.
    pub fn now(&self) -> u64 {
        self.lifecycle.clock
    }

    // --- Service loop --------------------------------------------------------------------

    /// Run one deterministic service cycle.
    ///
    /// 1. **Admission**: the queue drains in priority order (FIFO within a
    ///    priority; ties never depend on map iteration order). Each job is
    ///    bound via filter + meta-server ranking against fresh cluster
    ///    telemetry. Jobs no device can host *right now* stay `Queued`; jobs
    ///    no device could *ever* host end `Failed`.
    /// 2. **Execution**: each device (in name order) runs the head of its
    ///    queue to completion.
    pub fn tick(&mut self) -> TickReport {
        let report = self.tick_unjournaled();
        // Infallible signature: a journal failure poisons durability (see
        // `Qrio::durability_error`) instead of surfacing here.
        let _ = self.journal_command(Command::Tick);
        report
    }

    fn tick_unjournaled(&mut self) -> TickReport {
        self.lifecycle.clock += 1;
        let mut report = TickReport {
            tick: self.lifecycle.clock,
            ..TickReport::default()
        };
        // Circuit breakers: every Open breaker whose timer expired moves to
        // HalfOpen and its device is uncordoned for probation.
        if let Some(board) = self.breakers.as_mut() {
            for device in board.tick(self.lifecycle.clock) {
                if let Some(node) = self.cluster.node_mut(&device) {
                    node.uncordon();
                }
            }
        }
        // Deadline expiry: Queued / Retrying jobs past their deadline fail
        // with DeadlineExceeded before anything else happens this cycle —
        // the deadline dominates an elapsed backoff.
        for name in self.expired_deadline_jobs() {
            self.expire_deadline(&name);
            report.expired.push(JobId::new(&name));
        }
        // Retry promotion: Retrying jobs whose backoff elapsed re-enter the
        // admission queue with a fresh admission sequence.
        for name in self.due_retry_jobs() {
            let priority = self.lifecycle.jobs[&name].status.priority;
            self.lifecycle.record(
                &name,
                JobState::Queued,
                None,
                Some("backoff elapsed; re-queued for retry".to_string()),
            );
            self.lifecycle.enqueue_pending(&name, priority);
        }
        // Admission.
        for name in self.lifecycle.pending_in_order() {
            match self.admit_and_bind(&name, false) {
                Admitted::Scheduled(_) => report.scheduled.push(JobId::new(&name)),
                Admitted::Deferred => report.deferred.push(JobId::new(&name)),
                Admitted::Failed => report.failed.push(JobId::new(&name)),
            }
        }
        // Execution, as a reconcile step: diff the desired-state table (the
        // head of every device queue is the binding that *should* run now)
        // against the observed per-node reports, then emit one `Run` command
        // per planned pair — one job per device per tick, device-name order.
        for (device, name) in self.plan_executions() {
            let popped = self
                .lifecycle
                .device_queues
                .get_mut(&device)
                .and_then(|queue| queue.pop_front());
            debug_assert_eq!(popped.as_deref(), Some(name.as_str()));
            let _ = self.execute_bound(&name);
            report.completed.push(JobId::new(&name));
        }
        self.lifecycle
            .device_queues
            .retain(|_, queue| !queue.is_empty());
        // Fold any still-unread reports (fire-and-forget acknowledgements,
        // telemetry) into the observed table. With real worker threads these
        // may lag the commands that caused them; this is where stale
        // observations converge.
        self.control.drain();
        report
    }

    /// The reconcile diff: the next `(device, job)` pair to dispatch for
    /// every device, in name order. Desired state is the head of each device
    /// queue; a device whose last observed report shows an unfinished run is
    /// skipped until its phase report lands (with the blocking round-trip
    /// dispatch below this never triggers, but the plan stays correct for
    /// transports that acknowledge asynchronously).
    fn plan_executions(&self) -> Vec<(String, String)> {
        self.lifecycle
            .device_queues
            .iter()
            .filter_map(|(device, queue)| {
                let job = queue.front()?;
                Some((device.clone(), job.clone()))
            })
            .collect()
    }

    /// Queued / Retrying jobs whose absolute deadline has passed, in name
    /// order (deterministic: `lifecycle.jobs` is a sorted map).
    fn expired_deadline_jobs(&self) -> Vec<String> {
        let now = self.lifecycle.clock;
        self.lifecycle
            .jobs
            .iter()
            .filter(|(_, tracked)| {
                matches!(tracked.status.state, JobState::Queued | JobState::Retrying)
                    && tracked.deadline_at.is_some_and(|at| now > at)
            })
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Retrying jobs whose backoff horizon has been reached, in name order.
    fn due_retry_jobs(&self) -> Vec<String> {
        let now = self.lifecycle.clock;
        self.lifecycle
            .jobs
            .iter()
            .filter(|(_, tracked)| {
                tracked.status.state == JobState::Retrying && tracked.not_before <= now
            })
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Terminally fail a Queued / Retrying job whose deadline passed.
    fn expire_deadline(&mut self, name: &str) {
        let tracked = &self.lifecycle.jobs[name];
        let deadline = tracked.deadline_at.expect("expired jobs carry a deadline");
        let node = tracked.status.node.clone();
        let err = QrioError::Cluster(ClusterError::DeadlineExceeded {
            job: name.to_string(),
            deadline,
        });
        // The cluster job is `Pending` in both source states (Queued before
        // scheduling; Retrying jobs were requeued at the retry decision) —
        // withdraw it so the cluster queue and logs agree.
        let _ = self
            .cluster
            .cancel_job(name, format!("deadline exceeded at t={deadline}"));
        self.lifecycle.remove_pending(name);
        self.lifecycle.remove_from_device_queues(name);
        self.lifecycle
            .record(name, JobState::Failed, node, Some(err.to_string()));
        if let Some(tracked) = self.lifecycle.jobs.get_mut(name) {
            tracked.failure = Some(err);
        }
        self.cleanup_terminal(name);
    }

    /// Tick until every enqueued job reached a terminal state. When a cycle
    /// makes no progress (jobs deferred forever — e.g. waiting on a device
    /// that stays cordoned), the stragglers are deterministically failed
    /// rather than spinning. Returns the ids of the jobs that reached a
    /// terminal state during this call, in event order.
    pub fn run_until_idle(&mut self) -> Vec<JobId> {
        let first_new_event = self.lifecycle.events.len();
        let mut force_next = false;
        while self.lifecycle.has_pending()
            || self.lifecycle.has_bound_work()
            || self.lifecycle.has_waiting_retries()
        {
            if force_next {
                // Fixed point: nothing scheduled, ran or failed last cycle.
                // Force an admission verdict for every straggler: either it
                // schedules after all, or the cluster records why it cannot.
                // (Jobs waiting out a retry backoff are not stragglers —
                // ticking the clock forward is exactly their progress.)
                for name in self.lifecycle.pending_in_order() {
                    let _ = self.force_admit(&name);
                }
                if self.lifecycle.has_pending()
                    && !self.lifecycle.has_bound_work()
                    && !self.lifecycle.has_waiting_retries()
                {
                    break; // Defensive: nothing more can change.
                }
            }
            let report = self.tick();
            force_next = !report.made_progress();
        }
        self.lifecycle.events[first_new_event..]
            .iter()
            .filter(|event| event.to.is_terminal())
            .map(|event| event.job.clone())
            .collect()
    }

    /// A forced admission verdict for one straggler, journaled so recovery
    /// replays the fixed-point arms of `run_until_idle` / `submit` exactly.
    fn force_admit(&mut self, name: &str) -> Admitted {
        let verdict = self.admit_and_bind(name, true);
        // Infallible signature: a journal failure poisons durability.
        let _ = self.journal_command(Command::ForceAdmit {
            job: name.to_string(),
        });
        verdict
    }

    /// Admit one queued job and, when it schedules, append it to the tail
    /// of its device's execution queue — the single bookkeeping path every
    /// service-loop admission (regular or forced) goes through.
    fn admit_and_bind(&mut self, name: &str, force: bool) -> Admitted {
        let verdict = self.admit(name, force);
        if let Admitted::Scheduled(device) = &verdict {
            self.lifecycle
                .device_queues
                .entry(device.clone())
                .or_default()
                .push_back(name.to_string());
        }
        verdict
    }

    /// Decide admission for one queued job. With `force`, a job that would
    /// be deferred is pushed through the scheduler anyway so it reaches a
    /// recorded verdict.
    fn admit(&mut self, name: &str, force: bool) -> Admitted {
        let spec = self
            .cluster
            .job(name)
            .expect("queued jobs exist in the cluster store")
            .spec()
            .clone();
        let filters = framework::default_filters();
        let feasible_now = self
            .cluster
            .ready_nodes()
            .any(|node| filters.iter().all(|f| f.filter(&spec, node).is_ok()));
        if !feasible_now && !force {
            // Resources may free up or a cordon may lift: stay Queued unless
            // no node could ever host the job. "Ever" is judged by the same
            // filter plugins, run against a pristine (idle, uncordoned)
            // replica of each node, so the Deferred/Failed split cannot
            // drift from the scheduler's real feasibility rules.
            let could_ever = self.cluster.nodes().any(|node| {
                let pristine = Node::from_backend(node.backend().clone(), node.capacity());
                filters.iter().all(|f| f.filter(&spec, &pristine).is_ok())
            });
            if could_ever {
                return Admitted::Deferred;
            }
        }
        self.sync_telemetry();
        match self.schedule_queued(name, &filters) {
            Ok(decision) => Admitted::Scheduled(decision.node),
            // A rejected binding is transient (schedule_queued left the job
            // Queued): report it as deferred, not failed, so the service
            // loop retries instead of mislabelling a live job.
            Err(QrioError::Cluster(ClusterError::BindingRejected { .. })) => Admitted::Deferred,
            Err(_) => Admitted::Failed,
        }
    }

    // --- Lifecycle primitives (also public for virtual-time simulators) ------------------

    /// Bind one `Queued` job to a device: filter the fleet, rank the
    /// survivors through the meta server, reserve resources on the winner.
    ///
    /// Unlike [`Qrio::tick`], this primitive does **not** refresh telemetry
    /// from the cluster registry first — it scores against whatever
    /// [`Qrio::report_telemetry`] last reported, which is exactly what
    /// virtual-time simulators need. A job bound through this primitive is
    /// the caller's to run (via [`Qrio::execute`]) — the `tick()` service
    /// loop only executes jobs it admitted itself.
    ///
    /// # Errors
    ///
    /// Returns an error when the job is not `Queued`, or when scheduling
    /// fails. An unschedulable job ends `Failed` (terminal); a job whose
    /// binding was rejected for transient resource reasons stays `Queued`.
    pub fn schedule(&mut self, id: &JobId) -> Result<ScheduleDecision, QrioError> {
        let result = self.schedule_unjournaled(id);
        // A scheduling attempt on a known job mutates state even when it
        // fails (Failed transitions, cluster filter events), so the command
        // is journaled on attempt — only unknown-job lookups (pure no-ops)
        // are skipped.
        if !matches!(result, Err(QrioError::UnknownJob(_))) {
            self.journal_command(Command::Schedule {
                job: id.to_string(),
            })?;
        }
        result
    }

    fn schedule_unjournaled(&mut self, id: &JobId) -> Result<ScheduleDecision, QrioError> {
        match self.status(id)? {
            JobState::Queued => self.schedule_queued(id.as_str(), &framework::default_filters()),
            other => Err(QrioError::Cluster(ClusterError::PhaseConflict {
                job: id.to_string(),
                action: "schedule".to_string(),
                phase: other.to_string(),
            })),
        }
    }

    /// Execute one `Scheduled` job on its bound device, driving it through
    /// `Running` to `Succeeded` or `Failed`.
    ///
    /// # Errors
    ///
    /// Returns an error when the job is not `Scheduled`, or propagates the
    /// execution failure (the job then ends `Failed`).
    pub fn execute(&mut self, id: &JobId) -> Result<(), QrioError> {
        let result = self.execute_unjournaled(id);
        // Same journaling rule as `schedule`: failed executions still drive
        // the job to `Failed`, so attempts on known jobs are journaled.
        if !matches!(result, Err(QrioError::UnknownJob(_))) {
            self.journal_command(Command::Execute {
                job: id.to_string(),
            })?;
        }
        result
    }

    fn execute_unjournaled(&mut self, id: &JobId) -> Result<(), QrioError> {
        match self.status(id)? {
            JobState::Scheduled => {
                self.lifecycle.remove_from_device_queues(id.as_str());
                self.execute_bound(id.as_str())
            }
            other => Err(QrioError::Cluster(ClusterError::PhaseConflict {
                job: id.to_string(),
                action: "execute".to_string(),
                phase: other.to_string(),
            })),
        }
    }

    /// Interrupt a `Scheduled` job whose device died under it: the job
    /// passes through `Running` straight into a device-flap fault without
    /// the runner being invoked, then flows through its retry policy like
    /// any other failure. Virtual-time simulators call this when an outage
    /// lands on a device with a job mid-execution, so the work is visibly
    /// lost (and retried) instead of silently completing.
    ///
    /// # Errors
    ///
    /// Always errs on success: the interrupt surfaces as
    /// [`ClusterError::InjectedFault`] (wrapped). Unknown ids and jobs not
    /// `Scheduled` report a phase conflict instead.
    pub fn interrupt(&mut self, id: &JobId) -> Result<(), QrioError> {
        let result = self.interrupt_unjournaled(id);
        // Same journaling rule as `execute`: the interrupt mutates state
        // whenever the job exists, so attempts on known jobs are journaled.
        if !matches!(result, Err(QrioError::UnknownJob(_))) {
            self.journal_command(Command::Interrupt {
                job: id.to_string(),
            })?;
        }
        result
    }

    fn interrupt_unjournaled(&mut self, id: &JobId) -> Result<(), QrioError> {
        match self.status(id)? {
            JobState::Scheduled => {
                let name = id.as_str();
                self.lifecycle.remove_from_device_queues(name);
                let node = self
                    .lifecycle
                    .jobs
                    .get(name)
                    .and_then(|tracked| tracked.status.node.clone());
                self.lifecycle
                    .record(name, JobState::Running, node.clone(), None);
                let attempt = self.lifecycle.jobs.get(name).map_or(0, |t| t.attempt);
                let result = self.cluster.interrupt_job(name, attempt);
                self.settle_execution(name, node, result)
            }
            other => Err(QrioError::Cluster(ClusterError::PhaseConflict {
                job: id.to_string(),
                action: "interrupt".to_string(),
                phase: other.to_string(),
            })),
        }
    }

    /// Promote a `Retrying` job straight to `Queued`, ignoring its backoff
    /// horizon — the retry primitive of virtual-time simulators, which own
    /// the backoff timing themselves (they model it in wall-clock
    /// milliseconds, not service-loop ticks) and never call [`Qrio::tick`].
    ///
    /// # Errors
    ///
    /// Returns a phase conflict for jobs not in `Retrying`, an unknown-job
    /// error for ids never enqueued, or the journal failure.
    pub fn kick_retry(&mut self, id: &JobId) -> Result<(), QrioError> {
        let result = self.kick_retry_unjournaled(id);
        if result.is_ok() {
            self.journal_command(Command::KickRetry {
                job: id.to_string(),
            })?;
        }
        result
    }

    fn kick_retry_unjournaled(&mut self, id: &JobId) -> Result<(), QrioError> {
        match self.status(id)? {
            JobState::Retrying => {
                let name = id.as_str();
                let priority = self.lifecycle.jobs[name].status.priority;
                self.lifecycle.record(
                    name,
                    JobState::Queued,
                    None,
                    Some("retry kicked; re-queued".to_string()),
                );
                self.lifecycle.enqueue_pending(name, priority);
                Ok(())
            }
            other => Err(QrioError::Cluster(ClusterError::PhaseConflict {
                job: id.to_string(),
                action: "kick_retry".to_string(),
                phase: other.to_string(),
            })),
        }
    }

    /// Force a device's `Open` circuit breaker into probation now,
    /// uncordoning the device — the breaker primitive of virtual-time
    /// simulators, which never call [`Qrio::tick`] (whose timer would
    /// otherwise probe automatically). Returns whether probation began
    /// (`false` when breakers are off or the breaker was not `Open`).
    ///
    /// # Errors
    ///
    /// Returns an error only when the journal append fails.
    pub fn probe_device(&mut self, device: &str) -> Result<bool, QrioError> {
        let probing = self.probe_device_unjournaled(device);
        if probing {
            self.journal_command(Command::Probe {
                device: device.to_string(),
            })?;
        }
        Ok(probing)
    }

    fn probe_device_unjournaled(&mut self, device: &str) -> bool {
        let Some(board) = self.breakers.as_mut() else {
            return false;
        };
        if board.force_probe(device, self.lifecycle.clock) {
            if let Some(node) = self.cluster.node_mut(device) {
                node.uncordon();
            }
            // Ask the agent for a fresh status frame so the observed table
            // reflects the probed node.
            let _ = self
                .control
                .send_command(device, self.lifecycle.clock, NodeCommand::Probe);
            self.control.drain();
            true
        } else {
            false
        }
    }

    /// A snapshot of the backends of every node currently able to accept
    /// work — the fleet [`Qrio::rank_ready`] ranks against. Callers
    /// re-ranking many jobs in one sweep should take this snapshot once and
    /// pass it to [`Qrio::rank_among`].
    pub fn ready_fleet(&self) -> Vec<Backend> {
        self.cluster
            .ready_nodes()
            .map(|node| node.backend().clone())
            .collect()
    }

    /// Re-rank a job over the currently-ready fleet, best (lowest score)
    /// first — the migration primitive: compare the fresh ranking against
    /// the job's current binding and [`Qrio::rebind`] when it improved.
    ///
    /// # Errors
    ///
    /// Same contract as the scheduler's rank: empty fleet, empty shortlist,
    /// missing metadata, or no scoreable device.
    pub fn rank_ready(&self, id: &JobId) -> Result<Vec<(String, f64)>, QrioError> {
        self.rank_among(id, &self.ready_fleet())
    }

    /// Re-rank a job over an explicit fleet snapshot (see
    /// [`Qrio::ready_fleet`]) — avoids re-cloning the fleet when many jobs
    /// are re-ranked in one drift/outage sweep.
    ///
    /// # Errors
    ///
    /// Same contract as [`Qrio::rank_ready`].
    pub fn rank_among(
        &self,
        id: &JobId,
        fleet: &[Backend],
    ) -> Result<Vec<(String, f64)>, QrioError> {
        let requirements = self
            .cluster
            .job(id.as_str())
            .ok_or_else(|| QrioError::UnknownJob(id.to_string()))?
            .spec()
            .requirements;
        let scheduler = QrioScheduler::new(&self.meta);
        let (ranked, _) = scheduler.rank(id.as_str(), fleet, &requirements)?;
        Ok(ranked)
    }

    /// Move a `Scheduled` (bound but not yet running) job to another device,
    /// releasing resources on the old node and reserving them on the new
    /// one. Rebinding a `Scheduled` job onto its current device is a no-op.
    /// The job stays `Scheduled`; the move is recorded in the watch log.
    ///
    /// # Errors
    ///
    /// Propagates the cluster's rebind errors (unknown job or node, wrong
    /// phase — including a same-device rebind of a job that is no longer
    /// `Scheduled` — target full); the original binding survives an error.
    pub fn rebind(&mut self, id: &JobId, target: &str) -> Result<(), QrioError> {
        let result = self.rebind_unjournaled(id, target);
        // Rebind attempts on known jobs may log cluster events even when
        // rejected, so they are journaled on attempt like `schedule`.
        if !matches!(result, Err(QrioError::UnknownJob(_))) {
            self.journal_command(Command::Rebind {
                job: id.to_string(),
                target: target.to_string(),
            })?;
        }
        result
    }

    fn rebind_unjournaled(&mut self, id: &JobId, target: &str) -> Result<(), QrioError> {
        let status = self.job_status(id)?;
        let from = status
            .node
            .clone()
            .unwrap_or_else(|| "<unbound>".to_string());
        // The no-op arc exists only for jobs that are actually rebindable;
        // anything else falls through so the cluster reports the phase
        // conflict instead of a silent Ok.
        if status.state == JobState::Scheduled && from == target {
            return Ok(());
        }
        self.cluster.rebind_job(id.as_str(), target)?;
        // Keep the tick()-loop queues consistent: the job leaves its old
        // device queue and joins the tail of the new one.
        let was_queued = self
            .lifecycle
            .device_queues
            .values()
            .any(|queue| queue.iter().any(|name| name == id.as_str()));
        self.lifecycle.remove_from_device_queues(id.as_str());
        if was_queued {
            self.lifecycle
                .device_queues
                .entry(target.to_string())
                .or_default()
                .push_back(id.as_str().to_string());
        }
        // The stored decision must follow the job: outcome() reports the
        // device that will actually run it. The candidate list keeps
        // documenting the original scheduling cycle; the score moves with
        // the node when that cycle ranked the target. A forced migration
        // outside the original ranking has no comparable score — infinity
        // marks it (sorting last under lower-is-better) without poisoning
        // the derived `PartialEq` the way NaN would.
        if let Some(decision) = self
            .lifecycle
            .jobs
            .get_mut(id.as_str())
            .and_then(|tracked| tracked.decision.as_mut())
        {
            decision.node = target.to_string();
            decision.score = decision
                .candidates
                .iter()
                .find(|(name, _)| name == target)
                .map_or(f64::INFINITY, |(_, score)| *score);
        }
        self.lifecycle.record(
            id.as_str(),
            JobState::Scheduled,
            Some(target.to_string()),
            Some(format!("rebound from '{from}' to '{target}'")),
        );
        Ok(())
    }

    /// Schedule a job known to be `Queued`, updating lifecycle state. The
    /// caller provides the filter chain so admission's feasibility probe
    /// and the scheduling cycle share one construction.
    fn schedule_queued(
        &mut self,
        name: &str,
        filters: &[Box<dyn framework::FilterPlugin>],
    ) -> Result<ScheduleDecision, QrioError> {
        let ranking = MetaRankingPlugin::new(&self.meta);
        match self.cluster.schedule_job(name, filters, &ranking) {
            Ok(decision) => {
                self.lifecycle.remove_pending(name);
                self.lifecycle
                    .record(name, JobState::Scheduled, Some(decision.node.clone()), None);
                if let Some(tracked) = self.lifecycle.jobs.get_mut(name) {
                    tracked.decision = Some(decision.clone());
                }
                Ok(decision)
            }
            Err(err @ ClusterError::BindingRejected { .. }) => {
                // Transient: the resources were claimed during scoring. The
                // job stays Queued and may be rescheduled later.
                Err(err.into())
            }
            Err(err) => {
                let qerr: QrioError = err.into();
                self.lifecycle.remove_pending(name);
                self.lifecycle
                    .record(name, JobState::Failed, None, Some(qerr.to_string()));
                if let Some(tracked) = self.lifecycle.jobs.get_mut(name) {
                    tracked.failure = Some(qerr.clone());
                }
                self.cleanup_terminal(name);
                Err(qerr)
            }
        }
    }

    /// Run a job known to be `Scheduled` (already removed from any device
    /// queue), updating lifecycle state. The attempt number passed to the
    /// cluster makes injected-fault decisions attempt-aware, so a retried
    /// job can draw a different verdict than its first run.
    fn execute_bound(&mut self, name: &str) -> Result<(), QrioError> {
        let node = self
            .lifecycle
            .jobs
            .get(name)
            .and_then(|tracked| tracked.status.node.clone());
        self.lifecycle
            .record(name, JobState::Running, node.clone(), None);
        let attempt = self.lifecycle.jobs.get(name).map_or(0, |t| t.attempt);
        let result = self.dispatch_attempt(name, attempt);
        self.settle_execution(name, node, result)
    }

    /// One execution attempt over the control plane: prepare the work order
    /// locally (phase check, image pull, `JobStarted`), ship it to the
    /// node's agent as an encoded `Run` envelope across the transport, block
    /// for the matching `Phase` report, and settle the verdict back into the
    /// cluster. The agent holds the fault-plan replica, so injected-fault
    /// verdicts are drawn device-side from the same pure decision function.
    fn dispatch_attempt(&mut self, name: &str, attempt: u32) -> Result<(), ClusterError> {
        let order = self.cluster.prepare_run(name, attempt)?;
        let verdict = self.control.run(&order, self.lifecycle.clock)?;
        self.cluster.settle_run(&order, verdict)
    }

    /// Fold one execution outcome into the lifecycle: feed the device's
    /// circuit breaker, then either record success, enter `Retrying` with a
    /// backoff horizon, or fail terminally (routing exhausted retry
    /// policies to the dead-letter queue). Shared by [`Qrio::execute`] /
    /// `tick()` execution and by [`Qrio::interrupt`].
    fn settle_execution(
        &mut self,
        name: &str,
        node: Option<String>,
        result: Result<(), ClusterError>,
    ) -> Result<(), QrioError> {
        // Every outcome on a device feeds its breaker; a trip cordons the
        // device so the scheduler steers around it.
        if let (Some(board), Some(device)) = (self.breakers.as_mut(), node.as_deref()) {
            let action = board.record_outcome(device, result.is_err(), self.lifecycle.clock);
            match action {
                Some(BreakerAction::Cordon) => {
                    if let Some(node) = self.cluster.node_mut(device) {
                        node.cordon();
                    }
                }
                Some(BreakerAction::Uncordon) => {
                    if let Some(node) = self.cluster.node_mut(device) {
                        node.uncordon();
                    }
                }
                None => {}
            }
        }
        match result {
            Ok(()) => {
                if let Some(tracked) = self.lifecycle.jobs.get_mut(name) {
                    tracked.attempt += 1;
                }
                self.lifecycle.record(name, JobState::Succeeded, node, None);
                Ok(())
            }
            Err(err) => {
                let policy = self.cluster.job(name).and_then(|job| job.spec().retry);
                let consumed = self.lifecycle.jobs.get(name).map_or(0, |t| t.attempt) + 1;
                if let Some(tracked) = self.lifecycle.jobs.get_mut(name) {
                    tracked.attempt = consumed;
                }
                let retryable = policy.is_some_and(|policy| {
                    consumed < policy.max_attempts && policy.retry_on.matches(&err)
                });
                let qerr: QrioError = err.into();
                if retryable {
                    let policy = policy.expect("retryable implies a policy");
                    // Backoff is a pure function of (seed, job, attempt) —
                    // byte-identical on journal replay. At least one tick so
                    // the job never re-queues within the same cycle.
                    let delay = policy
                        .backoff
                        .delay(self.runner.seed, name, consumed)
                        .max(1);
                    let not_before = self.lifecycle.clock + delay;
                    if let Some(tracked) = self.lifecycle.jobs.get_mut(name) {
                        tracked.not_before = not_before;
                    }
                    self.lifecycle.record(
                        name,
                        JobState::Retrying,
                        node,
                        Some(format!(
                            "attempt {consumed} failed: {qerr}; backing off {delay} ticks"
                        )),
                    );
                    // The cluster job goes back to Pending now; the
                    // lifecycle gate (Retrying until not_before) decides
                    // when it may actually re-bind.
                    let _ = self.cluster.requeue_job(name);
                } else {
                    self.lifecycle
                        .record(name, JobState::Failed, node, Some(qerr.to_string()));
                    if let Some(tracked) = self.lifecycle.jobs.get_mut(name) {
                        tracked.failure = Some(qerr.clone());
                    }
                    // A job that consumed every allowed attempt is a dead
                    // letter; one that failed on a non-retryable class (or
                    // had no policy) is a plain failure.
                    if policy.is_some_and(|policy| consumed >= policy.max_attempts) {
                        self.lifecycle.dead_letters.push(name.to_string());
                    }
                    self.cleanup_terminal(name);
                }
                Err(qerr)
            }
        }
    }

    /// Garbage-collect the artifacts of a job that reached a terminal
    /// failure or cancellation: its metadata leaves the meta server and its
    /// image leaves the registry (unless another live job still references
    /// the same image). The cluster's job record — phase, logs — survives as
    /// the queryable history.
    fn cleanup_terminal(&mut self, name: &str) {
        self.meta.remove_job_metadata(name);
        if let Some(image) = self.cluster.job(name).map(|job| job.spec().image.clone()) {
            self.remove_image_if_unreferenced(&image, name);
        }
    }

    /// Remove `image` from the registry unless a different non-terminal job
    /// still references it.
    fn remove_image_if_unreferenced(&mut self, image: &str, except_job: &str) {
        let referenced = self.cluster.jobs().any(|job| {
            job.name() != except_job && !job.phase().is_terminal() && job.spec().image == image
        });
        if !referenced {
            self.cluster.remove_image(image);
        }
    }

    // --- Durability ----------------------------------------------------------------------

    /// Turn on crash recovery: create a write-ahead journal at `path`
    /// (truncating any previous file there), write a genesis snapshot of the
    /// current state, and from now on journal every mutation before it is
    /// acknowledged. Recover later with [`Qrio::recover`].
    ///
    /// Custom ranking strategies and admission gates are live trait objects
    /// and are **not** journaled — deployments that install them must
    /// re-install them through [`Qrio::recover_with`]'s setup hook.
    ///
    /// # Errors
    ///
    /// Returns an error when durability is already enabled or when the
    /// journal file cannot be created or written.
    pub fn enable_durability(
        &mut self,
        path: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<(), QrioError> {
        if self.durability.is_some() {
            return Err(QrioError::InvalidRequest(
                "durability is already enabled".into(),
            ));
        }
        let journal = Journal::create(path.as_ref()).map_err(DurabilityError::Journal)?;
        self.durability = Some(Durability::new(
            journal,
            config.snapshot_every,
            config.sync_every_n_commands,
            config.compact_above_bytes,
            self.lifecycle.events.len() as u64,
        ));
        self.write_snapshot()?;
        Ok(())
    }

    /// Detach the journal, returning to in-memory-only operation. Returns
    /// the sticky durability error when the journal had already failed.
    /// The journal file is left on disk and stays recoverable up to the
    /// last successfully journaled command.
    pub fn disable_durability(&mut self) -> Option<DurabilityError> {
        self.durability
            .take()
            .and_then(|durability| durability.error().cloned())
    }

    /// Whether durability is enabled (and the journal has not been
    /// detached).
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// The sticky journal failure, if any. Infallible journaled operations
    /// ([`Qrio::tick`], [`Qrio::report_telemetry`]) cannot surface a journal
    /// error through their signatures — they poison durability instead, and
    /// this accessor is how a durable deployment notices.
    pub fn durability_error(&self) -> Option<&DurabilityError> {
        self.durability.as_ref().and_then(Durability::error)
    }

    /// Force the journal's bytes down to the storage device (`fdatasync`).
    /// Appends are write-through to the OS on every command, which survives
    /// process crashes; syncing additionally survives power loss. Virtual-
    /// time simulations typically never call this.
    ///
    /// # Errors
    ///
    /// Returns the sticky durability error, or the sync failure.
    pub fn sync_journal(&mut self) -> Result<(), QrioError> {
        match self.durability.as_mut() {
            Some(durability) => Ok(durability.sync()?),
            None => Ok(()),
        }
    }

    /// Write a snapshot record now, regardless of the configured cadence.
    ///
    /// # Errors
    ///
    /// Returns the sticky durability error, or the append failure.
    pub fn snapshot_now(&mut self) -> Result<(), QrioError> {
        self.write_snapshot()?;
        Ok(())
    }

    /// Journal one command plus the watch-log events it produced, then write
    /// a snapshot when the cadence says one is due. A no-op without
    /// durability.
    fn journal_command(&mut self, cmd: Command) -> Result<(), QrioError> {
        let Some(durability) = self.durability.as_mut() else {
            return Ok(());
        };
        durability.log_command(&cmd, &self.lifecycle.events)?;
        if durability.snapshot_due() {
            self.write_snapshot()?;
        }
        Ok(())
    }

    /// Capture the full orchestrator state as a snapshot payload.
    fn export_snapshot(&self) -> SnapshotState {
        SnapshotState {
            cursor: self.lifecycle.events.len() as u64,
            lifecycle: self.lifecycle.clone(),
            cluster: self.cluster.export_state(),
            meta: self.meta.export_state(),
            runner_seed: self.runner.seed,
            default_node_resources: self.default_node_resources,
            snapshot_every: self
                .durability
                .as_ref()
                .map_or(0, Durability::snapshot_every),
            sync_every: self.durability.as_ref().map_or(0, Durability::sync_every),
            compact_above: self
                .durability
                .as_ref()
                .map_or(0, Durability::compact_above),
            breakers: self.breakers.clone(),
        }
    }

    fn write_snapshot(&mut self) -> Result<(), DurabilityError> {
        if self.durability.is_none() {
            return Ok(());
        }
        let snapshot = self.export_snapshot();
        self.durability
            .as_mut()
            .expect("checked above")
            .log_snapshot(&snapshot)
    }

    /// Rebuild an orchestrator from a decoded snapshot. No journal is
    /// attached yet; the caller wires that after replay.
    fn from_snapshot(snapshot: SnapshotState) -> Self {
        let mut qrio = Qrio {
            cluster: Cluster::from_state(snapshot.cluster),
            meta: MetaServer::from_state(snapshot.meta),
            runner: SimJobRunner::new(snapshot.runner_seed),
            default_node_resources: snapshot.default_node_resources,
            lifecycle: snapshot.lifecycle,
            admission_gate: None,
            durability: None,
            breakers: snapshot.breakers,
            control: ControlPlane::new_in_proc(),
        };
        // Snapshots carry no agent state: agents are pure functions of their
        // command streams, so rebuilding them from the restored cluster and
        // re-binding calibration + fault plan reproduces them exactly.
        qrio.rebuild_agents();
        qrio
    }

    /// Re-apply one journaled command during recovery. Results are
    /// deliberately ignored: the original run journaled the command after
    /// observing the same deterministic outcome, and the event-history
    /// verification after replay catches any true divergence.
    fn apply_command(&mut self, cmd: Command) -> Result<(), DurabilityError> {
        match cmd {
            Command::AddDevice {
                spec_text,
                resources,
            } => {
                let backend = backend_spec::from_spec(&spec_text)
                    .map_err(|err| DurabilityError::Malformed(format!("backend spec: {err}")))?;
                let _ = self.add_device_unjournaled(backend, resources);
            }
            Command::Recalibrate { spec_text } => {
                let backend = backend_spec::from_spec(&spec_text)
                    .map_err(|err| DurabilityError::Malformed(format!("backend spec: {err}")))?;
                let _ = self.recalibrate_unjournaled(backend);
            }
            Command::Telemetry { reports } => {
                self.report_telemetry_unjournaled(reports);
            }
            Command::Enqueue { request } => {
                let _ = self.enqueue_unjournaled(&request);
            }
            Command::Cancel { job } => {
                let _ = self.cancel_unjournaled(&JobId::new(&job));
            }
            Command::Tick => {
                let _ = self.tick_unjournaled();
            }
            Command::ForceAdmit { job } => {
                let _ = self.admit_and_bind(&job, true);
            }
            Command::Schedule { job } => {
                let _ = self.schedule_unjournaled(&JobId::new(&job));
            }
            Command::Execute { job } => {
                let _ = self.execute_unjournaled(&JobId::new(&job));
            }
            Command::Rebind { job, target } => {
                let _ = self.rebind_unjournaled(&JobId::new(&job), &target);
            }
            Command::Cordon { node } => {
                if let Some(node) = self.cluster.node_mut(&node) {
                    node.cordon();
                }
            }
            Command::Uncordon { node } => {
                if let Some(node) = self.cluster.node_mut(&node) {
                    node.uncordon();
                }
            }
            Command::Heal => {
                let _ = self.cluster.heal_nodes();
            }
            Command::ConfigureFaults { injector } => {
                self.configure_faults_unjournaled(injector);
            }
            Command::ConfigureBreakers { config } => {
                self.breakers = config.map(BreakerBoard::new);
            }
            Command::KickRetry { job } => {
                let _ = self.kick_retry_unjournaled(&JobId::new(&job));
            }
            Command::Interrupt { job } => {
                let _ = self.interrupt_unjournaled(&JobId::new(&job));
            }
            Command::Probe { device } => {
                let _ = self.probe_device_unjournaled(&device);
            }
        }
        Ok(())
    }

    /// Recover an orchestrator from a journal written by
    /// [`Qrio::enable_durability`]: truncate any torn tail, restore the last
    /// snapshot, replay the command tail, verify the replayed history
    /// against the journaled events, and re-attach the journal so the
    /// recovered instance keeps journaling where the crashed one stopped.
    ///
    /// The returned [`RecoveryReport`] is deterministic: recovering the same
    /// journal twice renders byte-identical reports.
    ///
    /// # Errors
    ///
    /// Returns an error when the file is not a journal, holds no snapshot,
    /// contains records this build cannot decode, or when replay fails to
    /// reproduce the journaled event history.
    pub fn recover(path: impl AsRef<Path>) -> Result<(Qrio, RecoveryReport), QrioError> {
        Qrio::recover_with(path, |_| Ok(()))
    }

    /// [`Qrio::recover`] with a setup hook that runs after the snapshot is
    /// restored and **before** the command tail is replayed. Use it to
    /// re-register custom ranking strategies (and re-install admission
    /// gates) that journaled jobs reference — they are live trait objects
    /// the journal cannot carry.
    ///
    /// # Errors
    ///
    /// As [`Qrio::recover`], plus any error the hook returns.
    pub fn recover_with(
        path: impl AsRef<Path>,
        setup: impl FnOnce(&mut Qrio) -> Result<(), QrioError>,
    ) -> Result<(Qrio, RecoveryReport), QrioError> {
        let (journal, scan) = Journal::open(path.as_ref()).map_err(DurabilityError::Journal)?;
        let snapshot_index = scan
            .records
            .iter()
            .rposition(|record| record.kind == RECORD_SNAPSHOT)
            .ok_or(DurabilityError::NoSnapshot)?;
        let snapshot_record = &scan.records[snapshot_index];
        if snapshot_record.version != RECORD_VERSION {
            return Err(QrioError::Durability(DurabilityError::UnsupportedRecord {
                kind: snapshot_record.kind,
                version: snapshot_record.version,
            }));
        }
        let snapshot = durability::decode_snapshot(&snapshot_record.payload)?;
        let cursor = snapshot.cursor;
        let snapshot_every = snapshot.snapshot_every;
        let sync_every = snapshot.sync_every;
        let compact_above = snapshot.compact_above;
        let mut qrio = Qrio::from_snapshot(snapshot);
        setup(&mut qrio)?;

        // Replay the command tail, collecting the journaled events alongside.
        let mut commands_replayed: u64 = 0;
        let mut journaled_tail: Vec<JobEvent> = Vec::new();
        for record in &scan.records[snapshot_index + 1..] {
            if record.version != RECORD_VERSION {
                return Err(QrioError::Durability(DurabilityError::UnsupportedRecord {
                    kind: record.kind,
                    version: record.version,
                }));
            }
            match record.kind {
                RECORD_COMMAND => {
                    let cmd = durability::decode_command(&record.payload)?;
                    qrio.apply_command(cmd)?;
                    commands_replayed += 1;
                }
                RECORD_EVENTS => {
                    journaled_tail.extend(durability::decode_events(&record.payload)?);
                }
                kind => {
                    return Err(QrioError::Durability(DurabilityError::UnsupportedRecord {
                        kind,
                        version: record.version,
                    }));
                }
            }
        }

        // Verify: replay must regenerate the journaled history exactly. The
        // journal may run *short* (events lost with a torn tail before their
        // command's acknowledgement was journaled never existed, and events
        // regenerated past the journaled prefix are healed below) but never
        // long or different.
        let regenerated = &qrio.lifecycle.events[cursor as usize..];
        if journaled_tail.len() > regenerated.len() {
            return Err(QrioError::Durability(DurabilityError::ReplayDivergence(
                format!(
                    "journal holds {} post-snapshot events but replay regenerated only {}",
                    journaled_tail.len(),
                    regenerated.len()
                ),
            )));
        }
        for (journaled, regenerated) in journaled_tail.iter().zip(regenerated.iter()) {
            if journaled != regenerated {
                return Err(QrioError::Durability(DurabilityError::ReplayDivergence(
                    format!(
                        "event seq {} replayed differently from the journal",
                        journaled.seq
                    ),
                )));
            }
        }
        let events_healed = (regenerated.len() - journaled_tail.len()) as u64;

        // Re-attach the journal: it already holds everything up to the
        // journaled prefix; heal the regenerated-but-unjournaled tail so the
        // on-disk history is whole again.
        let mut durability = Durability::new(
            journal,
            snapshot_every,
            sync_every,
            compact_above,
            cursor + journaled_tail.len() as u64,
        );
        if events_healed > 0 {
            durability.append_event_tail(&qrio.lifecycle.events)?;
        }
        let report = RecoveryReport {
            snapshot_cursor: cursor,
            commands_replayed,
            events_journaled: journaled_tail.len() as u64,
            events_regenerated: regenerated.len() as u64,
            events_healed,
            torn_tail: scan.torn.as_ref().map(|torn| (torn.offset, torn.trailing)),
            jobs: qrio.lifecycle.jobs.len() as u64,
            terminal_jobs: qrio
                .lifecycle
                .jobs
                .values()
                .filter(|tracked| tracked.status.state.is_terminal())
                .count() as u64,
        };
        qrio.durability = Some(durability);
        Ok((qrio, report))
    }

    /// Time-travel inspection: rebuild the orchestrator state as of a
    /// watch-log cursor, without attaching durability to the result.
    ///
    /// Starts from the latest journaled snapshot at or before `cursor` and
    /// replays commands until the watch log reaches it. Commands are atomic,
    /// so replay stops at the first command boundary `>=` the target (the
    /// [`ReplayCheckpoint`] records where it actually landed); a cursor past
    /// the journal's end replays everything. The returned instance is a
    /// read-only replica of history — it is live and can be driven forward,
    /// but nothing it does is journaled.
    ///
    /// # Errors
    ///
    /// As [`Qrio::recover`], plus [`DurabilityError::NoSnapshot`] when every
    /// journaled snapshot lies *after* the requested cursor (compaction may
    /// have dropped the history that covered it).
    pub fn replay_to(
        path: impl AsRef<Path>,
        cursor: u64,
    ) -> Result<(Qrio, ReplayCheckpoint), QrioError> {
        let (_journal, scan) = Journal::open(path.as_ref()).map_err(DurabilityError::Journal)?;

        // The latest snapshot that does not overshoot the target.
        let mut chosen: Option<(usize, u64)> = None;
        for (index, record) in scan.records.iter().enumerate() {
            if record.kind != RECORD_SNAPSHOT {
                continue;
            }
            if record.version != RECORD_VERSION {
                return Err(QrioError::Durability(DurabilityError::UnsupportedRecord {
                    kind: record.kind,
                    version: record.version,
                }));
            }
            let snap_cursor = durability::snapshot_cursor(&record.payload)?;
            if snap_cursor <= cursor {
                chosen = Some((index, snap_cursor));
            }
        }
        let (snapshot_index, snapshot_cursor) =
            chosen.ok_or(QrioError::Durability(DurabilityError::NoSnapshot))?;

        let snapshot = durability::decode_snapshot(&scan.records[snapshot_index].payload)?;
        let mut qrio = Qrio::from_snapshot(snapshot);
        let mut commands_replayed: u64 = 0;
        for record in &scan.records[snapshot_index + 1..] {
            if qrio.lifecycle.events.len() as u64 >= cursor {
                break;
            }
            if record.version != RECORD_VERSION {
                return Err(QrioError::Durability(DurabilityError::UnsupportedRecord {
                    kind: record.kind,
                    version: record.version,
                }));
            }
            match record.kind {
                RECORD_COMMAND => {
                    let cmd = durability::decode_command(&record.payload)?;
                    qrio.apply_command(cmd)?;
                    commands_replayed += 1;
                }
                // Event acknowledgements and later snapshots carry no state
                // transitions of their own — replay regenerates the events.
                RECORD_EVENTS | RECORD_SNAPSHOT => {}
                kind => {
                    return Err(QrioError::Durability(DurabilityError::UnsupportedRecord {
                        kind,
                        version: record.version,
                    }));
                }
            }
        }

        let checkpoint = ReplayCheckpoint {
            target_cursor: cursor,
            snapshot_cursor,
            commands_replayed,
            reached_cursor: qrio.lifecycle.events.len() as u64,
        };
        Ok((qrio, checkpoint))
    }

    /// A deterministic, human-readable dump of the reconstructed state:
    /// clock, transport, the jobs table, scheduler queues, dead letters and
    /// the breaker board. The backbone of `qrio-lint --replay-to`, and
    /// byte-reproducible for identical states — diffable across replays.
    pub fn describe_state(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "clock     = {}", self.lifecycle.clock);
        let _ = writeln!(out, "transport = {}", self.transport_mode_name());
        let _ = writeln!(out, "events    = {}", self.lifecycle.events.len());

        let _ = writeln!(out, "jobs ({}):", self.lifecycle.jobs.len());
        for (name, tracked) in &self.lifecycle.jobs {
            let node = tracked
                .status
                .node
                .as_deref()
                .or(tracked.decision.as_ref().map(|d| d.node.as_str()))
                .unwrap_or("-");
            let _ = writeln!(
                out,
                "  {name}: {:?} prio={} attempt={} node={node}",
                tracked.status.state, tracked.status.priority, tracked.attempt
            );
        }

        let pending = self.lifecycle.pending_in_order();
        let _ = writeln!(out, "pending ({}):", pending.len());
        for name in &pending {
            let _ = writeln!(out, "  {name}");
        }

        let _ = writeln!(
            out,
            "device queues ({}):",
            self.lifecycle.device_queues.len()
        );
        for (device, queue) in &self.lifecycle.device_queues {
            let jobs: Vec<&str> = queue.iter().map(String::as_str).collect();
            let _ = writeln!(out, "  {device}: [{}]", jobs.join(", "));
        }

        let _ = writeln!(out, "dead letters ({}):", self.lifecycle.dead_letters.len());
        for name in &self.lifecycle.dead_letters {
            let _ = writeln!(out, "  {name}");
        }

        match self.breakers() {
            None => {
                let _ = writeln!(out, "breakers: disabled");
            }
            Some(board) => {
                let _ = writeln!(out, "breakers ({} transitions):", board.events().len());
                for device in board.breakers.keys() {
                    let _ = writeln!(
                        out,
                        "  {device}: {} trips={}",
                        board.state(device).name(),
                        board.trip_count(device)
                    );
                }
            }
        }
        out
    }

    // --- Blocking compatibility wrapper --------------------------------------------------

    /// Submit a job request and drive it to completion — the blocking
    /// convenience wrapper over the lifecycle API: [`Qrio::enqueue`], then
    /// [`Qrio::tick`] until *this* job is terminal, then [`Qrio::outcome`].
    ///
    /// Other queued work naturally advances while the loop runs (it shares
    /// the cluster), but only the submitted job is ever force-failed when
    /// it cannot make progress — jobs someone else enqueued are left
    /// `Queued` for their owner's service loop.
    ///
    /// # Errors
    ///
    /// Returns an error if any stage fails (no matching devices, execution
    /// failure, ...). The job object in the cluster records the failure too.
    pub fn submit(&mut self, request: &JobRequest) -> Result<JobOutcome, QrioError> {
        let id = self.enqueue(request)?;
        let mut stalled = false;
        while !self.status(&id)?.is_terminal() {
            let report = self.tick();
            if report.made_progress() {
                stalled = false;
                continue;
            }
            if stalled {
                break; // Defensive: a forced verdict changed nothing.
            }
            stalled = true;
            // Fixed point with this job still queued: force its admission
            // verdict (schedule after all, or a recorded failure).
            let _ = self.force_admit(id.as_str());
        }
        self.outcome(&id)
    }

    /// Fetch the logs of a previously-submitted job (what the visualizer's
    /// "check logs" button shows, §3.2).
    ///
    /// # Errors
    ///
    /// Returns an error if no such job exists.
    pub fn job_logs(&self, job_name: &str) -> Result<&[String], QrioError> {
        Ok(self.cluster.job_logs(job_name)?)
    }
}

impl Default for Qrio {
    fn default() -> Self {
        Qrio::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::visualizer::{JobRequestBuilder, TopologyDesigner};
    use qrio_backend::topology;
    use qrio_circuit::library;
    use qrio_cluster::{DeviceRequirements, JobPhase};

    fn small_qrio() -> Qrio {
        let mut qrio = Qrio::with_config(
            FidelityRankingConfig {
                shots: 128,
                seed: 5,
                shortfall_weight: 100.0,
            },
            7,
        );
        qrio.add_device(Backend::uniform("clean", topology::line(10), 0.001, 0.01))
            .unwrap();
        qrio.add_device(Backend::uniform("mid", topology::ring(10), 0.02, 0.15))
            .unwrap();
        qrio.add_device(Backend::uniform("noisy", topology::line(10), 0.05, 0.4))
            .unwrap();
        qrio
    }

    #[test]
    fn fidelity_job_end_to_end() {
        let mut qrio = small_qrio();
        let bv = library::bernstein_vazirani(6, 0b101101).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("bv-e2e")
            .fidelity_target(0.9)
            .shots(256)
            .build()
            .unwrap();
        let outcome = qrio.submit(&request).unwrap();
        assert_eq!(outcome.decision.node, "clean");
        assert!(outcome.achieved_fidelity.unwrap() > 0.8);
        assert!(!outcome.counts.is_empty());
        assert!(matches!(
            qrio.cluster().job("bv-e2e").unwrap().phase(),
            JobPhase::Succeeded { .. }
        ));
        assert!(!qrio.job_logs("bv-e2e").unwrap().is_empty());
        assert!(qrio.job_logs("missing").is_err());
    }

    #[test]
    fn topology_job_end_to_end_picks_matching_device() {
        let mut qrio = Qrio::with_config(
            FidelityRankingConfig {
                shots: 64,
                seed: 3,
                shortfall_weight: 100.0,
            },
            9,
        );
        qrio.add_device(Backend::uniform("ring-dev", topology::ring(10), 0.01, 0.05))
            .unwrap();
        qrio.add_device(Backend::uniform(
            "tree-dev",
            topology::binary_tree(10),
            0.01,
            0.05,
        ))
        .unwrap();
        qrio.add_device(Backend::uniform("line-dev", topology::line(10), 0.01, 0.05))
            .unwrap();

        let mut designer = TopologyDesigner::new(10);
        for (a, b) in topology::binary_tree(10).edges() {
            designer.connect(a, b).unwrap();
        }
        let request = JobRequestBuilder::new()
            .job_name("topo-e2e")
            .topology(&designer)
            .with_circuit(&library::ghz(10).unwrap())
            .build()
            .unwrap();
        let outcome = qrio.submit(&request).unwrap();
        assert_eq!(outcome.decision.node, "tree-dev");
    }

    #[test]
    fn requirements_can_make_a_job_unschedulable() {
        let mut qrio = small_qrio();
        let ghz = library::ghz(4).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&ghz)
            .job_name("impossible")
            .requirements(DeviceRequirements {
                max_two_qubit_error: Some(0.0001),
                ..DeviceRequirements::default()
            })
            .fidelity_target(0.99)
            .build()
            .unwrap();
        assert!(qrio.submit(&request).is_err());
        assert!(qrio
            .cluster()
            .job("impossible")
            .unwrap()
            .phase()
            .is_terminal());
        // The async view agrees: enqueue succeeded, the job ended Failed.
        assert_eq!(
            qrio.status(&JobId::new("impossible")).unwrap(),
            JobState::Failed
        );
    }

    #[test]
    fn duplicate_devices_are_rejected() {
        let mut qrio = small_qrio();
        assert!(qrio
            .add_device(Backend::uniform("clean", topology::line(4), 0.0, 0.0))
            .is_err());
    }

    #[test]
    fn enqueue_is_non_blocking_and_tick_drives_the_lifecycle() {
        let mut qrio = small_qrio();
        let bv = library::bernstein_vazirani(5, 0b10110).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("async-job")
            .fidelity_target(0.9)
            .shots(128)
            .build()
            .unwrap();
        let id = qrio.enqueue(&request).unwrap();
        assert_eq!(id.as_str(), "async-job");
        // Nothing has run yet: the job is Queued, the cluster job Pending.
        assert_eq!(qrio.status(&id).unwrap(), JobState::Queued);
        assert!(matches!(
            qrio.cluster().job("async-job").unwrap().phase(),
            JobPhase::Pending
        ));
        assert!(qrio.outcome(&id).is_err(), "no outcome before it runs");

        // One tick schedules *and* runs it (admission then execution).
        let report = qrio.tick();
        assert_eq!(report.tick, 1);
        assert_eq!(report.scheduled, vec![id.clone()]);
        assert_eq!(report.completed, vec![id.clone()]);
        assert_eq!(qrio.status(&id).unwrap(), JobState::Succeeded);
        let outcome = qrio.outcome(&id).unwrap();
        assert_eq!(outcome.decision.node, "clean");
        assert!(!outcome.counts.is_empty());

        // The transition history is complete, legal and timestamped.
        let history = &qrio.job_status(&id).unwrap().history;
        let states: Vec<JobState> = history.iter().map(|(_, s)| *s).collect();
        assert_eq!(
            states,
            vec![
                JobState::Submitted,
                JobState::Queued,
                JobState::Scheduled,
                JobState::Running,
                JobState::Succeeded
            ]
        );
        assert_eq!(history[0].0, 0, "enqueued before the first tick");
        assert_eq!(history[4].0, 1, "finished on tick 1");
    }

    #[test]
    fn watch_streams_events_from_any_cursor() {
        let mut qrio = small_qrio();
        let bv = library::bernstein_vazirani(4, 0b1011).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("watched")
            .fidelity_target(0.9)
            .shots(64)
            .build()
            .unwrap();
        let id = qrio.enqueue(&request).unwrap();
        let first = qrio.watch(0);
        assert_eq!(first.len(), 2, "Submitted + Queued");
        let cursor = first.last().unwrap().seq + 1;
        qrio.run_until_idle();
        let rest = qrio.watch(cursor);
        let states: Vec<JobState> = rest.iter().map(|e| e.to).collect();
        assert_eq!(
            states,
            vec![JobState::Scheduled, JobState::Running, JobState::Succeeded]
        );
        for event in rest {
            assert_eq!(event.job, id);
            assert!(event.from.unwrap().can_transition_to(event.to));
        }
        // Sequences are dense and the cursor never overshoots.
        assert_eq!(
            qrio.watch(0).len() as u64,
            qrio.watch(0).last().unwrap().seq + 1
        );
        assert!(qrio.watch(9999).is_empty());
    }

    #[test]
    fn duplicate_enqueue_is_rejected_without_leaking() {
        let mut qrio = small_qrio();
        let bv = library::bernstein_vazirani(4, 0b1011).unwrap();
        let request = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name("dup")
            .fidelity_target(0.9)
            .build()
            .unwrap();
        let _ = qrio.enqueue(&request).unwrap();
        let before_meta = qrio.meta().job_count();
        assert!(matches!(
            qrio.enqueue(&request),
            Err(QrioError::Cluster(ClusterError::DuplicateJob(_)))
        ));
        assert_eq!(qrio.meta().job_count(), before_meta);
        // The original job is unharmed and still runs to completion.
        qrio.run_until_idle();
        assert_eq!(
            qrio.status(&JobId::new("dup")).unwrap(),
            JobState::Succeeded
        );
    }

    #[test]
    fn unknown_job_ids_error_everywhere() {
        let mut qrio = small_qrio();
        let ghost = JobId::new("ghost");
        assert!(matches!(qrio.status(&ghost), Err(QrioError::UnknownJob(_))));
        assert!(qrio.job_status(&ghost).is_err());
        assert!(qrio.outcome(&ghost).is_err());
        assert!(qrio.cancel(&ghost).is_err());
        assert!(qrio.rank_ready(&ghost).is_err());
    }

    // --- Fault tolerance ----------------------------------------------------------------

    use crate::BreakerState;
    use qrio_cluster::{FaultKind, NodeStatus, RetryPolicy};

    /// An injector that faults every attempt with the given kind's rate at 1.
    fn always(kind: FaultKind) -> FaultInjector {
        let mut injector = FaultInjector {
            seed: 11,
            ..FaultInjector::default()
        };
        match kind {
            FaultKind::TransientExecution => injector.transient_rate = 1.0,
            FaultKind::CalibrationGlitch => injector.calibration_rate = 1.0,
            FaultKind::SlowJob => injector.slow_rate = 1.0,
            FaultKind::DeviceFlap => injector.flap_rate = 1.0,
        }
        injector
    }

    fn faulty_request(name: &str, retry: Option<RetryPolicy>, deadline: Option<u64>) -> JobRequest {
        let bv = library::bernstein_vazirani(5, 0b10110).unwrap();
        let mut builder = JobRequestBuilder::new()
            .with_circuit(&bv)
            .job_name(name)
            .fidelity_target(0.9)
            .shots(64);
        if let Some(policy) = retry {
            builder = builder.retry_policy(policy);
        }
        if let Some(ticks) = deadline {
            builder = builder.deadline(ticks);
        }
        builder.build().unwrap()
    }

    #[test]
    fn injected_fault_retries_then_succeeds_once_faults_clear() {
        let mut qrio = small_qrio();
        qrio.configure_faults(Some(always(FaultKind::TransientExecution)))
            .unwrap();
        let id = qrio
            .enqueue(&faulty_request(
                "flaky",
                Some(RetryPolicy::fixed(5, 2)),
                None,
            ))
            .unwrap();
        qrio.tick();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Retrying);
        let status = qrio.job_status(&id).unwrap();
        assert!(
            status.reason.as_deref().unwrap().contains("transient"),
            "reason names the fault: {:?}",
            status.reason
        );

        // The fault storm passes; the backoff elapses; the retry succeeds.
        qrio.configure_faults(None).unwrap();
        qrio.run_until_idle();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Succeeded);
        assert!(qrio.dead_letters().is_empty());
        let states: Vec<JobState> = qrio
            .job_status(&id)
            .unwrap()
            .history
            .iter()
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(
            states,
            vec![
                JobState::Submitted,
                JobState::Queued,
                JobState::Scheduled,
                JobState::Running,
                JobState::Retrying,
                JobState::Queued,
                JobState::Scheduled,
                JobState::Running,
                JobState::Succeeded,
            ]
        );
        // The outcome is a real one: counts from the successful attempt.
        assert!(!qrio.outcome(&id).unwrap().counts.is_empty());
    }

    #[test]
    fn exhausted_retries_dead_letter_the_job() {
        let mut qrio = small_qrio();
        qrio.configure_faults(Some(always(FaultKind::CalibrationGlitch)))
            .unwrap();
        let id = qrio
            .enqueue(&faulty_request(
                "doomed",
                Some(RetryPolicy::fixed(3, 1)),
                None,
            ))
            .unwrap();
        qrio.run_until_idle();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Failed);
        assert_eq!(qrio.dead_letters(), vec![id.clone()]);
        // Three attempts ran: two Retrying transitions, then the terminal one.
        let retries = qrio
            .watch(0)
            .iter()
            .filter(|e| e.job == id && e.to == JobState::Retrying)
            .count();
        assert_eq!(retries, 2);
        let status = qrio.job_status(&id).unwrap();
        assert!(status
            .reason
            .as_deref()
            .unwrap()
            .contains("calibration glitch"));
    }

    #[test]
    fn faults_without_a_policy_fail_fast_and_skip_the_dead_letter_queue() {
        let mut qrio = small_qrio();
        qrio.configure_faults(Some(always(FaultKind::TransientExecution)))
            .unwrap();
        let id = qrio
            .enqueue(&faulty_request("fragile", None, None))
            .unwrap();
        qrio.tick();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Failed);
        assert!(qrio.dead_letters().is_empty(), "no policy, no dead letter");
    }

    #[test]
    fn a_deadline_expires_a_job_stuck_in_backoff() {
        let mut qrio = small_qrio();
        qrio.configure_faults(Some(always(FaultKind::SlowJob)))
            .unwrap();
        let id = qrio
            .enqueue(&faulty_request(
                "late",
                Some(RetryPolicy::fixed(5, 100)),
                Some(3),
            ))
            .unwrap();
        qrio.run_until_idle();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Failed);
        let status = qrio.job_status(&id).unwrap();
        assert!(
            status.reason.as_deref().unwrap().contains("deadline"),
            "reason: {:?}",
            status.reason
        );
        assert!(
            qrio.dead_letters().is_empty(),
            "a blown deadline is not retry exhaustion"
        );
        // The expiry fired on the first tick past the absolute deadline, not
        // after the 100-tick backoff.
        let (at, _) = *qrio.job_status(&id).unwrap().history.last().unwrap();
        assert_eq!(at, 4, "deadline_at = 3, first tick with now > 3 is 4");
    }

    #[test]
    fn deadlines_are_inert_when_the_job_finishes_in_time() {
        let mut qrio = small_qrio();
        let id = qrio
            .enqueue(&faulty_request("prompt", None, Some(50)))
            .unwrap();
        qrio.run_until_idle();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Succeeded);
    }

    #[test]
    fn breaker_trips_cordon_and_the_tick_timer_probes_and_heals() {
        let mut qrio = Qrio::with_config(
            FidelityRankingConfig {
                shots: 64,
                seed: 5,
                shortfall_weight: 100.0,
            },
            7,
        );
        qrio.add_device(Backend::uniform("solo", topology::line(8), 0.01, 0.05))
            .unwrap();
        qrio.configure_breakers(Some(BreakerConfig {
            consecutive_failures: 2,
            failure_rate: 2.0,
            window: 8,
            open_ticks: 2,
            probe_jobs: 1,
        }))
        .unwrap();
        qrio.configure_faults(Some(always(FaultKind::TransientExecution)))
            .unwrap();

        let a = qrio.enqueue(&faulty_request("burn-a", None, None)).unwrap();
        let b = qrio.enqueue(&faulty_request("burn-b", None, None)).unwrap();
        qrio.tick(); // runs burn-a: failure 1
        qrio.tick(); // runs burn-b: failure 2 → breaker trips at t=2
        assert_eq!(qrio.status(&a).unwrap(), JobState::Failed);
        assert_eq!(qrio.status(&b).unwrap(), JobState::Failed);
        let board = qrio.breakers().unwrap();
        assert_eq!(board.trip_count("solo"), 1);
        assert!(matches!(
            board.state("solo"),
            BreakerState::Open { until: 4 }
        ));
        assert!(
            qrio.cluster().node("solo").unwrap().status() != NodeStatus::Ready,
            "tripped breaker cordons the device"
        );

        // While cordoned, the telemetry overlay reports the full penalty.
        qrio.report_telemetry([(
            "solo".to_string(),
            DeviceTelemetry {
                queue_depth: 0,
                utilization: 0.0,
                health_penalty: 0.0,
            },
        )]);
        let meta_state = qrio.meta().export_state();
        let (_, telemetry) = meta_state
            .telemetry
            .iter()
            .find(|(device, _)| device == "solo")
            .unwrap();
        assert_eq!(telemetry.health_penalty, 1.0);

        // The storm passes. A queued job waits out the open interval, the
        // timer probes at t=4, and the probe closes the breaker.
        qrio.configure_faults(None).unwrap();
        let c = qrio.enqueue(&faulty_request("after", None, None)).unwrap();
        qrio.tick(); // t=3: still open, job deferred
        assert_eq!(qrio.status(&c).unwrap(), JobState::Queued);
        qrio.tick(); // t=4: probation begins, job schedules and runs
        assert_eq!(qrio.status(&c).unwrap(), JobState::Succeeded);
        assert_eq!(qrio.breakers().unwrap().state("solo"), BreakerState::Closed);
        assert!(qrio.cluster().node("solo").unwrap().status() == NodeStatus::Ready);
    }

    #[test]
    fn probe_device_forces_probation_without_ticking() {
        let mut qrio = small_qrio();
        qrio.configure_breakers(Some(BreakerConfig {
            consecutive_failures: 1,
            failure_rate: 2.0,
            window: 4,
            open_ticks: 1_000_000,
            probe_jobs: 1,
        }))
        .unwrap();
        qrio.configure_faults(Some(always(FaultKind::TransientExecution)))
            .unwrap();
        let id = qrio
            .enqueue(&faulty_request("one-shot", None, None))
            .unwrap();
        qrio.tick();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Failed);
        let device = qrio.job_status(&id).unwrap().node.clone().unwrap();
        assert!(matches!(
            qrio.breakers().unwrap().state(&device),
            BreakerState::Open { .. }
        ));
        assert!(qrio.probe_device(&device).unwrap());
        assert_eq!(
            qrio.breakers().unwrap().state(&device),
            BreakerState::HalfOpen { successes: 0 }
        );
        assert!(qrio.cluster().node(&device).unwrap().status() == NodeStatus::Ready);
        // Probing a breaker that is not open reports false.
        assert!(!qrio.probe_device(&device).unwrap());
        assert!(!qrio.probe_device("no-such-device").unwrap());
    }

    #[test]
    fn interrupt_flaps_a_scheduled_job_and_kick_retry_requeues_it() {
        let mut qrio = small_qrio();
        let id = qrio
            .enqueue(&faulty_request(
                "cut-off",
                Some(RetryPolicy::fixed(3, 1_000)),
                None,
            ))
            .unwrap();
        // Interrupt requires a bound job.
        assert!(matches!(
            qrio.interrupt(&id),
            Err(QrioError::Cluster(ClusterError::PhaseConflict { .. }))
        ));
        qrio.schedule(&id).unwrap();
        let err = qrio.interrupt(&id).unwrap_err();
        assert!(matches!(
            err,
            QrioError::Cluster(ClusterError::InjectedFault {
                kind: FaultKind::DeviceFlap,
                ..
            })
        ));
        assert_eq!(qrio.status(&id).unwrap(), JobState::Retrying);

        // The backoff horizon is 1000 ticks away; kick_retry skips it.
        qrio.kick_retry(&id).unwrap();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Queued);
        assert!(matches!(
            qrio.kick_retry(&id),
            Err(QrioError::Cluster(ClusterError::PhaseConflict { .. }))
        ));

        // The flap marked the device not-ready; heal and finish the retry.
        qrio.heal_devices().unwrap();
        qrio.run_until_idle();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Succeeded);
    }

    #[test]
    fn retrying_jobs_can_be_cancelled() {
        let mut qrio = small_qrio();
        qrio.configure_faults(Some(always(FaultKind::TransientExecution)))
            .unwrap();
        let id = qrio
            .enqueue(&faulty_request(
                "abandoned",
                Some(RetryPolicy::fixed(5, 1_000)),
                None,
            ))
            .unwrap();
        qrio.tick();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Retrying);
        qrio.cancel(&id).unwrap();
        assert_eq!(qrio.status(&id).unwrap(), JobState::Cancelled);
        assert!(qrio.dead_letters().is_empty());
    }

    #[test]
    fn zero_penalty_breakers_leave_scores_and_routing_unchanged() {
        // The same workload with and without an (untripped) breaker board
        // must produce identical decisions — the penalty term is strictly
        // additive over a zero baseline.
        let run = |with_breakers: bool| -> Vec<String> {
            let mut qrio = small_qrio();
            if with_breakers {
                qrio.configure_breakers(Some(BreakerConfig::default()))
                    .unwrap();
            }
            let mut nodes = Vec::new();
            for name in ["w1", "w2", "w3"] {
                let id = qrio.enqueue(&faulty_request(name, None, None)).unwrap();
                qrio.run_until_idle();
                nodes.push(qrio.outcome(&id).unwrap().decision.node);
            }
            nodes
        };
        assert_eq!(run(false), run(true));
    }
}
