//! Experiment harness: reusable implementations of the paper's evaluation
//! scenarios (§4), shared by the `qrio-bench` figure binaries and the
//! integration tests.
//!
//! Each function reproduces one table or figure:
//!
//! * [`fig6_default_topologies`] — average score decrease of the QRIO
//!   scheduler over the random scheduler for the five default topologies.
//! * [`fig7_fidelity`] — achieved fidelity per benchmark circuit for the
//!   Oracle, Clifford (QRIO) and Random schedulers plus the fleet average and
//!   median.
//! * [`fig9_topology_choice`] — the user-drawn tree topology against three
//!   equal-error 10-qubit devices (tree / ring / line).
//! * [`fig10_filtering`] — number of devices passing the two-qubit-error
//!   filter sweep.
//!
//! The 100-device fleet itself (Table 2) comes from
//! [`qrio_backend::fleet::paper_fleet`].

use qrio_backend::{topology, Backend, DefaultTopology};
use qrio_circuit::{library, qasm, Circuit};
use qrio_meta::{FidelityRankingConfig, MetaServer};
use qrio_scheduler::{
    achieved_fidelity, oracle_select, paper_fig10_thresholds, two_qubit_error_sweep,
    RandomScheduler,
};

use crate::error::QrioError;

/// Parameters shared by the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Shots per simulation.
    pub shots: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Repetitions of the random baseline (the paper uses 25 for Fig. 6 and
    /// 50 for Fig. 9).
    pub repetitions: usize,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            shots: 256,
            seed: 0x51D0,
            repetitions: 25,
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 6 — default topologies: QRIO scheduler vs. random scheduler
// ---------------------------------------------------------------------------

/// One row of the Fig. 6 result: a default topology and the average amount by
/// which the random scheduler's score exceeds QRIO's.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Default topology name (grid, line, ring, heavy_square, fully_connected).
    pub topology: String,
    /// Score of the device chosen by the QRIO scheduler (lower is better).
    pub qrio_score: f64,
    /// Mean score of the devices chosen by the random scheduler.
    pub random_mean_score: f64,
    /// `random_mean_score - qrio_score` — the quantity Fig. 6 plots.
    pub average_decrease: f64,
    /// Number of fleet devices that could be scored for this topology.
    pub scored_devices: usize,
}

/// Run the Fig. 6 experiment on `fleet`.
///
/// For every default topology the QRIO scheduler's choice (lowest topology
/// score across the fleet) is compared against `config.repetitions` draws of
/// the random scheduler; the reported value is the average score decrease.
///
/// # Errors
///
/// Returns an error if a topology circuit cannot be built or no device can be
/// scored at all.
pub fn fig6_default_topologies(
    fleet: &[Backend],
    config: &ExperimentConfig,
) -> Result<Vec<Fig6Row>, QrioError> {
    let mut rows = Vec::new();
    for default in DefaultTopology::ALL {
        let mut meta = MetaServer::new();
        for backend in fleet {
            meta.register_backend(backend.clone());
        }
        let request = library::topology_circuit(default.num_qubits(), &default.edges())?;
        let job_name = format!("fig6-{}", default.name());
        meta.upload_topology_metadata(&job_name, request);
        let ranked = meta.score_all(&job_name)?;
        if ranked.is_empty() {
            return Err(QrioError::InvalidRequest(format!(
                "no device could be scored for topology '{}'",
                default.name()
            )));
        }
        let qrio_score = ranked[0].value;
        // Random scheduler: uniform over the scoreable devices.
        let scoreable: Vec<&Backend> = fleet
            .iter()
            .filter(|b| ranked.iter().any(|r| r.device == b.name()))
            .collect();
        let mut random = RandomScheduler::new(config.seed ^ default.num_qubits() as u64);
        let mut random_total = 0.0;
        for _ in 0..config.repetitions.max(1) {
            let pick = random.pick(&scoreable)?;
            let score = ranked
                .iter()
                .find(|r| r.device == pick.name())
                .map(|r| r.value)
                .unwrap_or(qrio_score);
            random_total += score;
        }
        let random_mean_score = random_total / config.repetitions.max(1) as f64;
        rows.push(Fig6Row {
            topology: default.name().to_string(),
            qrio_score,
            random_mean_score,
            average_decrease: random_mean_score - qrio_score,
            scored_devices: ranked.len(),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Fig. 7 — achieved fidelity per benchmark circuit
// ---------------------------------------------------------------------------

/// The benchmark circuits of §4.3, by paper name.
///
/// # Errors
///
/// Never fails for the built-in parameters; the `Result` mirrors the library
/// constructors.
pub fn paper_benchmark_circuits() -> Result<Vec<(String, Circuit)>, QrioError> {
    Ok(vec![
        (
            "Bv".to_string(),
            library::bernstein_vazirani(10, 0b1011001101)?,
        ),
        ("Hsp".to_string(), library::hidden_subgroup(4)?),
        ("Rep".to_string(), library::repetition_code_encoder(5)?),
        ("Grover".to_string(), library::grover(3, 5)?),
        ("Circ".to_string(), library::random_circuit(7, 4, 0x0C1)?),
        (
            "Circ_2".to_string(),
            library::random_circuit_with_cx_count(8, 12, 0x0C2)?,
        ),
    ])
}

/// One row of the Fig. 7 result: the fidelity each scheduling policy achieves
/// for one benchmark circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Row {
    /// Circuit name (Bv, Hsp, Rep, Grover, Circ, Circ_2).
    pub circuit: String,
    /// Fidelity on the device picked by the oracle scheduler.
    pub oracle: f64,
    /// Fidelity on the device picked by QRIO's Clifford-canary scheduler.
    pub clifford: f64,
    /// Fidelity on the device picked by the random scheduler.
    pub random: f64,
    /// Mean fidelity across all devices that can run the circuit.
    pub average: f64,
    /// Median fidelity across all devices that can run the circuit.
    pub median: f64,
    /// Device chosen by the Clifford strategy.
    pub clifford_device: String,
    /// Device chosen by the oracle.
    pub oracle_device: String,
}

/// Run the Fig. 7 experiment for one circuit on `fleet`.
///
/// # Errors
///
/// Returns an error when no device can run the circuit.
pub fn fig7_for_circuit(
    name: &str,
    circuit: &Circuit,
    fleet: &[Backend],
    config: &ExperimentConfig,
) -> Result<Fig7Row, QrioError> {
    // Oracle: exact simulation of the original circuit on every device.
    let oracle = oracle_select(circuit, fleet, config.shots, config.seed)?;

    // Clifford (QRIO): rank devices with the canary strategy, then measure the
    // fidelity the *original* circuit achieves on the chosen device.
    let mut meta = MetaServer::with_config(FidelityRankingConfig {
        shots: config.shots,
        seed: config.seed,
        shortfall_weight: 100.0,
    });
    for backend in fleet {
        meta.register_backend(backend.clone());
    }
    let job_name = format!("fig7-{name}");
    meta.upload_fidelity_metadata(&job_name, 1.0, &qasm::to_qasm(circuit))?;
    let ranked = meta.score_all(&job_name)?;
    let clifford_device = ranked.first().map(|r| r.device.clone()).ok_or_else(|| {
        QrioError::InvalidRequest(format!("no device could be scored for '{name}'"))
    })?;
    let clifford_backend = fleet
        .iter()
        .find(|b| b.name() == clifford_device)
        .expect("scored device comes from the fleet");
    let clifford = achieved_fidelity(circuit, clifford_backend, config.shots, config.seed)?;

    // Random scheduler: mean fidelity over `repetitions` random draws among
    // the devices that can run the circuit.
    let runnable: Vec<&Backend> = fleet
        .iter()
        .filter(|b| oracle.fidelity_on(b.name()).is_some())
        .collect();
    let mut random = RandomScheduler::new(config.seed ^ 0xF167);
    let mut random_total = 0.0;
    let draws = config.repetitions.max(1);
    for _ in 0..draws {
        let pick = random.pick(&runnable)?;
        random_total += oracle.fidelity_on(pick.name()).unwrap_or(0.0);
    }

    Ok(Fig7Row {
        circuit: name.to_string(),
        oracle: oracle.best_fidelity,
        clifford,
        random: random_total / draws as f64,
        average: oracle.average_fidelity(),
        median: oracle.median_fidelity(),
        clifford_device,
        oracle_device: oracle.best_device,
    })
}

/// Run the Fig. 7 experiment for every benchmark circuit.
///
/// # Errors
///
/// Propagates per-circuit failures.
pub fn fig7_fidelity(
    fleet: &[Backend],
    config: &ExperimentConfig,
) -> Result<Vec<Fig7Row>, QrioError> {
    let mut rows = Vec::new();
    for (name, circuit) in paper_benchmark_circuits()? {
        rows.push(fig7_for_circuit(&name, &circuit, fleet, config)?);
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Fig. 8/9 — user-drawn topology against tree/ring/line devices
// ---------------------------------------------------------------------------

/// Result of the Fig. 9 use case.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Result {
    /// Names of the three candidate devices.
    pub devices: Vec<String>,
    /// Device selected in each repetition (the paper repeats 50 times).
    pub selections: Vec<String>,
    /// The device expected to win (the tree-shaped one).
    pub expected: String,
}

impl Fig9Result {
    /// Whether every repetition selected the expected (tree) device.
    pub fn always_selected_expected(&self) -> bool {
        !self.selections.is_empty() && self.selections.iter().all(|s| s == &self.expected)
    }
}

/// Build the three 10-qubit candidate devices of Fig. 9 (tree, ring, line)
/// with identical calibration, as the paper equalises everything but topology.
pub fn fig9_devices() -> Vec<Backend> {
    vec![
        Backend::uniform("device-1-tree", topology::binary_tree(10), 0.01, 0.05),
        Backend::uniform("device-2-ring", topology::ring(10), 0.01, 0.05),
        Backend::uniform("device-3-line", topology::line(10), 0.01, 0.05),
    ]
}

/// Run the Fig. 9 experiment: a user-drawn tree-like topology scored against
/// the three candidate devices, repeated `config.repetitions` times.
///
/// # Errors
///
/// Returns an error if the topology circuit cannot be built or scoring fails.
pub fn fig9_topology_choice(config: &ExperimentConfig) -> Result<Fig9Result, QrioError> {
    let devices = fig9_devices();
    let user_topology = library::topology_circuit(10, &topology::binary_tree(10).edges())?;
    let mut meta = MetaServer::new();
    for backend in &devices {
        meta.register_backend(backend.clone());
    }
    meta.upload_topology_metadata("fig9-user-topology", user_topology);
    let mut selections = Vec::with_capacity(config.repetitions.max(1));
    for _ in 0..config.repetitions.max(1) {
        let ranked = meta.score_all("fig9-user-topology")?;
        let winner = ranked.first().map(|r| r.device.clone()).ok_or_else(|| {
            QrioError::InvalidRequest("no device could be scored for Fig. 9".into())
        })?;
        selections.push(winner);
    }
    Ok(Fig9Result {
        devices: devices.iter().map(|b| b.name().to_string()).collect(),
        selections,
        expected: "device-1-tree".to_string(),
    })
}

// ---------------------------------------------------------------------------
// Fig. 10 — filtering sweep
// ---------------------------------------------------------------------------

/// Run the Fig. 10 experiment: number of fleet devices passing the
/// user-requested maximum two-qubit error rate, swept over the paper's ten
/// thresholds.
pub fn fig10_filtering(fleet: &[Backend]) -> Vec<(f64, usize)> {
    two_qubit_error_sweep(fleet, &paper_fig10_thresholds())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrio_backend::fleet::{generate_fleet, FleetConfig};

    fn small_fleet() -> Vec<Backend> {
        generate_fleet(&FleetConfig::small(), 3).unwrap()
    }

    fn fast_config() -> ExperimentConfig {
        ExperimentConfig {
            shots: 96,
            seed: 11,
            repetitions: 5,
        }
    }

    #[test]
    fn fig6_qrio_never_loses_to_random() {
        let fleet = small_fleet();
        let rows = fig6_default_topologies(&fleet, &fast_config()).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.average_decrease >= -1e-9,
                "{}: QRIO must beat random on average",
                row.topology
            );
            assert!(row.scored_devices > 0);
        }
    }

    #[test]
    fn fig7_clifford_tracks_oracle_on_a_small_fleet() {
        let fleet = small_fleet();
        let config = fast_config();
        let circuit = library::repetition_code_encoder(5).unwrap();
        let row = fig7_for_circuit("Rep", &circuit, &fleet, &config).unwrap();
        assert!(
            row.oracle >= row.clifford - 0.15,
            "oracle should be at least as good as clifford"
        );
        assert!(
            row.clifford >= row.average - 0.2,
            "clifford should not be much worse than the fleet average"
        );
        assert!((0.0..=1.0).contains(&row.random));
        assert!((0.0..=1.0).contains(&row.median));
    }

    #[test]
    fn fig9_always_picks_the_tree_device() {
        let config = ExperimentConfig {
            repetitions: 10,
            ..fast_config()
        };
        let result = fig9_topology_choice(&config).unwrap();
        assert_eq!(result.selections.len(), 10);
        assert!(
            result.always_selected_expected(),
            "selections: {:?}",
            result.selections
        );
        assert_eq!(result.devices.len(), 3);
    }

    #[test]
    fn fig10_counts_grow_with_threshold() {
        let fleet = small_fleet();
        let sweep = fig10_filtering(&fleet);
        assert_eq!(sweep.len(), 10);
        for window in sweep.windows(2) {
            assert!(window[0].1 <= window[1].1);
        }
        assert_eq!(sweep.last().unwrap().1, fleet.len());
    }

    #[test]
    fn benchmark_circuit_list_matches_the_paper() {
        let circuits = paper_benchmark_circuits().unwrap();
        let names: Vec<&str> = circuits.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["Bv", "Hsp", "Rep", "Grover", "Circ", "Circ_2"]);
        let by_name: std::collections::BTreeMap<&str, &Circuit> =
            circuits.iter().map(|(n, c)| (n.as_str(), c)).collect();
        assert_eq!(by_name["Bv"].num_qubits(), 10);
        assert_eq!(by_name["Hsp"].num_qubits(), 4);
        assert_eq!(by_name["Rep"].num_qubits(), 5);
        assert_eq!(by_name["Grover"].num_qubits(), 3);
        assert_eq!(by_name["Circ"].num_qubits(), 7);
        assert_eq!(by_name["Circ_2"].num_qubits(), 8);
        assert_eq!(by_name["Circ_2"].two_qubit_gate_count(), 12);
    }
}
